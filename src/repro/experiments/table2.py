"""Table II: OFDM transmitter throughput over nine bus/style cases.

Paper rows (Mbps): BFBA/PPA 2.6504, GBAVI/PPA 2.1087, GBAVIII/FPA 4.5599,
GBAVIII/PPA 2.2567, Hybrid/FPA 4.5599, Hybrid/PPA 2.6504, SplitBA/FPA
5.1132, GGBA/FPA 4.3913, GGBA/PPA 2.1880.  (The printed table's style
column labels cases 2 and 9 "FPA", but the text's observations (A) and (D)
compare them as PPA cases -- GBAVI and BFBA have no shared memory for FPA
-- so we treat them as the PPA typo the text implies.)

Shape assertions enforced (DESIGN.md section 2):

* SplitBA-FPA is the best case, and beats GGBA-FPA by double digits
  (paper: 16.44 %);
* FPA beats PPA on every architecture that supports both;
* Hybrid-FPA equals GBAVIII-FPA and Hybrid-PPA equals BFBA-PPA (the
  hybrid exercises exactly the corresponding half of its hardware);
* PPA ordering: BFBA > GBAVIII > GGBA > GBAVI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps.ofdm import OfdmParameters, run_ofdm
from ..options import presets
from ..sim.fabric import build_machine
from .runner import run_cases

__all__ = [
    "Table2Row",
    "TABLE2_PAPER",
    "TABLE2_CASES",
    "run_table2",
    "run_table2_telemetry",
    "run_table2_case",
    "check_table2_shape",
]

# (case number, preset, style) as in the paper's Table II.
TABLE2_CASES: List[Tuple[int, str, str]] = [
    (1, "BFBA", "PPA"),
    (2, "GBAVI", "PPA"),
    (3, "GBAVIII", "FPA"),
    (4, "GBAVIII", "PPA"),
    (5, "HYBRID", "FPA"),
    (6, "HYBRID", "PPA"),
    (7, "SPLITBA", "FPA"),
    (8, "GGBA", "FPA"),
    (9, "GGBA", "PPA"),
]

TABLE2_PAPER: Dict[Tuple[str, str], float] = {
    ("BFBA", "PPA"): 2.6504,
    ("GBAVI", "PPA"): 2.1087,
    ("GBAVIII", "FPA"): 4.5599,
    ("GBAVIII", "PPA"): 2.2567,
    ("HYBRID", "FPA"): 4.5599,
    ("HYBRID", "PPA"): 2.6504,
    ("SPLITBA", "FPA"): 5.1132,
    ("GGBA", "FPA"): 4.3913,
    ("GGBA", "PPA"): 2.1880,
}


@dataclass
class Table2Row:
    case: int
    bus_system: str
    style: str
    throughput_mbps: float
    cycles: int
    paper_mbps: float

    def text(self) -> str:
        return "%2d  %-8s %-4s  %8.4f Mbps  (paper: %.4f)" % (
            self.case,
            self.bus_system,
            self.style,
            self.throughput_mbps,
            self.paper_mbps,
        )


def run_table2_case(
    case: Tuple[int, str, str],
    packets: int = 8,
    pe_count: int = 4,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> Table2Row:
    """Simulate one Table II case (a ``TABLE2_CASES`` entry); picklable.

    ``telemetry=True`` attaches the observability layer and records a
    :class:`~repro.obs.report.RunReport` (drained by the runner into the
    case telemetry); ``kernel`` selects the scheduler backend; rows are
    bit-identical either way.
    """
    number, bus_name, style = case
    machine = build_machine(presets.preset(bus_name, pe_count), kernel=kernel)
    if telemetry:
        from ..obs import Observability
        from ..obs.report import record_run

        machine.attach_observability(Observability())
    start = time.perf_counter()
    result = run_ofdm(machine, style, OfdmParameters(packets=packets))
    if telemetry:
        record_run(
            machine.run_report(
                wall_seconds=time.perf_counter() - start,
                name="table2:%d %s/%s" % (number, bus_name, style),
            )
        )
    return Table2Row(
        number,
        bus_name,
        style,
        result.throughput_mbps,
        result.cycles,
        TABLE2_PAPER[(bus_name, style)],
    )


def run_table2(
    packets: int = 8,
    pe_count: int = 4,
    cases: Optional[List[Tuple[int, str, str]]] = None,
    jobs: int = 1,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> List[Table2Row]:
    """Simulate every Table II case; returns rows in case order.

    ``jobs > 1`` fans the independent cases out over worker processes via
    :func:`repro.experiments.runner.run_cases`; row order and values are
    identical to a sequential run.  Use :func:`run_table2_telemetry` to
    also receive the per-case :class:`~repro.experiments.runner.CaseTelemetry`.
    """
    rows, _telemetry = run_table2_telemetry(
        packets=packets,
        pe_count=pe_count,
        cases=cases,
        jobs=jobs,
        telemetry=telemetry,
        kernel=kernel,
    )
    return rows


def run_table2_telemetry(
    packets: int = 8,
    pe_count: int = 4,
    cases: Optional[List[Tuple[int, str, str]]] = None,
    jobs: int = 1,
    telemetry: bool = True,
    kernel: Optional[str] = None,
):
    """(rows, telemetry) for Table II; ``telemetry=True`` attaches RunReports."""
    return run_cases(
        run_table2_case,
        list(cases or TABLE2_CASES),
        jobs=jobs,
        kwargs={
            "packets": packets,
            "pe_count": pe_count,
            "telemetry": telemetry,
            "kernel": kernel,
        },
    )


def check_table2_shape(rows: List[Table2Row]) -> List[str]:
    """Verify the paper's qualitative claims; returns failure strings."""
    value = {(row.bus_system, row.style): row.throughput_mbps for row in rows}
    failures: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    best = max(rows, key=lambda row: row.throughput_mbps)
    expect(
        (best.bus_system, best.style) == ("SPLITBA", "FPA"),
        "best case is %s/%s, expected SplitBA/FPA" % (best.bus_system, best.style),
    )
    expect(
        value[("SPLITBA", "FPA")] > 1.10 * value[("GGBA", "FPA")],
        "SplitBA-FPA should beat GGBA-FPA by double digits (paper: 16.44%%), "
        "got %.1f%%" % ((value[("SPLITBA", "FPA")] / value[("GGBA", "FPA")] - 1) * 100),
    )
    for bus_name in ("GBAVIII", "HYBRID", "GGBA"):
        expect(
            value[(bus_name, "FPA")] > value[(bus_name, "PPA")],
            "%s: FPA should beat PPA" % bus_name,
        )
    expect(
        abs(value[("HYBRID", "FPA")] - value[("GBAVIII", "FPA")])
        <= 0.02 * value[("GBAVIII", "FPA")],
        "Hybrid-FPA should match GBAVIII-FPA (paper: identical)",
    )
    expect(
        abs(value[("HYBRID", "PPA")] - value[("BFBA", "PPA")])
        <= 0.02 * value[("BFBA", "PPA")],
        "Hybrid-PPA should match BFBA-PPA (paper: identical)",
    )
    ppa_order = [
        value[("BFBA", "PPA")],
        value[("GBAVIII", "PPA")],
        value[("GGBA", "PPA")],
        value[("GBAVI", "PPA")],
    ]
    expect(
        all(a > b for a, b in zip(ppa_order, ppa_order[1:])),
        "PPA ordering should be BFBA > GBAVIII > GGBA > GBAVI, got %s" % ppa_order,
    )
    return failures


def main(jobs: int = 1, kernel: Optional[str] = None) -> list:  # pragma: no cover - CLI convenience
    rows = run_table2(jobs=jobs, kernel=kernel)
    print("Table II -- OFDM transmitter throughput")
    for row in rows:
        print(row.text())
    failures = check_table2_shape(rows)
    print("shape check:", "OK" if not failures else failures)
    return rows

if __name__ == "__main__":  # pragma: no cover
    main()
