"""Table IV: database example execution time, GGBA vs SplitBA.

Paper rows: GGBA 2,241,100 ns; SplitBA 1,317,804 ns -- a 41 % reduction in
application execution time, the paper's headline number.  Shape assertion:
SplitBA reduces execution time by 30-55 % relative to GGBA, with all 41
tasks completing on both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps.database import run_database
from ..options import presets
from ..sim.fabric import build_machine
from .runner import run_cases

__all__ = [
    "Table4Row",
    "TABLE4_PAPER",
    "run_table4",
    "run_table4_telemetry",
    "run_table4_case",
    "check_table4_shape",
]

TABLE4_PAPER: Dict[str, float] = {
    "GGBA": 2_241_100.0,
    "SPLITBA": 1_317_804.0,
}

TABLE4_CASES = ["GGBA", "SPLITBA"]


@dataclass
class Table4Row:
    case: int
    bus_system: str
    execution_time_ns: float
    tasks_completed: int
    lock_contentions: int
    paper_ns: float

    def text(self) -> str:
        return "%2d  %-8s  %12.0f ns  (paper: %.0f)  tasks=%d" % (
            self.case,
            self.bus_system,
            self.execution_time_ns,
            self.paper_ns,
            self.tasks_completed,
        )


def run_table4_case(
    case: Tuple[int, str],
    client_count: int = 40,
    pe_count: int = 4,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> Table4Row:
    """Simulate one ``(case number, bus)`` Table IV entry; picklable."""
    number, bus_name = case
    machine = build_machine(presets.preset(bus_name, pe_count), kernel=kernel)
    if telemetry:
        from ..obs import Observability
        from ..obs.report import record_run

        machine.attach_observability(Observability())
    start = time.perf_counter()
    result = run_database(machine, client_count=client_count)
    if telemetry:
        record_run(
            machine.run_report(
                wall_seconds=time.perf_counter() - start,
                name="table4:%d %s" % (number, bus_name),
            )
        )
    return Table4Row(
        number,
        bus_name,
        result.execution_time_ns,
        result.tasks_completed,
        result.lock_contentions,
        TABLE4_PAPER[bus_name],
    )


def run_table4(
    client_count: int = 40,
    pe_count: int = 4,
    cases: Optional[List[str]] = None,
    jobs: int = 1,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> List[Table4Row]:
    rows, _telemetry = run_table4_telemetry(
        client_count=client_count,
        pe_count=pe_count,
        cases=cases,
        jobs=jobs,
        telemetry=telemetry,
        kernel=kernel,
    )
    return rows


def run_table4_telemetry(
    client_count: int = 40,
    pe_count: int = 4,
    cases: Optional[List[str]] = None,
    jobs: int = 1,
    telemetry: bool = True,
    kernel: Optional[str] = None,
):
    """(rows, telemetry) for Table IV; ``telemetry=True`` attaches RunReports."""
    numbered = list(enumerate(cases or TABLE4_CASES, start=15))
    return run_cases(
        run_table4_case,
        numbered,
        jobs=jobs,
        kwargs={
            "client_count": client_count,
            "pe_count": pe_count,
            "telemetry": telemetry,
            "kernel": kernel,
        },
    )


def check_table4_shape(rows: List[Table4Row]) -> List[str]:
    value = {row.bus_system: row for row in rows}
    failures: List[str] = []
    for row in rows:
        if row.tasks_completed != 41:
            failures.append(
                "%s completed %d tasks, expected 41" % (row.bus_system, row.tasks_completed)
            )
    reduction = 1 - value["SPLITBA"].execution_time_ns / value["GGBA"].execution_time_ns
    if not 0.30 <= reduction <= 0.55:
        failures.append(
            "SplitBA reduction vs GGBA is %.1f%%, expected ~41%% (30-55%% band)"
            % (reduction * 100)
        )
    return failures


def main(jobs: int = 1, kernel: Optional[str] = None) -> list:  # pragma: no cover
    rows = run_table4(jobs=jobs, kernel=kernel)
    print("Table IV -- database example execution time")
    for row in rows:
        print(row.text())
    reduction = 1 - rows[1].execution_time_ns / rows[0].execution_time_ns
    print("reduction: %.1f%% (paper: 41%%)" % (reduction * 100))
    failures = check_table4_shape(rows)
    print("shape check:", "OK" if not failures else failures)
    return rows

if __name__ == "__main__":  # pragma: no cover
    main()
