"""Table V: generation time and gate count of the generator itself.

For each of the five generated bus architectures at 1/8/16/24 processors,
BusSyn's wall-clock generation time (milliseconds) and the NAND2 gate
estimate of the generated bus logic.  Shape assertions:

* every generation finishes in well under one second (the paper's point:
  "a matter of seconds instead of weeks");
* every generated design is structurally clean (zero lint errors);
* gate counts grow close to linearly with PE count;
* per-PE cost ordering: Hybrid > GBAVIII > {GBAVI, BFBA} > SplitBA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.busyn import BusSyn
from ..options import presets
from .runner import run_cases

__all__ = [
    "Table5Row",
    "TABLE5_PAPER",
    "run_table5",
    "run_table5_telemetry",
    "run_table5_case",
    "check_table5_shape",
]

# Paper values: {bus: {pe_count: (time_ms, gates)}}
TABLE5_PAPER: Dict[str, Dict[int, Tuple[float, int]]] = {
    "BFBA": {1: (509, 800), 8: (534, 6401), 16: (546, 12793), 24: (578, 19188)},
    "GBAVI": {1: (417, 872), 8: (432, 5809), 16: (457, 13751), 24: (506, 21156)},
    "GBAVIII": {1: (513, 2070), 8: (534, 14746), 16: (563, 30798), 24: (590, 48395)},
    "HYBRID": {1: (763, 2973), 8: (859, 21869), 16: (928, 44847), 24: (983, 69697)},
    "SPLITBA": {8: (413, 4207), 16: (440, 8605), 24: (491, 16110)},
}

TABLE5_BUSES = ["BFBA", "GBAVI", "GBAVIII", "HYBRID", "SPLITBA"]
TABLE5_PE_COUNTS = [1, 8, 16, 24]


@dataclass
class Table5Row:
    bus_system: str
    pe_count: int
    generation_time_ms: float
    gate_count: int
    lint_errors: int
    paper_gates: Optional[int]

    def text(self) -> str:
        paper = str(self.paper_gates) if self.paper_gates else "N/A"
        return "%-8s %2d PEs  %7.1f ms  %7d gates (paper: %s)" % (
            self.bus_system,
            self.pe_count,
            self.generation_time_ms,
            self.gate_count,
            paper,
        )


# Per-process tool for run_table5_case.  Table V *measures* generation, so
# the tool runs with its result cache off -- every case is timed afresh.
_TOOL: Optional[BusSyn] = None


def _measurement_tool() -> BusSyn:
    global _TOOL
    if _TOOL is None:
        _TOOL = BusSyn(cache=False)
    return _TOOL


def run_table5_case(case: Tuple[str, int], telemetry: bool = False) -> Table5Row:
    """Generate one ``(bus, pe_count)`` Table V entry; picklable."""
    bus_name, pe_count = case
    start = time.perf_counter()
    generated = _measurement_tool().generate(presets.preset(bus_name, pe_count))
    if telemetry:
        # Generation runs no simulator; the RunReport carries wall time and
        # generator outputs in ``extras`` so `repro stats 5` aggregates too.
        from ..obs.report import RunReport, record_run

        record_run(
            RunReport(
                name="table5:%s/%d" % (bus_name, pe_count),
                wall_seconds=time.perf_counter() - start,
                extras={
                    "generation_time_ms": generated.report.generation_time_ms,
                    "gate_count": generated.report.gate_count,
                    "lint_errors": len(generated.lint_errors()),
                },
            )
        )
    paper = TABLE5_PAPER.get(bus_name, {}).get(pe_count)
    return Table5Row(
        bus_name,
        pe_count,
        generated.report.generation_time_ms,
        generated.report.gate_count,
        len(generated.lint_errors()),
        paper[1] if paper else None,
    )


def run_table5(
    buses: Optional[List[str]] = None,
    pe_counts: Optional[List[int]] = None,
    jobs: int = 1,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> List[Table5Row]:
    rows, _telemetry = run_table5_telemetry(
        buses=buses, pe_counts=pe_counts, jobs=jobs, telemetry=telemetry,
        kernel=kernel,
    )
    return rows


def run_table5_telemetry(
    buses: Optional[List[str]] = None,
    pe_counts: Optional[List[int]] = None,
    jobs: int = 1,
    telemetry: bool = True,
    kernel: Optional[str] = None,
):
    """(rows, telemetry) for Table V; ``telemetry=True`` attaches RunReports.

    ``kernel`` is accepted for interface symmetry with Tables II-IV but has
    no effect: Table V measures architecture *generation* and never builds a
    Simulator, so its rows are scheduler-backend-independent by construction.
    """
    cases = [
        (bus_name, pe_count)
        for bus_name in (buses or TABLE5_BUSES)
        for pe_count in (pe_counts or TABLE5_PE_COUNTS)
        if not (bus_name == "SPLITBA" and pe_count < 2)  # N/A in the paper too
    ]
    return run_cases(
        run_table5_case, cases, jobs=jobs, kwargs={"telemetry": telemetry}
    )


def check_table5_shape(rows: List[Table5Row]) -> List[str]:
    failures: List[str] = []
    by_bus: Dict[str, List[Table5Row]] = {}
    for row in rows:
        by_bus.setdefault(row.bus_system, []).append(row)
        if row.generation_time_ms > 10_000:
            failures.append(
                "%s @ %d PEs took %.0f ms (> 10 s)"
                % (row.bus_system, row.pe_count, row.generation_time_ms)
            )
        if row.lint_errors:
            failures.append(
                "%s @ %d PEs has %d lint errors"
                % (row.bus_system, row.pe_count, row.lint_errors)
            )

    # Near-linear gate scaling in PE count.
    per_pe: Dict[str, float] = {}
    for bus_name, bus_rows in by_bus.items():
        scalable = [row for row in bus_rows if row.pe_count >= 8]
        if len(scalable) >= 2:
            slopes = [
                (b.gate_count - a.gate_count) / (b.pe_count - a.pe_count)
                for a, b in zip(scalable, scalable[1:])
            ]
            if max(slopes) > 1.3 * min(slopes):
                failures.append("%s gate scaling is not near-linear" % bus_name)
            per_pe[bus_name] = sum(slopes) / len(slopes)

    ordering = ["HYBRID", "GBAVIII", "GBAVI", "SPLITBA"]
    if all(bus in per_pe for bus in ordering):
        values = [per_pe[bus] for bus in ordering]
        if not all(a > b for a, b in zip(values, values[1:])):
            failures.append(
                "per-PE gate ordering should be Hybrid > GBAVIII > GBAVI > SplitBA, got %s"
                % {bus: round(per_pe[bus]) for bus in ordering}
            )
    if "BFBA" in per_pe and "GBAVIII" in per_pe:
        if not per_pe["GBAVIII"] > per_pe["BFBA"] > per_pe.get("SPLITBA", 0):
            failures.append("BFBA per-PE cost should sit between GBAVIII and SplitBA")
    return failures


def main(jobs: int = 1, kernel: Optional[str] = None) -> list:  # pragma: no cover
    rows = run_table5(jobs=jobs, kernel=kernel)
    print("Table V -- generation time and gate count")
    for row in rows:
        print(row.text())
    failures = check_table5_shape(rows)
    print("shape check:", "OK" if not failures else failures)
    return rows

if __name__ == "__main__":  # pragma: no cover
    main()
