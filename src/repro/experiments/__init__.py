"""Reproduction drivers for every table and figure of the paper.

One module per experiment; each returns structured rows plus the shape
assertions DESIGN.md section 2 lists, and can print the same table the
paper shows.  The pytest benchmarks under ``benchmarks/`` call these.
"""

from .table2 import run_table2, TABLE2_PAPER
from .table3 import run_table3, TABLE3_PAPER
from .table4 import run_table4, TABLE4_PAPER
from .table5 import run_table5, TABLE5_PAPER
from . import figures
from . import report

__all__ = [
    "run_table2",
    "TABLE2_PAPER",
    "run_table3",
    "TABLE3_PAPER",
    "run_table4",
    "TABLE4_PAPER",
    "run_table5",
    "TABLE5_PAPER",
    "figures",
    "report",
]
