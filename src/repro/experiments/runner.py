"""Parallel experiment runner (DESIGN.md section 4).

Every experiment table is a list of *independent* cases: each case builds
its own :class:`~repro.sim.kernel.Simulator` and machine, so cases share no
mutable state and can run in separate worker processes.  :func:`run_cases`
fans a module-level case worker out over a ``ProcessPoolExecutor`` while
keeping the result order identical to the input order -- a parallel run
returns bit-identical rows to a sequential one, just sooner.

Workers are addressed as ``(module, qualname)`` pairs rather than function
objects so the payloads pickle by reference regardless of how the callable
was obtained.  Each invocation also records per-case telemetry: wall-clock
seconds and the number of simulation kernel events processed (measured as
the delta of :func:`repro.sim.kernel.total_events_processed` around the
call, which is per-process and therefore correct in workers too).

``jobs <= 1`` bypasses the pool entirely and runs inline -- same code path,
no process overhead, so the sequential behaviour of ``run_tableN()`` is
unchanged.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.report import drain_recorded
from ..sim.kernel import total_events_processed

__all__ = ["CaseExecutionError", "CaseTelemetry", "run_cases"]


class CaseExecutionError(RuntimeError):
    """A case worker raised: identifies *which* case died, and on what.

    Pool workers report failures as pickled exceptions with no payload
    context; this wrapper pins the failing case and worker so a 40-case
    sweep doesn't reduce to a bare traceback.  The original exception is
    chained (``__cause__``) and summarized in the message.
    """

    def __init__(self, module_name: str, qualname: str, case: Any, error: BaseException):
        super().__init__(
            "case %r failed in %s.%s: %s: %s"
            % (case, module_name, qualname, type(error).__name__, error)
        )
        self.case = case
        self.worker = "%s.%s" % (module_name, qualname)


@dataclass
class CaseTelemetry:
    """Measurement of one case invocation (returned in input order).

    ``run_reports`` carries any :class:`repro.obs.report.RunReport` dicts
    the case recorded (via :func:`repro.obs.report.record_run`) -- drained
    per case in the executing process, so worker-side telemetry rides back
    to the parent with the result and aggregates deterministically.
    """

    case: Any
    wall_seconds: float
    events_processed: int
    run_reports: List[Dict[str, Any]] = field(default_factory=list)

    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds


def _resolve(module_name: str, qualname: str) -> Callable:
    return getattr(importlib.import_module(module_name), qualname)


def _invoke(payload: Tuple[str, str, Any, Dict[str, Any]]) -> Tuple[Any, CaseTelemetry]:
    """Run one case in the current process, measuring time and events."""
    module_name, qualname, case, kwargs = payload
    func = _resolve(module_name, qualname)
    drain_recorded()  # discard reports stranded by an earlier failed case
    events_before = total_events_processed()
    start = time.perf_counter()
    try:
        result = func(case, **kwargs)
    except CaseExecutionError:
        raise
    except Exception as error:
        raise CaseExecutionError(module_name, qualname, case, error) from error
    wall = time.perf_counter() - start
    telemetry = CaseTelemetry(case, wall, total_events_processed() - events_before)
    telemetry.run_reports = drain_recorded()
    return result, telemetry


def run_cases(
    func: Callable,
    cases: Sequence[Any],
    jobs: int = 1,
    kwargs: Optional[Dict[str, Any]] = None,
) -> Tuple[List[Any], List[CaseTelemetry]]:
    """Run ``func(case, **kwargs)`` for every case; returns (results, telemetry).

    Results and telemetry are in the same order as ``cases`` regardless of
    ``jobs``, so parallel and sequential runs are interchangeable.  ``func``
    must be a module-level callable (importable by name) and ``case`` /
    ``kwargs`` / results must pickle when ``jobs > 1``.
    """
    module_name = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module_name or not qualname or "." in qualname:
        raise ValueError(
            "run_cases needs a module-level function, got %r" % (func,)
        )
    if _resolve(module_name, qualname) is not func:
        raise ValueError(
            "%s.%s does not resolve back to %r (decorated or shadowed?)"
            % (module_name, qualname, func)
        )
    frozen_kwargs = dict(kwargs or {})
    payloads = [(module_name, qualname, case, frozen_kwargs) for case in cases]
    if jobs <= 1 or len(payloads) <= 1:
        pairs = [_invoke(payload) for payload in payloads]
    else:
        workers = min(jobs, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves input order, giving deterministic rows.
            pairs = list(pool.map(_invoke, payloads))
    results = [result for result, _telemetry in pairs]
    telemetry = [telemetry for _result, telemetry in pairs]
    return results, telemetry
