"""Figure reproductions: protocol state diagrams and schedule charts.

* **Figures 11/12/13** -- the numbered handshake steps of the GBAVI, BFBA
  and GBAVIII communication procedures.  We run one transfer over the real
  simulated hardware with tracing enabled and check the recorded step
  sequence against the diagram's ordering.
* **Figure 26** -- PPA vs FPA occupancy: which function groups each BAN
  executes over time, extracted from the OFDM run's schedule records.
* **Figure 27** -- the MPEG2 FPA distribution: GOP i decoded by BAN
  (i mod 4).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..apps.mpeg2.parallel import gop_assignment
from ..apps.ofdm import OfdmParameters, run_ofdm
from ..options import presets
from ..sim.fabric import build_machine
from ..soc.api import SocAPI
from ..soc.handshake import BfbaChannel, GbaviChannel, GlobalChannel

__all__ = [
    "FIGURE11_ORDER",
    "FIGURE12_ORDER",
    "FIGURE13_ORDER",
    "run_handshake_trace",
    "check_step_order",
    "run_figure26",
    "check_figure26",
    "run_figure27",
]

# Expected step label order per transfer, from the state diagrams.
FIGURE11_ORDER = [
    "2:assert DONE_OP",
    "3:deassert DONE_OP",
    "3:transfer data",
    "4:assert DONE_RV",
    "5:deassert DONE_RV",
]
FIGURE12_ORDER = [
    "2:push data",
    "3.1:deassert DONE_OP",
    "3.2:pop data",
    "3.3:assert DONE_RV",
    "4:deassert DONE_RV",
    "6:assert DONE_OP",
]
FIGURE13_ORDER = FIGURE11_ORDER  # shared-variable adaptation, same steps

_CHANNEL_OF = {
    "GBAVI": ("GBAVI", GbaviChannel),
    "BFBA": ("BFBA", BfbaChannel),
    "GBAVIII": ("GBAVIII", GlobalChannel),
}


def run_handshake_trace(protocol: str, words: int = 64) -> List[Tuple[str, int]]:
    """One traced A->B transfer over the given protocol's bus system."""
    preset_name, channel_cls = _CHANNEL_OF[protocol.upper()]
    machine = build_machine(presets.preset(preset_name, 4), trace_hsregs=True)
    sender = SocAPI(machine, "A")
    receiver = SocAPI(machine, "B")
    channel = channel_cls(sender, receiver, words)
    payload = list(range(words))
    received: List[List[int]] = []

    def send_program():
        yield from sender.compute(500)
        yield from channel.send(payload)

    def recv_program():
        values = yield from channel.recv()
        received.append(list(values))
        yield from receiver.compute(500)
        yield from channel.release()

    machine.pe("A").run(send_program())
    machine.pe("B").run(recv_program())
    machine.sim.run()
    if received != [payload]:
        raise AssertionError("payload corrupted in %s transfer" % protocol)
    return list(channel.trace)


def check_step_order(trace: List[Tuple[str, int]], expected: List[str]) -> List[str]:
    """Verify the traced steps appear in the diagram's order."""
    failures: List[str] = []
    labels = [label for label, _cycle in trace]
    cycles = [cycle for _label, cycle in trace]
    if labels != expected:
        failures.append("step order %s != expected %s" % (labels, expected))
    if any(b < a for a, b in zip(cycles, cycles[1:])):
        failures.append("step timestamps are not monotonic: %s" % cycles)
    return failures


# ----------------------------------------------------------------------
# Figure 26: PPA vs FPA schedules
# ----------------------------------------------------------------------


def run_figure26(packets: int = 4) -> Dict[str, List[Tuple[str, str, int, int, int]]]:
    """OFDM schedules: {'PPA': [...], 'FPA': [...]} occupancy records."""
    schedules = {}
    for style, preset_name in (("PPA", "BFBA"), ("FPA", "GBAVIII")):
        machine = build_machine(presets.preset(preset_name, 4))
        result = run_ofdm(machine, style, OfdmParameters(packets=packets))
        schedules[style] = list(result.schedule)
    return schedules


def check_figure26(schedules) -> List[str]:
    failures: List[str] = []
    ppa = schedules["PPA"]
    fpa = schedules["FPA"]
    # PPA: each BAN runs exactly one group (Figure 26a's E/F/G/H rows).
    groups_per_ban: Dict[str, set] = {}
    for ban, group, _packet, _start, _end in ppa:
        groups_per_ban.setdefault(ban, set()).add(group)
    for ban, groups in groups_per_ban.items():
        if len(groups) != 1:
            failures.append("PPA BAN %s ran groups %s, expected one" % (ban, groups))
    if sorted(g for groups in groups_per_ban.values() for g in groups) != ["E", "F", "G", "H"]:
        failures.append("PPA should cover groups E, F, G, H")
    # PPA pipeline effect: packet k's F stage starts after packet k's E ends.
    e_ends = {p: end for ban, g, p, start, end in ppa if g == "E"}
    f_starts = {p: start for ban, g, p, start, end in ppa if g == "F"}
    for packet in f_starts:
        if packet in e_ends and f_starts[packet] < e_ends[packet]:
            failures.append("PPA packet %d: F started before E finished" % packet)
    # FPA: every BAN runs the whole chain (Figure 26b's EFGH rows).
    for ban, group, _packet, _start, _end in fpa:
        if group != "EFGH":
            failures.append("FPA BAN %s ran %s, expected the full chain" % (ban, group))
    fpa_bans = {ban for ban, *_rest in fpa}
    fpa_packets = len({packet for _ban, _group, packet, *_rest in fpa})
    if len(fpa_bans) != min(4, fpa_packets):
        failures.append(
            "FPA should occupy %d BANs for %d packets, got %s"
            % (min(4, fpa_packets), fpa_packets, sorted(fpa_bans))
        )
    return failures


# ----------------------------------------------------------------------
# Figure 27: MPEG2 GOP distribution
# ----------------------------------------------------------------------


def run_figure27(gop_count: int = 8) -> Dict[int, str]:
    """GOP -> BAN map for the 4-PE functional parallel decode."""
    machine = build_machine(presets.preset("GBAVIII", 4))
    return gop_assignment(gop_count, machine.pe_order)


def check_figure27(assignment: Dict[int, str]) -> List[str]:
    failures: List[str] = []
    bans = sorted(set(assignment.values()))
    for gop_index, ban in assignment.items():
        expected = bans[gop_index % len(bans)]
        if ban != expected:
            failures.append(
                "GOP %d assigned to %s, expected %s (round-robin)"
                % (gop_index, ban, expected)
            )
    return failures
