"""Table III: MPEG2 decoder throughput over five bus systems (FPA).

Paper rows (Mbps): BFBA 0.8594, GBAVI 0.8271, GBAVIII 1.1444, Hybrid
1.1650, CCBA 1.0083.  Shape assertions:

* Hybrid is best and beats CCBA by double digits (paper: 15.54 %);
* GBAVIII also beats CCBA (the 3- vs 5-cycle read-arbitration margin);
* BFBA and GBAVI trail badly (sequential BAN-to-BAN relay), GBAVI last.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..apps.mpeg2.codec import decode_sequence, encode_sequence, psnr, synthetic_video
from ..apps.mpeg2.parallel import run_mpeg2
from ..options import presets
from ..sim.fabric import build_machine
from .runner import run_cases

__all__ = [
    "Table3Row",
    "TABLE3_PAPER",
    "TABLE3_CASES",
    "run_table3",
    "run_table3_telemetry",
    "run_table3_case",
    "check_table3_shape",
]

TABLE3_CASES = ["BFBA", "GBAVI", "GBAVIII", "HYBRID", "CCBA"]

TABLE3_PAPER: Dict[str, float] = {
    "BFBA": 0.8594,
    "GBAVI": 0.8271,
    "GBAVIII": 1.1444,
    "HYBRID": 1.1650,
    "CCBA": 1.0083,
}


@dataclass
class Table3Row:
    case: int
    bus_system: str
    throughput_mbps: float
    cycles: int
    paper_mbps: float
    frames_correct: bool

    def text(self) -> str:
        return "%2d  %-8s  %8.4f Mbps  (paper: %.4f)  decode %s" % (
            self.case,
            self.bus_system,
            self.throughput_mbps,
            self.paper_mbps,
            "OK" if self.frames_correct else "MISMATCH",
        )


@lru_cache(maxsize=2)
def _reference_decode(frame_count: int):
    """(video, reference frames) for ``frame_count`` -- computed once per
    process.  Deterministic, so every worker derives the identical
    reference; within one process (the sequential path) it is shared by all
    cases exactly as before."""
    video = synthetic_video(frame_count)
    stream = encode_sequence(video)
    reference_gops, _stats = decode_sequence(stream)
    reference = {
        (gop.index, index): frame
        for gop in reference_gops
        for index, frame in enumerate(gop.frames)
    }
    return video, reference


def run_table3_case(
    case: Tuple[int, str],
    frame_count: int = 16,
    pe_count: int = 4,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> Table3Row:
    """Simulate one ``(case number, bus)`` Table III entry; picklable."""
    number, bus_name = case
    video, reference = _reference_decode(frame_count)
    machine = build_machine(presets.preset(bus_name, pe_count), kernel=kernel)
    if telemetry:
        from ..obs import Observability
        from ..obs.report import record_run

        machine.attach_observability(Observability())
    start = time.perf_counter()
    result = run_mpeg2(machine, video)
    if telemetry:
        record_run(
            machine.run_report(
                wall_seconds=time.perf_counter() - start,
                name="table3:%d %s" % (number, bus_name),
            )
        )
    correct = len(result.frames) == len(reference) and all(
        np.allclose(result.frames[key].y, reference[key].y, atol=0.51)
        and np.allclose(result.frames[key].cb, reference[key].cb, atol=0.51)
        for key in reference
    )
    return Table3Row(
        number,
        bus_name,
        result.throughput_mbps,
        result.cycles,
        TABLE3_PAPER[bus_name],
        correct,
    )


def run_table3(
    frame_count: int = 16,
    pe_count: int = 4,
    cases: Optional[List[str]] = None,
    jobs: int = 1,
    telemetry: bool = False,
    kernel: Optional[str] = None,
) -> List[Table3Row]:
    """Simulate the Table III cases, verifying decoded frames bit-exactly
    (to the 8-bit output rounding) against a serial reference decode."""
    rows, _telemetry = run_table3_telemetry(
        frame_count=frame_count,
        pe_count=pe_count,
        cases=cases,
        jobs=jobs,
        telemetry=telemetry,
        kernel=kernel,
    )
    return rows


def run_table3_telemetry(
    frame_count: int = 16,
    pe_count: int = 4,
    cases: Optional[List[str]] = None,
    jobs: int = 1,
    telemetry: bool = True,
    kernel: Optional[str] = None,
):
    """(rows, telemetry) for Table III; ``telemetry=True`` attaches RunReports."""
    numbered = list(enumerate(cases or TABLE3_CASES, start=10))
    return run_cases(
        run_table3_case,
        numbered,
        jobs=jobs,
        kwargs={
            "frame_count": frame_count,
            "pe_count": pe_count,
            "telemetry": telemetry,
            "kernel": kernel,
        },
    )


def check_table3_shape(rows: List[Table3Row]) -> List[str]:
    value = {row.bus_system: row.throughput_mbps for row in rows}
    failures: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    for row in rows:
        expect(row.frames_correct, "%s decoded frames mismatch" % row.bus_system)
    expect(
        max(value, key=value.get) == "HYBRID",
        "Hybrid should be the best case (paper: 1.1650)",
    )
    expect(
        value["HYBRID"] > 1.05 * value["CCBA"],
        "Hybrid should beat CCBA by double digits (paper: 15.54%%), got %.1f%%"
        % ((value["HYBRID"] / value["CCBA"] - 1) * 100),
    )
    expect(value["GBAVIII"] > value["CCBA"], "GBAVIII should beat CCBA (3 vs 5 cycle grant)")
    expect(
        value["CCBA"] > value["BFBA"] > value["GBAVI"],
        "relay architectures should trail: CCBA > BFBA > GBAVI",
    )
    return failures


def main(jobs: int = 1, kernel: Optional[str] = None) -> list:  # pragma: no cover
    rows = run_table3(jobs=jobs, kernel=kernel)
    print("Table III -- MPEG2 decoder throughput")
    for row in rows:
        print(row.text())
    failures = check_table3_shape(rows)
    print("shape check:", "OK" if not failures else failures)
    return rows

if __name__ == "__main__":  # pragma: no cover
    main()
