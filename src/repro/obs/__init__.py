"""Observability: transaction tracing, metrics, and run telemetry.

Three pillars (see docs/observability.md for the user-facing guide):

* :mod:`repro.obs.tracer` -- span-based transaction tracer recording each
  bus transaction's lifecycle (request -> arbitration grant -> data tenure
  -> completion, plus bridge hops and FIFO fill levels), with exporters to
  Chrome ``trace_event`` JSON (Perfetto / ``chrome://tracing``) and JSONL.
* :mod:`repro.obs.metrics` -- a metrics registry of counters, gauges,
  fixed-bucket cycle histograms and occupancy time series that backs the
  per-segment :class:`repro.sim.stats.BusStats` detail.
* :mod:`repro.obs.report` -- structured :class:`RunReport` telemetry for
  every experiment case and benchmark run, with deterministic aggregation
  across parallel workers.

The cost contract: observability is **free when off**.  Simulation models
hold a reference to either ``None`` or the :data:`~repro.obs.tracer.NULL_TRACER`
singleton; the hot paths pay one attribute load and a branch per bus
tenure, and nothing is allocated.  Attaching an :class:`Observability`
instance to a machine (``machine.attach_observability(obs)``) switches the
same hooks to record spans and histogram samples.
"""

from __future__ import annotations

from .counters import COUNTER_KINDS, CounterPlane
from .metrics import (
    DEFAULT_CYCLE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from .report import (
    RunReport,
    aggregate_run_reports,
    build_run_report,
    drain_recorded,
    record_run,
)
from .tracer import (
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Observability",
    "CounterPlane",
    "COUNTER_KINDS",
    "Tracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "DEFAULT_CYCLE_BUCKETS",
    "RunReport",
    "build_run_report",
    "aggregate_run_reports",
    "record_run",
    "drain_recorded",
]


class Observability:
    """A tracer plus a metrics registry, attached to a machine as one unit.

    ``tracing=False`` keeps the metrics registry but records no spans
    (``NULL_TRACER``); ``metrics=False`` keeps spans but attaches no
    histograms.  ``occupancy_window`` is the bucket width (in bus cycles)
    of the per-segment occupancy-over-time series.
    """

    def __init__(
        self,
        tracing: bool = True,
        metrics: bool = True,
        occupancy_window: int = 1024,
    ):
        self.tracer = Tracer() if tracing else NULL_TRACER
        self.registry = MetricsRegistry() if metrics else None
        self.occupancy_window = occupancy_window

    def bus_transaction(
        self,
        segment,
        master: str,
        start: int,
        acquired: int,
        end: int,
        words: int,
        write: bool,
        memory_cycles: int = 0,
    ) -> None:
        """Record one completed bus tenure on ``segment``.

        ``start``/``acquired``/``end`` mirror exactly what the call site
        added to :class:`~repro.sim.stats.BusStats`, so span sums and the
        counters agree cycle-for-cycle (tested in test_observability.py).
        """
        tracer = self.tracer
        if tracer.enabled:
            tracer.transaction(
                segment.name, master, start, acquired, end, words, write, memory_cycles
            )
        stats = segment.stats
        hist = stats._arb_hist
        if hist is not None:
            hist.observe(acquired - start)
            stats._occupancy.add(acquired, end)
