"""Validate observability artifacts: ``python -m repro.obs.validate PATH``.

``PATH`` selects the check by shape:

* a Chrome ``trace_event`` JSON file (``trace.json``) -- structural
  contract via :func:`repro.obs.tracer.validate_chrome_trace`, including
  the Perfetto counter-track rules (``"C"`` events carry numeric,
  non-negative samples);
* a ledger ``records.jsonl`` file, or a ledger *directory* containing one
  -- RunRecord contract via :func:`validate_ledger_records` (schema
  version, content-hash integrity, monotonic envelope timestamps,
  counter non-negativity), with each failure naming the offending
  record and field.

Exit status 0 when every check passes; 1 otherwise, printing each
failure.  CI runs this against the captured trace and the accumulated
ledger before uploading them as artifacts.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional

from .ledger import RECORD_VERSION, content_hash
from .tracer import validate_chrome_trace

__all__ = ["main", "validate_ledger_records"]


def validate_ledger_records(records: List[Dict[str, Any]]) -> List[str]:
    """Contract checks on ledger RunRecords; returns failure strings.

    Each failure names the record (index + hash prefix) and the field:
    unknown schema version, missing sections, a content hash that does
    not match the hashed body (tampering or a serializer drift), an
    envelope timestamp running backwards relative to the previous
    record (the ledger is append-only), and negative counter totals in
    a RunReport's counter-plane snapshot.
    """
    failures: List[str] = []
    last_timestamp: Optional[str] = None
    for index, record in enumerate(records):
        label = "record %d (%s)" % (index, str(record.get("hash", "?"))[:12])
        if not isinstance(record, dict):
            failures.append("record %d: not an object" % index)
            continue
        version = record.get("version")
        if version != RECORD_VERSION:
            failures.append(
                "%s: version: unknown schema version %r (expected %d)"
                % (label, version, RECORD_VERSION)
            )
            continue
        body = record.get("body")
        envelope = record.get("envelope")
        if not isinstance(body, dict):
            failures.append("%s: body: missing or not an object" % label)
            continue
        if not isinstance(envelope, dict):
            failures.append("%s: envelope: missing or not an object" % label)
            continue
        if not body.get("verb"):
            failures.append("%s: body.verb: missing" % label)
        recorded_hash = record.get("hash")
        actual = content_hash(body)
        if recorded_hash != actual:
            failures.append(
                "%s: hash: %r does not match the hashed body (%s...)"
                % (label, recorded_hash, actual[:12])
            )
        timestamp = envelope.get("timestamp")
        if not isinstance(timestamp, str) or not timestamp:
            failures.append("%s: envelope.timestamp: missing" % label)
        elif last_timestamp is not None and timestamp < last_timestamp:
            # ISO-8601 timestamps sort lexically; an append-only ledger
            # can never run backwards.
            failures.append(
                "%s: envelope.timestamp: %s precedes previous record's %s"
                % (label, timestamp, last_timestamp)
            )
        if isinstance(timestamp, str):
            last_timestamp = timestamp
        failures.extend(_check_counters(label, body))
    return failures


def _check_counters(label: str, body: Dict[str, Any]) -> List[str]:
    """Counter-plane snapshots (summary.counters / extras.counters) must
    hold non-negative integer totals."""
    failures: List[str] = []

    def check_snapshot(where: str, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            return
        segments = snapshot.get("segments")
        if not isinstance(segments, dict):
            return
        for segment, kinds in segments.items():
            if not isinstance(kinds, dict):
                failures.append(
                    "%s: %s.segments.%s: not an object" % (label, where, segment)
                )
                continue
            for kind, value in kinds.items():
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    failures.append(
                        "%s: %s.segments.%s.%s: non-negative integer "
                        "expected, got %r" % (label, where, segment, kind, value)
                    )

    summary = body.get("summary")
    if isinstance(summary, dict):
        check_snapshot("summary.counters", summary.get("counters"))
        extras = summary.get("extras")
        if isinstance(extras, dict):
            check_snapshot("summary.extras.counters", extras.get("counters"))
    return failures


def _validate_ledger_path(path: str) -> int:
    records: List[Dict[str, Any]] = []
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError as error:
                    print("%s:%d: not valid JSON: %s" % (path, number, error))
                    return 1
    except OSError as error:
        print("%s: unreadable ledger: %s" % (path, error))
        return 1
    failures = validate_ledger_records(records)
    if failures:
        for failure in failures:
            print("%s: %s" % (path, failure))
        return 1
    print("%s: OK (%d ledger record(s))" % (path, len(records)))
    return 0


def _validate_trace_path(path: str) -> int:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        print("%s: unreadable trace: %s" % (path, error))
        return 1
    failures = validate_chrome_trace(document)
    if failures:
        for failure in failures:
            print("%s: %s" % (path, failure))
        return 1
    events = document["traceEvents"]
    timed = sum(1 for event in events if event.get("ph") != "M")
    counters = sum(1 for event in events if event.get("ph") == "C")
    print(
        "%s: OK (%d events, %d timed, %d counter samples)"
        % (path, len(events), timed, counters)
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m repro.obs.validate TRACE.json | LEDGER_DIR "
            "| records.jsonl"
        )
        return 2
    path = argv[0]
    if os.path.isdir(path):
        return _validate_ledger_path(os.path.join(path, "records.jsonl"))
    if path.endswith(".jsonl"):
        return _validate_ledger_path(path)
    return _validate_trace_path(path)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
