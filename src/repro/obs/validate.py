"""Validate a Chrome ``trace_event`` JSON file: ``python -m repro.obs.validate``.

Exit status 0 when the file parses and passes
:func:`repro.obs.tracer.validate_chrome_trace` (well-formed events,
monotonically ordered ``ts``); 1 otherwise, printing each failure.  CI
runs this against the trace captured from a table case before uploading
it as an artifact.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from .tracer import validate_chrome_trace

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json")
        return 2
    path = argv[0]
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        print("%s: unreadable trace: %s" % (path, error))
        return 1
    failures = validate_chrome_trace(document)
    if failures:
        for failure in failures:
            print("%s: %s" % (path, failure))
        return 1
    events = document["traceEvents"]
    timed = sum(1 for event in events if event.get("ph") != "M")
    print("%s: OK (%d events, %d timed)" % (path, len(events), timed))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
