"""Counter plane: preallocated slot-array counters for the fabric hot path.

The plane exists to answer one question the tracer and metrics registry
cannot: *how much did each bus segment do* on the compiled backend's
specialized fast path, **without** despecializing it.  Attaching an
:class:`~repro.obs.Observability`, a protocol monitor or a fault injector
forces :meth:`Machine._despecialize` because those hooks need the generic
instrumented paths; a :class:`CounterPlane` instead bakes plain integer
increments into the specialized dispatch functions themselves (see
``?C``-prefixed template lines in :mod:`repro.sim.compiled.specializer`),
so a counted run keeps the baked route/policy/timing fast path.

Layout: one flat ``list`` of ints (``slots``), three slots per bus segment
in name-sorted order -- transactions completed, grants observed at tenure
end, and arbitration-wait cycles.  A slot index is a baked literal in
generated code and a precomputed ``segment.counter_base`` attribute on the
generic paths, so every increment is ``slots[i] += n`` with no dict lookup
and no allocation.  The invariants gated by ``tests/test_counters.py``:

* ``transactions`` equals ``BusStats.transactions`` per segment,
* ``wait_cycles`` equals ``BusStats.arbitration_cycles`` per segment,
* ``grants`` equals the segment arbiter's ``grants`` in fault-free runs
  (one grant per tenure; watchdog redelivery under fault injection can
  legitimately re-grant, so chaos asserts cross-backend parity instead),

on all three scheduler backends, and attaching a plane never changes a
simulation's cycle count (increments are observational only).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["COUNTER_KINDS", "CounterPlane"]

#: Per-segment counter kinds, in slot order.  ``grants`` counts tenures
#: retired (== arbiter grants in fault-free runs); ``wait_cycles`` is the
#: summed request->grant arbitration wait.
COUNTER_KINDS: Tuple[str, ...] = ("transactions", "grants", "wait_cycles")


class CounterPlane:
    """A flat slot array of per-segment integer counters.

    Unbound planes hold no storage; :meth:`bind` (called by
    ``Machine.attach_counters``) allocates ``len(COUNTER_KINDS)`` slots per
    segment in name-sorted order and points every segment's
    ``counters``/``counter_base`` attributes at the shared list.  A plane
    binds to one machine at a time; re-binding to the same machine is a
    no-op so hook attach/despecialize cycles keep accumulating into the
    same slots.
    """

    __slots__ = ("slots", "segment_order", "_base", "_machine_name")

    def __init__(self):
        self.slots: List[int] = []
        self.segment_order: List[str] = []
        self._base: Dict[str, int] = {}
        self._machine_name: Optional[str] = None

    # -- binding ---------------------------------------------------------
    def bind(self, machine) -> None:
        """Allocate slots for ``machine`` and wire its segments to them."""
        if self._machine_name is not None:
            if self._machine_name != machine.name or self.segment_order != sorted(
                machine.segments
            ):
                raise ValueError(
                    "counter plane already bound to machine %r; build one "
                    "plane per machine" % self._machine_name
                )
        else:
            self._machine_name = machine.name
            self.segment_order = sorted(machine.segments)
            self.slots = [0] * (len(COUNTER_KINDS) * len(self.segment_order))
            self._base = {
                name: index * len(COUNTER_KINDS)
                for index, name in enumerate(self.segment_order)
            }
        slots = self.slots
        for name, segment in machine.segments.items():
            segment.counters = slots
            segment.counter_base = self._base[name]

    @property
    def bound(self) -> bool:
        return self._machine_name is not None

    # -- lookup ----------------------------------------------------------
    def base_of(self, segment_name: str) -> int:
        """Slot index of ``segment_name``'s first counter."""
        return self._base[segment_name]

    def index_of(self, segment_name: str, kind: str) -> int:
        return self._base[segment_name] + COUNTER_KINDS.index(kind)

    def value(self, segment_name: str, kind: str) -> int:
        return self.slots[self.index_of(segment_name, kind)]

    # -- export ----------------------------------------------------------
    def totals(self) -> Dict[str, Dict[str, int]]:
        """``{segment: {kind: value}}`` in name-sorted segment order."""
        width = len(COUNTER_KINDS)
        return {
            name: {
                kind: self.slots[self._base[name] + offset]
                for offset, kind in enumerate(COUNTER_KINDS)
            }
            for name in self.segment_order
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kinds": list(COUNTER_KINDS),
            "segments": self.totals(),
        }

    def check_against_stats(self, machine) -> List[str]:
        """Consistency failures vs the machine's :class:`BusStats` counters.

        ``transactions`` and ``wait_cycles`` must match the stats exactly on
        every backend, specialized or not -- the cross-backend parity check
        behind the compiled backend's zero-despecialization claim.
        """
        failures: List[str] = []
        for name in self.segment_order:
            segment = machine.segments.get(name)
            if segment is None:
                failures.append("segment %r missing from machine" % name)
                continue
            stats = segment.stats
            got_txn = self.value(name, "transactions")
            if got_txn != stats.transactions:
                failures.append(
                    "%s: counter transactions %d != BusStats %d"
                    % (name, got_txn, stats.transactions)
                )
            got_wait = self.value(name, "wait_cycles")
            if got_wait != stats.arbitration_cycles:
                failures.append(
                    "%s: counter wait_cycles %d != BusStats %d"
                    % (name, got_wait, stats.arbitration_cycles)
                )
        return failures
