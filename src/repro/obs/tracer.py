"""Span-based transaction tracer and trace exporters.

The tracer records *transactions*, not signal edges: one span per bus
tenure carrying the request time, the arbitration-grant boundary and the
completion time, plus instantaneous marks for bridge hops, arbiter grants
and FIFO fill levels.  That is the level the paper reasons at (where do
the cycles of Tables II-V go?) and what LiteX-style simulation tooling
exports for humans.

Storage is deliberately primitive -- flat lists of tuples, appended on the
hot path only behind an ``if tracer.enabled:`` guard -- so an enabled trace
costs one tuple per tenure and a disabled one costs a single attribute
load (the :data:`NULL_TRACER` singleton's ``enabled`` is ``False`` and its
record methods are no-ops).

Exporters:

* :func:`write_chrome_trace` -- Chrome ``trace_event`` JSON (the
  ``{"traceEvents": [...]}`` object form), loadable in Perfetto or
  ``chrome://tracing``.  One simulated bus cycle is exported as one
  microsecond of trace time; every bus segment becomes a named thread
  lane, with arbitration and data-tenure phases as nested complete
  events, bridge hops as instants and FIFO fill as counter tracks.
* :func:`write_jsonl` -- one JSON object per line, for ad-hoc analysis
  with ``jq``/pandas.

:func:`validate_chrome_trace` checks the structural contract (well-formed
events, monotonically ordered ``ts``) and is reused by the CI trace-check
step (``python -m repro.obs.validate``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "iter_jsonl_records",
    "write_jsonl",
    "validate_chrome_trace",
]

# Transaction tuple layout (kept flat for append speed):
# (segment, master, start, acquired, end, words, write, memory_cycles)
TransactionTuple = Tuple[str, str, int, int, int, int, bool, int]


class Tracer:
    """Records transaction spans and instantaneous marks in bus cycles."""

    enabled = True

    def __init__(self):
        self.transactions: List[TransactionTuple] = []
        # (cycle, bridge name)
        self.hops: List[Tuple[int, str]] = []
        # (cycle, fifo name, op, words, fill-after)
        self.fifo_ops: List[Tuple[int, str, str, int, int]] = []
        # (cycle, lane, name, args) -- generic instantaneous marks; ``lane``
        # names the thread track the event is drawn on.
        self.instants: List[Tuple[int, str, str, Optional[Dict[str, Any]]]] = []

    # -- recording (hot-path entry points) ------------------------------
    def transaction(
        self,
        segment: str,
        master: str,
        start: int,
        acquired: int,
        end: int,
        words: int,
        write: bool,
        memory_cycles: int = 0,
    ) -> None:
        self.transactions.append(
            (segment, master, start, acquired, end, words, write, memory_cycles)
        )

    def hop(self, cycle: int, bridge: str) -> None:
        self.hops.append((cycle, bridge))

    def fifo(self, cycle: int, fifo: str, op: str, words: int, fill: int) -> None:
        self.fifo_ops.append((cycle, fifo, op, words, fill))

    def instant(
        self, cycle: int, lane: str, name: str, args: Optional[Dict[str, Any]] = None
    ) -> None:
        self.instants.append((cycle, lane, name, args))

    def fault(self, cycle: int, site: str, kind: str, outcome: str) -> None:
        """Mark a fault-injection episode on the ``faults`` lane."""
        self.instants.append(
            (cycle, "faults", "%s %s" % (kind, outcome), {"site": site})
        )

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return (
            len(self.transactions)
            + len(self.hops)
            + len(self.fifo_ops)
            + len(self.instants)
        )

    def clear(self) -> None:
        del self.transactions[:]
        del self.hops[:]
        del self.fifo_ops[:]
        del self.instants[:]

    def span_cycle_sums(self) -> Dict[str, Dict[str, int]]:
        """Per-segment ``{"arbitration": ..., "tenure": ..., "busy": ...}``.

        The invariant gated by tests: these sums match the segment's
        :class:`~repro.sim.stats.BusStats` counters exactly
        (``arbitration`` == ``arbitration_cycles``, ``busy`` ==
        ``busy_cycles``).
        """
        sums: Dict[str, Dict[str, int]] = {}
        for segment, _master, start, acquired, end, _w, _wr, _m in self.transactions:
            entry = sums.setdefault(
                segment, {"arbitration": 0, "tenure": 0, "busy": 0, "transactions": 0}
            )
            entry["arbitration"] += acquired - start
            entry["tenure"] += end - acquired
            entry["busy"] += end - start
            entry["transactions"] += 1
        return sums


class NullTracer(Tracer):
    """The disabled tracer: records nothing, costs one attribute load."""

    enabled = False

    def transaction(self, *args, **kwargs) -> None:
        pass

    def hop(self, *args, **kwargs) -> None:
        pass

    def fifo(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def fault(self, *args, **kwargs) -> None:
        pass


#: Shared no-op tracer; simulation models default to this singleton so the
#: disabled path never allocates.
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------


def _lane_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable thread-id assignment: name-sorted lanes, tid starting at 1."""
    lanes = set()
    for segment, *_rest in tracer.transactions:
        lanes.add(segment)
    lanes.update(bridge for _c, bridge in tracer.hops)
    lanes.update(fifo for _c, fifo, *_rest in tracer.fifo_ops)
    lanes.update(lane for _c, lane, _n, _a in tracer.instants)
    return {name: index for index, name in enumerate(sorted(lanes), start=1)}


def chrome_trace_events(
    tracer: Tracer, pid: int = 1, registry: Any = None
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list: metadata first, then ts-sorted events.

    One bus cycle maps to one microsecond of trace time (``ts``/``dur``
    are in microseconds per the trace_event spec); Perfetto's timeline
    therefore reads directly in cycles.

    With a :class:`~repro.obs.metrics.MetricsRegistry`, every
    :class:`~repro.obs.metrics.TimeSeries` metric (per-segment occupancy)
    is additionally exported as a Perfetto counter track: one ``"C"``
    event per window with the window's busy-cycle count, drawn on tid 0
    alongside the span lanes.
    """
    lanes = _lane_ids(tracer)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "bus-simulator"},
        }
    ]
    for lane_name, tid in sorted(lanes.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane_name},
            }
        )
    timed: List[Dict[str, Any]] = []
    for segment, master, start, acquired, end, words, write, memory in tracer.transactions:
        tid = lanes[segment]
        op = "W" if write else "R"
        common_args = {
            "master": master,
            "segment": segment,
            "words": words,
            "op": op,
            "memory_cycles": memory,
        }
        timed.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "cat": "arbitration",
                "name": "arb %s %s" % (master, op),
                "ts": start,
                "dur": acquired - start,
                "args": common_args,
            }
        )
        timed.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "cat": "tenure",
                "name": "%s %s %dw" % (master, op, words),
                "ts": acquired,
                "dur": end - acquired,
                "args": common_args,
            }
        )
    for cycle, bridge in tracer.hops:
        timed.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": lanes[bridge],
                "cat": "bridge",
                "name": "hop %s" % bridge,
                "ts": cycle,
                "s": "t",
            }
        )
    for cycle, fifo, op, words, fill in tracer.fifo_ops:
        timed.append(
            {
                "ph": "C",
                "pid": pid,
                "tid": lanes[fifo],
                "cat": "fifo",
                "name": "fill %s" % fifo,
                "ts": cycle,
                "args": {"fill": fill, "op": op, "words": words},
            }
        )
    for cycle, lane, name, args in tracer.instants:
        event: Dict[str, Any] = {
            "ph": "i",
            "pid": pid,
            "tid": lanes[lane],
            "cat": "mark",
            "name": name,
            "ts": cycle,
            "s": "t",
        }
        if args:
            event["args"] = args
        timed.append(event)
    if registry is not None:
        for name in registry.names():
            metric = registry.get(name)
            if getattr(metric, "kind", None) != "series":
                continue
            for window_start, busy, _fraction in metric.series():
                timed.append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "tid": 0,
                        "cat": "metrics",
                        "name": name,
                        "ts": window_start,
                        "args": {"busy_cycles": busy},
                    }
                )
    timed.sort(key=lambda event: event["ts"])
    events.extend(timed)
    return events


def to_chrome_trace(
    tracer: Tracer, pid: int = 1, registry: Any = None
) -> Dict[str, Any]:
    """The full JSON-object-format trace document."""
    return {
        "traceEvents": chrome_trace_events(tracer, pid=pid, registry=registry),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.tracer",
            "time_unit": "1 trace microsecond == 1 bus cycle",
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str, pid: int = 1, registry: Any = None
) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, pid=pid, registry=registry), handle)
        handle.write("\n")


# ----------------------------------------------------------------------
# JSONL export
# ----------------------------------------------------------------------


def iter_jsonl_records(tracer: Tracer):
    """Yield one flat dict per recorded trace item, in time order."""
    records: List[Dict[str, Any]] = []
    for segment, master, start, acquired, end, words, write, memory in tracer.transactions:
        records.append(
            {
                "type": "transaction",
                "segment": segment,
                "master": master,
                "start": start,
                "acquired": acquired,
                "end": end,
                "words": words,
                "write": write,
                "memory_cycles": memory,
            }
        )
    for cycle, bridge in tracer.hops:
        records.append({"type": "bridge_hop", "cycle": cycle, "bridge": bridge})
    for cycle, fifo, op, words, fill in tracer.fifo_ops:
        records.append(
            {
                "type": "fifo",
                "cycle": cycle,
                "fifo": fifo,
                "op": op,
                "words": words,
                "fill": fill,
            }
        )
    for cycle, lane, name, args in tracer.instants:
        record = {"type": "instant", "cycle": cycle, "lane": lane, "name": name}
        if args:
            record["args"] = args
        records.append(record)
    records.sort(key=lambda record: record.get("start", record.get("cycle", 0)))
    return iter(records)


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        for record in iter_jsonl_records(tracer):
            handle.write(json.dumps(record))
            handle.write("\n")


# ----------------------------------------------------------------------
# Validation (shared by tests and the CI trace-check step)
# ----------------------------------------------------------------------

_VALID_PHASES = {"M", "X", "i", "C", "B", "E", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(document: Any) -> List[str]:
    """Structural checks on a trace document; returns failure strings.

    Enforced contract: object form with a ``traceEvents`` list, every
    event carries ``ph``/``name``/``pid``/``tid``, timed events carry a
    numeric non-negative ``ts`` in monotonically non-decreasing order,
    and ``X`` events carry a non-negative ``dur``.
    """
    failures: List[str] = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["trace is not an object with a traceEvents list"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_ts: Optional[float] = None
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            failures.append("event %d is not an object" % index)
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                failures.append("event %d missing %r" % (index, key))
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            failures.append("event %d has unknown phase %r" % (index, phase))
        if phase == "M":
            if "ts" in event:
                failures.append("metadata event %d carries a ts" % index)
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            failures.append("event %d has bad ts %r" % (index, ts))
            continue
        if last_ts is not None and ts < last_ts:
            failures.append(
                "event %d ts %s not monotonically ordered (previous %s)"
                % (index, ts, last_ts)
            )
        last_ts = ts
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                failures.append("event %d has bad dur %r" % (index, dur))
        elif phase == "C":
            # Counter tracks (FIFO fill, occupancy): every sample must be
            # a finite non-negative number or Perfetto draws garbage.
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                failures.append("counter event %d has no args" % index)
                continue
            for key, value in args.items():
                if isinstance(value, str):
                    continue  # annotation fields (e.g. fifo op) are fine
                if not isinstance(value, (int, float)) or value < 0:
                    failures.append(
                        "counter event %d (%r) has non-numeric or negative "
                        "sample %s=%r" % (index, event.get("name"), key, value)
                    )
    return failures
