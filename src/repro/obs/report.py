"""Run telemetry: structured per-run reports and deterministic aggregation.

A :class:`RunReport` captures what one simulation (or generation) run did:
wall time, simulated cycles, kernel events, peak event-queue depth, and
per-segment / per-PE / per-FIFO breakdowns including utilization and
arbitration-wait percentiles.  Experiment case workers record one report
per case (:func:`record_run`); the parallel runner drains the process-local
recorder after each case (:func:`drain_recorded`) so reports ride back to
the parent attached to the case telemetry, in deterministic input order.

:func:`aggregate_run_reports` folds a list of report dicts into one
summary: integer counters sum exactly, peaks take the max, per-segment
rows merge keyed by name -- the same result regardless of ``--jobs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "RunReport",
    "build_run_report",
    "aggregate_run_reports",
    "record_run",
    "drain_recorded",
]


@dataclass
class RunReport:
    """Telemetry for one run.  All cycle fields are bus-clock cycles."""

    name: str = ""
    wall_seconds: float = 0.0
    simulated_cycles: int = 0
    events_processed: int = 0
    peak_queue_depth: int = 0
    segments: List[Dict[str, Any]] = field(default_factory=list)
    pes: List[Dict[str, Any]] = field(default_factory=list)
    fifos: List[Dict[str, Any]] = field(default_factory=list)
    bridges: List[Dict[str, Any]] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "simulated_cycles": self.simulated_cycles,
            "events_processed": self.events_processed,
            "events_per_second": self.events_per_second(),
            "peak_queue_depth": self.peak_queue_depth,
            "segments": self.segments,
            "pes": self.pes,
            "fifos": self.fifos,
            "bridges": self.bridges,
            "extras": self.extras,
        }

    def to_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary_lines(self) -> List[str]:
        """Human-oriented digest (used by ``repro trace`` / ``repro stats``)."""
        lines = [
            "%s: %d cycles, %d events (%.0f events/sec), peak queue depth %d"
            % (
                self.name or "run",
                self.simulated_cycles,
                self.events_processed,
                self.events_per_second(),
                self.peak_queue_depth,
            )
        ]
        for segment in self.segments:
            lines.append(
                "  %-20s util %5.1f%%  %6d txns  busy %8d  arb-wait mean %6.1f"
                % (
                    segment["name"],
                    100.0 * segment["utilization"],
                    segment["transactions"],
                    segment["busy_cycles"],
                    segment["mean_arbitration_wait"],
                )
            )
        return lines


def _segment_entry(segment, elapsed_cycles: int) -> Dict[str, Any]:
    stats = segment.stats
    held = stats.held_cycles
    entry: Dict[str, Any] = {
        "name": segment.name,
        "transactions": stats.transactions,
        "reads": stats.read_transactions,
        "writes": stats.write_transactions,
        "words_moved": stats.words_moved,
        "busy_cycles": stats.busy_cycles,
        "arbitration_cycles": stats.arbitration_cycles,
        "memory_cycles": stats.memory_cycles,
        "held_cycles": held,
        "elapsed_cycles": elapsed_cycles,
        "utilization": stats.utilization(elapsed_cycles),
        "mean_arbitration_wait": stats.mean_arbitration_wait(),
        "peak_pending_requests": segment.arbiter.peak_pending,
        "arbiter_grants": segment.arbiter.grants,
        "attached_interfaces": segment.attached_interfaces,
    }
    hist = stats._arb_hist
    if hist is not None:
        entry["arb_wait_p50"] = hist.percentile(50)
        entry["arb_wait_p90"] = hist.percentile(90)
        entry["arb_wait_p99"] = hist.percentile(99)
        entry["occupancy_peak_fraction"] = stats._occupancy.peak()
    return entry


def build_run_report(
    machine, wall_seconds: float = 0.0, name: Optional[str] = None
) -> RunReport:
    """Snapshot a machine (post-run) into a :class:`RunReport`.

    Works on any machine -- observability attached or not; the percentile
    fields simply appear only when the segment histograms exist.
    """
    sim = machine.sim
    elapsed = sim.now
    report = RunReport(
        name=name or machine.name,
        wall_seconds=wall_seconds,
        simulated_cycles=elapsed,
        events_processed=sim.events_processed,
        peak_queue_depth=getattr(sim, "peak_queue_depth", 0),
    )
    for segment_name in sorted(machine.segments):
        report.segments.append(
            _segment_entry(machine.segments[segment_name], elapsed)
        )
    for pe_name in sorted(machine.pes):
        report.pes.append(machine.pes[pe_name].stats.as_dict())
    for ban in sorted(machine.fifo_blocks):
        block = machine.fifo_blocks[ban]
        for fifo in (block.up, block.down):
            report.fifos.append(
                {
                    "name": fifo.name,
                    "pushes": fifo.pushes,
                    "pops": fifo.pops,
                    "peak_fill": fifo.peak_fill,
                    "depth_words": fifo.depth_words,
                    "interrupts_raised": fifo.interrupts_raised,
                }
            )
    for bridge in machine.bridges:
        report.bridges.append(
            {
                "name": bridge.name,
                "crossings": bridge.crossings,
                "hop_cycles": bridge.hop_cycles,
                "enabled": bridge.enabled,
            }
        )
    faults = getattr(machine, "_faults", None)
    if faults is not None:
        report.extras["resilience"] = faults.resilience_report().as_dict()
    plane = getattr(machine, "_counters", None)
    if plane is not None and plane.bound:
        report.extras["counters"] = plane.as_dict()
    return report


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

_SEGMENT_SUM_KEYS = (
    "transactions",
    "reads",
    "writes",
    "words_moved",
    "busy_cycles",
    "arbitration_cycles",
    "memory_cycles",
    "held_cycles",
    "elapsed_cycles",
)


def aggregate_run_reports(reports: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold report dicts into one summary, independent of worker layout.

    Counters sum (exact integer arithmetic), peaks take the max, and
    per-segment rows merge keyed by segment name with utilization
    recomputed as total held cycles over total elapsed cycles.  The
    output depends only on the report *sequence*, which the runner keeps
    in case order for any ``jobs`` value.
    """
    segments: Dict[str, Dict[str, Any]] = {}
    aggregate: Dict[str, Any] = {
        "runs": len(reports),
        "wall_seconds": 0.0,
        "simulated_cycles": 0,
        "events_processed": 0,
        "peak_queue_depth": 0,
    }
    for report in reports:
        aggregate["wall_seconds"] += report.get("wall_seconds", 0.0)
        aggregate["simulated_cycles"] += report.get("simulated_cycles", 0)
        aggregate["events_processed"] += report.get("events_processed", 0)
        aggregate["peak_queue_depth"] = max(
            aggregate["peak_queue_depth"], report.get("peak_queue_depth", 0)
        )
        for row in report.get("segments", ()):
            merged = segments.setdefault(
                row["name"],
                {"name": row["name"], "peak_pending_requests": 0},
            )
            for key in _SEGMENT_SUM_KEYS:
                merged[key] = merged.get(key, 0) + row.get(key, 0)
            merged["peak_pending_requests"] = max(
                merged["peak_pending_requests"], row.get("peak_pending_requests", 0)
            )
    for merged in segments.values():
        elapsed = merged.get("elapsed_cycles", 0)
        merged["utilization"] = (
            merged.get("held_cycles", 0) / elapsed if elapsed > 0 else 0.0
        )
        transactions = merged.get("transactions", 0)
        merged["mean_arbitration_wait"] = (
            merged.get("arbitration_cycles", 0) / transactions if transactions else 0.0
        )
    aggregate["segments"] = [segments[name] for name in sorted(segments)]
    total_elapsed = sum(row["elapsed_cycles"] for row in aggregate["segments"])
    total_held = sum(row["held_cycles"] for row in aggregate["segments"])
    aggregate["overall_utilization"] = (
        total_held / total_elapsed if total_elapsed > 0 else 0.0
    )
    return aggregate


# ----------------------------------------------------------------------
# Process-local run recorder (threaded through the parallel runner)
# ----------------------------------------------------------------------

_RECORDED: List[Dict[str, Any]] = []


def record_run(report) -> None:
    """Record a report (``RunReport`` or dict) for the current process.

    Case workers call this after a run; :func:`drain_recorded` (called by
    ``repro.experiments.runner._invoke`` around each case) moves the
    reports onto the case's telemetry, including inside pool workers.
    """
    _RECORDED.append(report.as_dict() if isinstance(report, RunReport) else dict(report))


def drain_recorded() -> List[Dict[str, Any]]:
    """Return and clear all reports recorded in this process."""
    drained = list(_RECORDED)
    del _RECORDED[:]
    return drained
