"""Append-only, content-addressed run ledger.

Fleet telemetry needs evidence that survives *across* runs: which
configuration ran, on which backend, at which revision, and what came out.
Every CLI verb (``simulate``, ``table``, ``bench``, ``chaos``, ``verify``,
``compile``) appends one :func:`build_record` RunRecord here; ``repro
report`` (:mod:`repro.obs.query`) filters, diffs and regression-gates the
accumulated records.

Records are split into two parts:

* a **hashed body** -- verb, options + options hash, backend, architecture,
  git revision, simulated cycles, metrics-registry snapshot, and the
  verb's own summary (RunReport / ResilienceReport / verify findings),
  with all wall-clock measurements recursively scrubbed out
  (:func:`scrub_timings`).  The record's identity is the SHA-256 of this
  body's canonical JSON: the same options + seed + backend + revision
  produce the same hash on every machine, every time of day.
* a **non-hashed envelope** -- timestamp, host, pid, wall seconds, and the
  scrubbed-out measurements.  Everything nondeterministic lives here, so
  determinism is testable (``tests/test_ledger.py``) and a re-run that
  changes the hash is a *behaviour* change, never a timing wobble.

On disk a ledger directory holds ``records.jsonl`` (one record per line,
append-only) and ``index.jsonl`` (one ``{hash, verb, offset}`` line per
record -- the content-addressed index; ``offset`` is the byte offset of the
record line, so lookup by hash prefix is one index scan plus one seek).
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import subprocess
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "RECORD_VERSION",
    "DEFAULT_LEDGER_DIR",
    "TIMING_KEYS",
    "scrub_timings",
    "canonical_json",
    "content_hash",
    "options_hash",
    "git_revision",
    "build_record",
    "Ledger",
]

#: Bump when the hashed-body layout changes; validate.py refuses unknown
#: versions so stale tooling fails loudly instead of misreading records.
RECORD_VERSION = 1

DEFAULT_LEDGER_DIR = os.path.join(".repro", "ledger")

#: Keys (at any nesting depth) holding wall-clock measurements.  They are
#: moved out of the hashed body into the envelope: simulated cycles are
#: deterministic, host seconds are not.
TIMING_KEYS = frozenset(
    [
        "wall_seconds",
        "seconds",
        "all_seconds",
        "events_per_second",
        "generation_time_ms",
        "sequential_seconds",
        "parallel_seconds",
        "sequential_all",
        "parallel_all",
        "speedup",
        "overhead_fraction",
        "events_per_sec",
        "measured_events_per_sec",
        "seconds_on",
        "seconds_off",
        # Whole bench sections of wall-clock ratios (see bench/harness.py).
        "vs_seed",
        "ab",
        # DSE sweep nondeterminism: cache state and scheduling are host
        # facts, not design facts (see dse/engine.py).
        "cached",
        "cache_stats",
        "shard_stats",
        "configs_per_sec",
        "cold_seconds",
        "warm_seconds",
    ]
)


def scrub_timings(value: Any) -> Any:
    """Deep-copy ``value`` with every :data:`TIMING_KEYS` entry removed."""
    if isinstance(value, dict):
        return {
            key: scrub_timings(item)
            for key, item in value.items()
            if key not in TIMING_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [scrub_timings(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(body: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def options_hash(options: Any) -> str:
    """Short hash identifying a configuration (options dict or namespace)."""
    if hasattr(options, "__dict__") and not isinstance(options, dict):
        options = {
            key: value
            for key, value in vars(options).items()
            if not key.startswith("_")
        }
    return content_hash(_jsonable(options))[:12]


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable structures."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [_jsonable(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "as_dict"):
        return _jsonable(value.as_dict())
    if hasattr(value, "__dict__"):
        return _jsonable(
            {k: v for k, v in vars(value).items() if not k.startswith("_")}
        )
    return repr(value)


_GIT_REVISION_CACHE: Dict[str, str] = {}


def git_revision(cwd: Optional[str] = None) -> str:
    """Short git revision of ``cwd`` (or the process cwd); ``"unknown"``
    outside a work tree or without a git binary."""
    key = cwd or os.getcwd()
    cached = _GIT_REVISION_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        rev = (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=key,
                capture_output=True,
                timeout=10,
            )
            .stdout.decode("ascii", "replace")
            .strip()
        )
    except (OSError, subprocess.SubprocessError):
        rev = ""
    rev = rev or "unknown"
    _GIT_REVISION_CACHE[key] = rev
    return rev


def build_record(
    verb: str,
    options: Any = None,
    backend: Optional[str] = None,
    arch: Optional[str] = None,
    summary: Any = None,
    registry: Any = None,
    sim_cycles: Optional[int] = None,
    wall_seconds: float = 0.0,
    rev: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one versioned RunRecord (hashed body + envelope).

    ``summary`` is the verb's own result payload (a RunReport dict, a
    chaos/verify summary, table rows, ...); its timing keys are scrubbed
    into the envelope's ``measurements``.  ``registry`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` to snapshot.
    """
    options_payload = _jsonable(options) if options is not None else None
    summary_payload = _jsonable(summary) if summary is not None else None
    body: Dict[str, Any] = {
        "verb": verb,
        "backend": backend,
        "arch": arch,
        "options": options_payload,
        "options_hash": options_hash(options) if options is not None else None,
        "git_rev": rev if rev is not None else git_revision(),
        "sim_cycles": sim_cycles,
        "metrics": _jsonable(registry.as_dict()) if registry is not None else None,
        "summary": scrub_timings(summary_payload),
    }
    record = {
        "version": RECORD_VERSION,
        "hash": content_hash(body),
        "body": body,
        "envelope": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "wall_seconds": wall_seconds,
            "measurements": _timing_residue(summary_payload),
        },
    }
    return record


def _timing_residue(value: Any, path: str = "") -> Dict[str, Any]:
    """Flat ``{dotted.path: value}`` of every scrubbed timing key."""
    residue: Dict[str, Any] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            where = "%s.%s" % (path, key) if path else str(key)
            if key in TIMING_KEYS:
                residue[where] = item
            else:
                residue.update(_timing_residue(item, where))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            residue.update(_timing_residue(item, "%s[%d]" % (path, index)))
    return residue


class Ledger:
    """One ledger directory: append-only records plus a hash index."""

    def __init__(self, root: str = DEFAULT_LEDGER_DIR):
        self.root = root
        self.records_path = os.path.join(root, "records.jsonl")
        self.index_path = os.path.join(root, "index.jsonl")

    # -- writing ---------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> str:
        """Append one record; returns its content hash."""
        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.records_path, "a") as handle:
            handle.seek(0, os.SEEK_END)
            offset = handle.tell()
            handle.write(line + "\n")
        index_entry = {
            "hash": record["hash"],
            "verb": record["body"]["verb"],
            "offset": offset,
        }
        with open(self.index_path, "a") as handle:
            handle.write(
                json.dumps(index_entry, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        return record["hash"]

    def write(
        self,
        verb: str,
        **kwargs: Any,
    ) -> str:
        """``append(build_record(verb, **kwargs))`` in one call."""
        return self.append(build_record(verb, **kwargs))

    # -- reading ---------------------------------------------------------
    @property
    def exists(self) -> bool:
        return os.path.exists(self.records_path)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if not self.exists:
            return
        with open(self.records_path) as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    raise ValueError(
                        "%s:%d: not valid JSON" % (self.records_path, number)
                    )

    def records(self) -> List[Dict[str, Any]]:
        return list(self)

    def index(self) -> List[Dict[str, Any]]:
        if not os.path.exists(self.index_path):
            return []
        entries = []
        with open(self.index_path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        return entries

    def find(self, hash_prefix: str) -> Optional[Dict[str, Any]]:
        """Look up one record by (a prefix of) its content hash.

        Uses the index to seek directly into ``records.jsonl``.  Raises
        ``LookupError`` when the prefix is ambiguous.
        """
        matches = [
            entry for entry in self.index() if entry["hash"].startswith(hash_prefix)
        ]
        hashes = {entry["hash"] for entry in matches}
        if not matches:
            return None
        if len(hashes) > 1:
            raise LookupError(
                "hash prefix %r is ambiguous (%d records)"
                % (hash_prefix, len(hashes))
            )
        # Last write wins for identical re-runs (same hash appended twice).
        entry = matches[-1]
        with open(self.records_path) as handle:
            handle.seek(entry["offset"])
            return json.loads(handle.readline())
