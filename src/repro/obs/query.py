"""Query, diff and regression-gate the run ledger (``repro report``).

Three capabilities over :mod:`repro.obs.ledger` records:

* **filter/aggregate** -- slice records by verb x backend x architecture x
  revision and summarize each group (run count, latest hash/revision,
  simulated cycles); sweep verbs (``dse``/``fuzz``) additionally get
  :func:`coverage_rows` -- skip-reason totals from the shared legality
  map plus artifact-cache hit/miss totals;
* **diff** -- field-by-field comparison of two records' hashed bodies,
  addressed by content-hash prefix; identical hashes are identical runs by
  construction, so a diff is always a behaviour difference;
* **check** -- regression gates for CI: chaos/verify records must report
  ``ok``, fuzz records must have a stable corpus replay and no untriaged
  findings, bench throughput measurements must clear the per-backend
  ``ci_floor`` entries of ``benchmarks/baselines.json`` (with the file's
  ``ci_regression_tolerance`` margin), and counter overhead must stay
  within ``gates.counters_overhead_max``.  :func:`check_regressions`
  returns machine-readable findings; the CLI exits non-zero when any
  exist.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .ledger import Ledger

__all__ = [
    "filter_records",
    "aggregate_records",
    "coverage_rows",
    "diff_bodies",
    "check_regressions",
    "load_baselines",
]


def load_baselines(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Filtering and aggregation
# ----------------------------------------------------------------------


def filter_records(
    records: List[Dict[str, Any]],
    verb: Optional[str] = None,
    backend: Optional[str] = None,
    arch: Optional[str] = None,
    rev: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Slice ledger records; ``arch`` also matches multi-arch records whose
    body lists architectures (table/chaos/verify sweeps)."""
    out = []
    for record in records:
        body = record.get("body", {})
        if verb is not None and body.get("verb") != verb:
            continue
        if backend is not None and not _matches_multi(body, "backend", backend):
            continue
        if arch is not None and not _matches_multi(body, "arch", arch):
            continue
        if rev is not None and body.get("git_rev") != rev:
            continue
        out.append(record)
    return out


def _matches_multi(body: Dict[str, Any], field: str, wanted: str) -> bool:
    value = body.get(field)
    if value == wanted:
        return True
    if isinstance(value, list) and wanted in value:
        return True
    summary = body.get("summary")
    if isinstance(summary, dict):
        plural = {"backend": "backends", "arch": "architectures"}[field]
        listed = summary.get(plural)
        if isinstance(listed, list) and wanted in listed:
            return True
    return False


def aggregate_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Group by (verb, arch, backend); one summary row per group.

    Rows are sorted by group key; ``sim_cycles`` is the latest record's
    (None for verbs without a single simulated run).
    """
    groups: Dict[Tuple[str, str, str], List[Dict[str, Any]]] = {}
    for record in records:
        body = record.get("body", {})
        key = (
            str(body.get("verb")),
            _scalar(body.get("arch")),
            _scalar(body.get("backend")),
        )
        groups.setdefault(key, []).append(record)
    rows = []
    for key in sorted(groups):
        members = groups[key]
        last = members[-1]
        body = last.get("body", {})
        rows.append(
            {
                "verb": key[0],
                "arch": key[1],
                "backend": key[2],
                "runs": len(members),
                "distinct_hashes": len({m.get("hash") for m in members}),
                "last_hash": last.get("hash", "")[:12],
                "last_rev": body.get("git_rev"),
                "options_hash": body.get("options_hash"),
                "sim_cycles": body.get("sim_cycles"),
            }
        )
    return rows


#: Verbs whose summaries carry generator/expander skip-reason counters and
#: whose envelopes carry artifact-cache hit/miss measurements.
COVERAGE_VERBS = ("dse", "fuzz")


def coverage_rows(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-verb coverage totals for the sweep verbs (``dse``, ``fuzz``).

    Aggregates, across every matching record, the *evaluated* config
    count, the skip-reason counters (why legality filtering rejected
    draws/expansions -- the legality map the fuzzer and DSE expander
    share), and the artifact-cache hit/miss totals read back from the
    envelope's scrubbed measurements.  One row per verb, sorted.
    """
    totals: Dict[str, Dict[str, Any]] = {}
    for record in records:
        body = record.get("body", {})
        verb = body.get("verb")
        if verb not in COVERAGE_VERBS:
            continue
        summary = body.get("summary") or {}
        if not isinstance(summary, dict):
            continue
        row = totals.setdefault(
            verb,
            {
                "verb": verb,
                "runs": 0,
                "evaluated": 0,
                "skipped": {},
                "cache_hits": 0,
                "cache_misses": 0,
            },
        )
        row["runs"] += 1
        evaluated = summary.get("sampled", summary.get("configs"))
        if isinstance(evaluated, int):
            row["evaluated"] += evaluated
        skipped = summary.get("skipped")
        if isinstance(skipped, dict):
            for reason, count in skipped.items():
                if isinstance(count, int):
                    row["skipped"][str(reason)] = (
                        row["skipped"].get(str(reason), 0) + count
                    )
        cache = (
            record.get("envelope", {}).get("measurements", {}).get("cache_stats")
        )
        if isinstance(cache, dict):
            row["cache_hits"] += int(cache.get("hits") or 0)
            row["cache_misses"] += int(cache.get("misses") or 0)
    rows = []
    for verb in sorted(totals):
        row = totals[verb]
        lookups = row["cache_hits"] + row["cache_misses"]
        row["cache_hit_ratio"] = (row["cache_hits"] / lookups) if lookups else 0.0
        row["skipped"] = dict(sorted(row["skipped"].items()))
        rows.append(row)
    return rows


def _scalar(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, list):
        return ",".join(str(item) for item in value)
    return str(value)


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------


def diff_bodies(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Tuple[str, Any, Any]]:
    """Field-by-field diff of two records' hashed bodies.

    Returns ``(dotted.path, value_a, value_b)`` for every leaf that
    differs, with ``None`` standing in for an absent side.
    """
    diffs: List[Tuple[str, Any, Any]] = []
    _walk_diff(a.get("body", {}), b.get("body", {}), "", diffs)
    return diffs


def _walk_diff(a: Any, b: Any, path: str, out: List[Tuple[str, Any, Any]]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            where = "%s.%s" % (path, key) if path else str(key)
            _walk_diff(a.get(key), b.get(key), where, out)
        return
    if isinstance(a, list) and isinstance(b, list):
        for index in range(max(len(a), len(b))):
            where = "%s[%d]" % (path, index)
            item_a = a[index] if index < len(a) else None
            item_b = b[index] if index < len(b) else None
            _walk_diff(item_a, item_b, where, out)
        return
    if a != b:
        out.append((path, a, b))


# ----------------------------------------------------------------------
# Regression gates
# ----------------------------------------------------------------------


#: Full-size int_yield process count: smoke-scale microbenches are too
#: noisy to gate on, so the floor check only fires at (or above) this
#: workload size (mirrors bench/harness.py's --enforce-floor policy).
FULL_INT_YIELD_PROCS = 64


def check_regressions(
    records: List[Dict[str, Any]],
    baselines: Dict[str, Any],
) -> List[Dict[str, Any]]:
    """CI regression findings over a ledger; empty means gates pass.

    Per record: chaos/verify summaries must report ``ok``; fuzz records
    must have a stable corpus replay and zero new findings; bench records
    must have no harness failures, full-size ``int_yield`` throughput
    (a wall-clock number, read back from the envelope's measurements)
    must clear the per-backend ``ci_floor`` less
    ``ci_regression_tolerance``, counter runs must stay bit-identical,
    and non-smoke counter overhead must stay within
    ``gates.counters_overhead_max``.
    """
    gates = baselines.get("gates", {})
    tolerance = float(gates.get("ci_regression_tolerance", 0.2))
    floors = baselines.get("ci_floor", {})
    overhead_max = gates.get("counters_overhead_max")
    findings: List[Dict[str, Any]] = []

    def flag(record, field, message, value=None, threshold=None):
        findings.append(
            {
                "hash": record.get("hash", "")[:12],
                "verb": record.get("body", {}).get("verb"),
                "field": field,
                "value": value,
                "threshold": threshold,
                "message": message,
            }
        )

    for record in records:
        body = record.get("body", {})
        verb = body.get("verb")
        summary = body.get("summary") or {}
        if not isinstance(summary, dict):
            continue
        if verb in ("chaos", "verify") and summary.get("ok") is False:
            flag(
                record,
                "summary.ok",
                "%s run reported failures: %s"
                % (verb, _scalar(summary.get("failures"))),
                value=False,
                threshold=True,
            )
        if verb == "fuzz":
            _check_fuzz(record, summary, flag)
        if verb == "bench":
            _check_bench(
                record, summary, floors, tolerance, overhead_max, flag, gates
            )
    return findings


def _check_fuzz(record, summary, flag):
    """Fuzz gates: corpus statuses must match reality; no new findings.

    Mirrors the ``repro fuzz`` exit-status policy (cli.py): a ``fixed``
    entry failing again is a regression, an ``open`` entry passing means
    the corpus status is stale, and a new minimal repro means the sweep
    found a bug that is not yet triaged.
    """
    replay = summary.get("replay") or {}
    regressions = replay.get("regressions") or 0
    if regressions:
        flag(
            record,
            "replay.regressions",
            "fuzz corpus replay: %d fixed entr(ies) failing again" % regressions,
            value=regressions,
            threshold=0,
        )
    now_fixed = replay.get("now_fixed") or 0
    if now_fixed:
        flag(
            record,
            "replay.now_fixed",
            "fuzz corpus replay: %d open entr(ies) now passing "
            "(flip their status to fixed)" % now_fixed,
            value=now_fixed,
            threshold=0,
        )
    new_findings = summary.get("new_findings") or 0
    if new_findings:
        flag(
            record,
            "new_findings",
            "fuzz sweep shrank %d new minimal failing config(s)" % new_findings,
            value=new_findings,
            threshold=0,
        )


def _check_bench(record, summary, floors, tolerance, overhead_max, flag, gates=None):
    measurements = record.get("envelope", {}).get("measurements", {})
    harness_failures = summary.get("failures")
    if harness_failures:
        flag(
            record,
            "summary.failures",
            "bench harness failures: %s" % _scalar(harness_failures),
            value=harness_failures,
            threshold=[],
        )
    for backend, sections in sorted((summary.get("kernel") or {}).items()):
        int_yield = (sections or {}).get("int_yield") or {}
        if int_yield.get("procs", 0) < FULL_INT_YIELD_PROCS:
            continue  # smoke-scale sample: informational only
        value = measurements.get("kernel.%s.int_yield.events_per_sec" % backend)
        floor = (floors.get(backend) or {}).get("int_yield_events_per_sec")
        if value is None or floor is None:
            continue
        threshold = float(floor) * (1.0 - tolerance)
        if float(value) < threshold:
            flag(
                record,
                "kernel.%s.int_yield.events_per_sec" % backend,
                "bench %s int_yield %.0f ev/s below floor %.0f "
                "(ci_floor %.0f - %d%% tolerance)"
                % (backend, value, threshold, floor, tolerance * 100),
                value=value,
                threshold=threshold,
            )
    counters = summary.get("counters")
    if isinstance(counters, dict):
        if counters.get("bit_identical") is False:
            flag(
                record,
                "counters.bit_identical",
                "counter plane changed simulated cycles on the %s backend"
                % counters.get("kernel"),
                value=False,
                threshold=True,
            )
        overhead = measurements.get("counters.overhead_fraction")
        if (
            overhead_max is not None
            and overhead is not None
            and not summary.get("smoke", False)
            and float(overhead) > float(overhead_max)
        ):
            flag(
                record,
                "counters.overhead_fraction",
                "counter overhead %.3f above budget %.3f"
                % (overhead, float(overhead_max)),
                value=overhead,
                threshold=overhead_max,
            )
    dse = summary.get("dse_sweep")
    if isinstance(dse, dict):
        gates = gates or {}
        if dse.get("frontier_identical") is False:
            flag(
                record,
                "dse_sweep.frontier_identical",
                "dse warm frontier differs from cold frontier",
                value=False,
                threshold=True,
            )
        hit_floor = gates.get("dse_warm_hit_ratio_min")
        cache_stats = measurements.get("dse_sweep.cache_stats") or {}
        hit_ratio = cache_stats.get("warm_hit_ratio")
        if hit_floor is not None and hit_ratio is not None:
            if float(hit_ratio) < float(hit_floor):
                flag(
                    record,
                    "dse_sweep.cache_stats.warm_hit_ratio",
                    "dse warm hit ratio %.2f below the %.2f floor"
                    % (hit_ratio, float(hit_floor)),
                    value=hit_ratio,
                    threshold=hit_floor,
                )
        speedup_floor = gates.get("dse_warm_vs_cold")
        speedup = measurements.get("dse_sweep.speedup")
        # Smoke-scale sweeps are too small to gate the speedup on; hit
        # ratio and frontier identity gate regardless (determinism facts).
        if (
            speedup_floor is not None
            and speedup is not None
            and not dse.get("smoke", False)
            and float(speedup) < float(speedup_floor)
        ):
            flag(
                record,
                "dse_sweep.speedup",
                "dse warm sweep only %.1fx cold, below the %.1fx floor"
                % (speedup, float(speedup_floor)),
                value=speedup,
                threshold=speedup_floor,
            )


def find_record(ledger: Ledger, hash_prefix: str) -> Dict[str, Any]:
    """``Ledger.find`` that raises ``LookupError`` instead of returning None."""
    record = ledger.find(hash_prefix)
    if record is None:
        raise LookupError("no ledger record matches hash prefix %r" % hash_prefix)
    return record
