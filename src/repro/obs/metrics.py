"""Metrics registry: counters, gauges, cycle histograms, time series.

The registry is the quantitative half of the observability layer: where
the tracer answers "what happened when", the registry answers "how much
and how it was distributed".  It backs the per-segment detail of
:class:`repro.sim.stats.BusStats` (percentile arbitration wait, occupancy
over time) without changing the stats objects' ``as_dict()`` surface.

All metric types are mergeable (``merge``) so per-worker measurements from
the parallel experiment runner aggregate deterministically: integer
counts sum exactly, histograms require identical bucket layouts, and
``as_dict()`` output is name-sorted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_CYCLE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
]

#: Fixed upper bounds (in cycles) for cycle-latency histograms; an implicit
#: +inf bucket catches the overflow.  Powers of two cover the 1-cycle beat
#: up to the multi-thousand-cycle arbitration convoys of GGBA (Table II,
#: observation B).
DEFAULT_CYCLE_BUCKETS: Tuple[int, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time value; tracks the maximum it has ever held."""

    __slots__ = ("name", "value", "max_value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "max": self.max_value}

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)
        self.max_value = max(self.max_value, other.max_value)


class Histogram:
    """Fixed-bucket histogram of non-negative integer samples (cycles).

    ``buckets`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound.  Observation is O(#buckets)
    worst case (a short linear scan beats bisect at these sizes) and
    allocation-free.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min_value", "max_value")

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[int] = DEFAULT_CYCLE_BUCKETS):
        if list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.buckets: Tuple[int, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile sample.

        The overflow bucket reports the maximum observed value, so the
        estimate never invents cycles beyond what was seen.
        """
        if not self.count:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % p)
        target = p / 100.0 * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative += self.counts[index]
            if cumulative >= target and cumulative > 0:
                return float(min(bound, self.max_value))
        return float(self.max_value)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                "cannot merge histograms with different buckets (%s vs %s)"
                % (self.name, other.name)
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min_value is not None:
            self.min_value = (
                other.min_value
                if self.min_value is None
                else min(self.min_value, other.min_value)
            )
        if other.max_value is not None:
            self.max_value = (
                other.max_value
                if self.max_value is None
                else max(self.max_value, other.max_value)
            )


class TimeSeries:
    """Cycles-of-activity bucketed into fixed windows of simulated time.

    ``add(start, end)`` spreads the interval's cycles across the windows
    it overlaps; :meth:`series` yields ``(window_start_cycle, busy_cycles,
    fraction)`` rows -- the occupancy-over-time view behind the paper's
    "where does the bus spend its cycles" observations.
    """

    __slots__ = ("name", "window", "bins")

    kind = "series"

    def __init__(self, name: str, window: int = 1024):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self.bins: Dict[int, int] = {}

    def add(self, start: int, end: int) -> None:
        if end <= start:
            return
        window = self.window
        bins = self.bins
        index = start // window
        last = (end - 1) // window
        while index <= last:
            lo = index * window
            hi = lo + window
            overlap = min(end, hi) - max(start, lo)
            bins[index] = bins.get(index, 0) + overlap
            index += 1

    def series(self) -> List[Tuple[int, int, float]]:
        window = self.window
        return [
            (index * window, busy, busy / window)
            for index, busy in sorted(self.bins.items())
        ]

    def peak(self) -> float:
        """Highest per-window occupancy fraction seen."""
        if not self.bins:
            return 0.0
        return max(self.bins.values()) / self.window

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "window": self.window,
            "series": [
                {"start": start, "busy": busy, "fraction": fraction}
                for start, busy, fraction in self.series()
            ],
            "peak_fraction": self.peak(),
        }

    def merge(self, other: "TimeSeries") -> None:
        if self.window != other.window:
            raise ValueError(
                "cannot merge series with different windows (%s vs %s)"
                % (self.name, other.name)
            )
        for index, busy in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + busy


class MetricsRegistry:
    """Named metrics, created on first use, exported name-sorted."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name))
        if not isinstance(metric, Counter):
            raise TypeError("%r is a %s, not a counter" % (name, metric.kind))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name))
        if not isinstance(metric, Gauge):
            raise TypeError("%r is a %s, not a gauge" % (name, metric.kind))
        return metric

    def histogram(
        self, name: str, buckets: Sequence[int] = DEFAULT_CYCLE_BUCKETS
    ) -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError("%r is a %s, not a histogram" % (name, metric.kind))
        return metric

    def time_series(self, name: str, window: int = 1024) -> TimeSeries:
        metric = self._get_or_create(name, lambda: TimeSeries(name, window))
        if not isinstance(metric, TimeSeries):
            raise TypeError("%r is a %s, not a time series" % (name, metric.kind))
        return metric

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in; same-named metrics must be same-typed."""
        for name in other.names():
            theirs = other.get(name)
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = theirs
            else:
                if type(mine) is not type(theirs):
                    raise TypeError(
                        "metric %r type mismatch: %s vs %s"
                        % (name, mine.kind, theirs.kind)
                    )
                mine.merge(theirs)
