"""The Wire Library: section registry with lookup and expansion.

"The Wire Library contains all possible combinations of legal connections
between hardware blocks" -- here, a dict of named sections, each a list of
:class:`WireSpec`.  Sections are loaded from ASCII text (user libraries in
the paper's format) or produced on demand by the built-in generators for a
requested shape.

:func:`expand_chain` implements Example 8's serial-connection rule: a
group-vs-group spec yields one suffixed wire per consecutive member pair,
ring-closed (Figure 17a's ``w_data_4`` from the last BAN back to the
first).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from . import builtin
from .model import Endpoint, WireGroup, WireSpec
from .parser import parse_wire_text

__all__ = ["WireLibrary", "expand_chain", "default_wire_library"]


def expand_chain(spec: WireSpec) -> List[Tuple[str, Endpoint, Endpoint]]:
    """Expand a group-vs-group chain spec into suffixed point wires.

    Returns ``(wire_name_k, upstream_endpoint, downstream_endpoint)``
    triples: wire *k* joins member *k-1*'s ``end2`` port (the ``_up`` side)
    to member *k mod n*'s ``end1`` port (the ``_dn`` side).
    """
    if not spec.is_chain:
        raise ValueError("spec %s is not a group-vs-group chain" % spec.name)
    members = spec.end1.group_members
    count = len(members)
    wires = []
    for index in range(count):
        upstream_member = members[index]
        downstream_member = members[(index + 1) % count]
        name = "%s_%d" % (spec.name, index + 1)
        upstream = Endpoint(
            spec.end2.member_name(upstream_member),
            spec.end2.port,
            spec.end2.wire_msb,
            spec.end2.wire_lsb,
        )
        downstream = Endpoint(
            spec.end1.member_name(downstream_member),
            spec.end1.port,
            spec.end1.wire_msb,
            spec.end1.wire_lsb,
        )
        wires.append((name, upstream, downstream))
    return wires


class WireLibrary:
    """Named wire sections, with built-in generation for standard shapes."""

    def __init__(self, text: Optional[str] = None):
        self.sections: Dict[str, WireGroup] = {}
        if text:
            self.load_text(text)

    def load_text(self, text: str) -> List[str]:
        groups = parse_wire_text(text)
        for name, group in groups.items():
            if name in self.sections:
                raise ValueError("wire library already has section %r" % name)
            self.sections[name] = group
        return sorted(groups)

    def __contains__(self, name: str) -> bool:
        return name in self.sections

    def section(self, name: str) -> WireGroup:
        try:
            return self.sections[name]
        except KeyError:
            raise KeyError(
                "Wire Library has no section %r (have: %s)"
                % (name, ", ".join(sorted(self.sections)))
            )

    # -- built-in generation ------------------------------------------------
    def ban_section(
        self,
        kind: str,
        mem_aw: int = 20,
        with_ip_port: bool = False,
        data_width: int = 64,
        mem_data_width: int = 64,
    ) -> WireGroup:
        """Fetch (or generate and cache) the wire section for a BAN kind."""
        key = "ban_%s_aw%d_d%d_md%d%s" % (
            kind,
            mem_aw,
            data_width,
            mem_data_width,
            "_ip" if with_ip_port else "",
        )
        if key not in self.sections:
            text = builtin.ban_section(
                kind,
                mem_aw,
                with_ip_port,
                data_width=data_width,
                mem_data_width=mem_data_width,
            )
            group = list(parse_wire_text(text).values())[0]
            group.name = key
            self.sections[key] = group
        return self.sections[key]

    def global_ban_section(
        self,
        n_masters: int,
        mem_aw: int = 20,
        data_width: int = 64,
        mem_data_width: int = 64,
    ) -> WireGroup:
        key = "ban_global_n%d_aw%d_d%d_md%d" % (
            n_masters,
            mem_aw,
            data_width,
            mem_data_width,
        )
        if key not in self.sections:
            text = builtin.global_ban_section(
                n_masters, mem_aw, data_width=data_width, mem_data_width=mem_data_width
            )
            group = list(parse_wire_text(text).values())[0]
            group.name = key
            self.sections[key] = group
        return self.sections[key]

    def subsystem_section(
        self,
        kind: str,
        ban_names: List[str],
        global_ban: str = "G",
        data_width: int = 64,
    ) -> WireGroup:
        # The global BAN's instance label is part of the section's content
        # (its wires name BAN_<label>), so it must be part of the key:
        # sharing one library across many generated systems would otherwise
        # serve a section wired to another system's global BAN.
        key = "subsys_%s_%s_g%s_d%d" % (kind, "".join(ban_names), global_ban, data_width)
        if key not in self.sections:
            text = builtin.subsystem_section(
                kind, ban_names, global_ban, data_width=data_width
            )
            group = list(parse_wire_text(text).values())[0]
            group.name = key
            self.sections[key] = group
        return self.sections[key]


def default_wire_library() -> WireLibrary:
    """An empty library; sections generate on demand for each shape."""
    return WireLibrary()
