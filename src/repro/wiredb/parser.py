"""Parser for the Wire Library's ASCII format (Figure 15).

Sections look like::

    %wire ban_bfba
    w_addr 32 CBI addr_local 31 0 SB addr_local 31 0
    w_csb   8 CBI csb          7 0 SB csb_local   7 0
    %endwire

Ten whitespace-separated fields per line: wire name, wire width, then two
endpoints of (module, port, wire-MSB, wire-LSB).  ``#`` starts a comment.
Group module names (``BAN[A,B,C,D]``) and the ``@`` member-index bit marker
are handled by the model layer.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .model import MEMBER_INDEX, Endpoint, WireGroup, WireSpec

__all__ = ["WireParseError", "parse_wire_text", "render_wire_text"]


class WireParseError(ValueError):
    pass


def _parse_bit(token: str, where: str) -> Union[int, str]:
    if token == MEMBER_INDEX:
        return MEMBER_INDEX
    try:
        value = int(token)
    except ValueError:
        raise WireParseError("%s: bad bit index %r" % (where, token))
    if value < 0:
        raise WireParseError("%s: negative bit index %d" % (where, value))
    return value


def parse_wire_text(text: str) -> Dict[str, WireGroup]:
    """Parse every %wire section in ``text``."""
    groups: Dict[str, WireGroup] = {}
    current: WireGroup = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        where = "line %d" % line_number
        if line.startswith("%wire"):
            if current is not None:
                raise WireParseError("%s: nested %%wire section" % where)
            parts = line.split()
            if len(parts) != 2:
                raise WireParseError("%s: %%wire needs a section name" % where)
            if parts[1] in groups:
                raise WireParseError("%s: duplicate section %r" % (where, parts[1]))
            current = WireGroup(parts[1], [])
            continue
        if line.startswith("%endwire"):
            if current is None:
                raise WireParseError("%s: %%endwire outside a section" % where)
            groups[current.name] = current
            current = None
            continue
        if current is None:
            raise WireParseError("%s: wire line outside a %%wire section" % where)
        fields = line.split()
        if len(fields) != 10:
            raise WireParseError(
                "%s: expected 10 fields (w_name w_width m1 p1 msb lsb m2 p2 msb lsb), got %d"
                % (where, len(fields))
            )
        try:
            width = int(fields[1])
        except ValueError:
            raise WireParseError("%s: bad wire width %r" % (where, fields[1]))
        if width <= 0:
            raise WireParseError("%s: wire width must be positive" % where)
        spec = WireSpec(
            name=fields[0],
            width=width,
            end1=Endpoint(
                fields[2], fields[3], _parse_bit(fields[4], where), _parse_bit(fields[5], where)
            ),
            end2=Endpoint(
                fields[6], fields[7], _parse_bit(fields[8], where), _parse_bit(fields[9], where)
            ),
        )
        spec.validate()
        current.specs.append(spec)
    if current is not None:
        raise WireParseError("unterminated %%wire section %r" % current.name)
    return groups


def render_wire_text(groups: Dict[str, WireGroup]) -> str:
    """Inverse of :func:`parse_wire_text` (round-trips in tests)."""
    lines: List[str] = []
    for name in sorted(groups):
        lines.append("%%wire %s" % name)
        for spec in groups[name].specs:
            lines.append(
                "%s %d %s %s %s %s %s %s %s %s"
                % (
                    spec.name,
                    spec.width,
                    spec.end1.module,
                    spec.end1.port,
                    spec.end1.wire_msb,
                    spec.end1.wire_lsb,
                    spec.end2.module,
                    spec.end2.port,
                    spec.end2.wire_msb,
                    spec.end2.wire_lsb,
                )
            )
        lines.append("%endwire")
        lines.append("")
    return "\n".join(lines)
