"""Built-in Wire Library content.

Produces the ``%wire`` sections for every supported BAN kind and subsystem
kind.  Wire text is *generated* for the requested shape (PE count, memory
address width, data width, ...) because vector widths -- arbiter request
fans, chain lengths, data-lane widths -- depend on the user options; the
fixed-shape examples of the paper (Examples 7 and 8) fall out as the 4-PE
64-bit instantiation.

Data-path lane layout: a bus of ``data_width`` >= 64 is carried as a
``dh``/``dl`` lane pair of ``data_width/2`` wires each (the paper's 32+32
split at the default 64); ``data_width`` 32 is a single ``dl`` lane and no
``dh`` nets are emitted at all, matching the ``%if HAS_DH`` conditionals of
the module templates.

Conventions:

* logical instance names inside a BAN: ``CPU``, ``CBI``, ``SB`` (``SBC``/
  ``SBM`` for GBAVI's two sides), ``MBI0``/``MEM0``, ``HS``, ``FIFO``,
  ``GBI`` (and ``GGBI`` for Hybrid's global-bus interface), ``BB``, and in
  the global-resource BAN ``ARB``/``ABI0``/``SBG``;
* the pseudo-module ``EXT`` marks a net that must surface as a port of the
  enclosing BAN or subsystem;
* chip-select bit plan on a local bus: bit0 memory, bit1 FIFO data, bit2
  FIFO threshold, bit3 DONE_OP, bit4 DONE_RV, bit5 bus interface.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "ban_section",
    "subsystem_section",
    "lane_width",
    "CSB_MEM",
    "CSB_FIFO",
    "CSB_THRESHOLD",
    "CSB_DONE_OP",
    "CSB_DONE_RV",
    "CSB_GBI",
]

CSB_MEM = 0
CSB_FIFO = 1
CSB_THRESHOLD = 2
CSB_DONE_OP = 3
CSB_DONE_RV = 4
CSB_GBI = 5


def lane_width(data_width: int) -> int:
    """One data lane's width: half the bus for split-pair layouts (>= 64),
    the full bus for the single-lane 32-bit layout."""
    return data_width // 2 if data_width > 32 else data_width


def _has_dh(data_width: int) -> bool:
    return data_width > 32


def _cpu_to_cbi() -> List[str]:
    return [
        "w_cpu_a 32 CPU cpu_a 31 0 CBI cpu_a 31 0",
        "w_cpu_d 64 CPU cpu_d 63 0 CBI cpu_d 63 0",
        "w_cpu_ts 1 CPU cpu_ts_b 0 0 CBI cpu_ts_b 0 0",
        "w_cpu_wr 1 CPU cpu_wr_b 0 0 CBI cpu_wr_b 0 0",
        "w_cpu_ta 1 CPU cpu_ta_b 0 0 CBI cpu_ta_b 0 0",
        "w_cpu_int 1 CPU cpu_int_b 0 0 CBI cpu_int_b 0 0",
    ]


def _local_bus(
    modules: List[str], sb: str = "SB", prefix: str = "w", data_width: int = 64
) -> List[str]:
    """Multi-drop local-bus nets: every module joins the SB's wires."""
    lane = lane_width(data_width)
    msb = lane - 1
    lines = []
    for module in modules:
        if _has_dh(data_width):
            lines.append(
                "%s_dh %d %s dh %d 0 %s dh %d 0" % (prefix, lane, module, msb, sb, msb)
            )
        lines.append(
            "%s_dl %d %s dl %d 0 %s dl %d 0" % (prefix, lane, module, msb, sb, msb)
        )
    for module in modules:
        if module in ("HS",):
            continue
        lines.append("%s_web 1 %s web_local 0 0 %s web_local 0 0" % (prefix, module, sb))
        lines.append("%s_reb 1 %s reb_local 0 0 %s reb_local 0 0" % (prefix, module, sb))
    return lines


def _mbi_to_mem(mem_aw: int, mem_dw: int = 64) -> List[str]:
    msb = mem_aw - 1
    dq_msb = mem_dw - 1
    return [
        "w_sram_addr %d MBI0 sram_addr %d 0 MEM0 sram_addr %d 0" % (mem_aw, msb, msb),
        "w_sram_web 1 MBI0 sram_web 0 0 MEM0 sram_web 0 0",
        "w_sram_oeb 1 MBI0 sram_oeb 0 0 MEM0 sram_oeb 0 0",
        "w_sram_csb 1 MBI0 sram_csb 0 0 MEM0 sram_csb 0 0",
        "w_sram_dq %d MBI0 sram_dq %d 0 MEM0 sram_dq %d 0" % (mem_dw, dq_msb, dq_msb),
    ]


def _section(name: str, lines: List[str]) -> str:
    return "%%wire %s\n%s\n%%endwire\n" % (name, "\n".join(lines))


# ----------------------------------------------------------------------
# BAN sections
# ----------------------------------------------------------------------


CSB_IPIF = 7


def _ipif_lines(sb: str = "SB", data_width: int = 64) -> List[str]:
    """Wires attaching an IPIF (hardware-IP port, Example 8) to a local bus."""
    lane = lane_width(data_width)
    msb = lane - 1
    lines = ["w_addr 32 IPIF addr_local 31 0 %s addr_local 31 0" % sb]
    if _has_dh(data_width):
        lines.append("w_dh %d IPIF dh %d 0 %s dh %d 0" % (lane, msb, sb, msb))
    lines += [
        "w_dl %d IPIF dl %d 0 %s dl %d 0" % (lane, msb, sb, msb),
        "w_web 1 IPIF web_local 0 0 %s web_local 0 0" % sb,
        "w_reb 1 IPIF reb_local 0 0 %s reb_local 0 0" % sb,
        "w_csb 8 IPIF csb_local %d %d %s csb_local %d %d"
        % (CSB_IPIF, CSB_IPIF, sb, CSB_IPIF, CSB_IPIF),
    ]
    return lines


def ban_section(
    kind: str,
    mem_aw: int = 20,
    with_ip_port: bool = False,
    data_width: int = 64,
    mem_data_width: int = 64,
) -> str:
    """Wire section text for one BAN kind.

    ``kind`` is one of ``bfba``, ``gbavi``, ``gbaviii``, ``hybrid``,
    ``splitba`` (also used for GGBA's memory-less BANs) or ``global``.
    ``with_ip_port`` adds the IPIF wires for a BAN hosting a hardware-IP
    attachment (Example 8's "BAN B has another bus to BAN FFT").
    """
    if kind == "gbavi" and with_ip_port:
        raise ValueError("IP attachments are not supported on GBAVI BANs")
    if kind == "bfba":
        text = _ban_bfba(mem_aw, data_width, mem_data_width)
    elif kind == "gbavi":
        text = _ban_gbavi(mem_aw, data_width, mem_data_width)
    elif kind == "gbaviii":
        text = _ban_gbaviii(mem_aw, data_width=data_width, mem_data_width=mem_data_width)
    elif kind == "hybrid":
        text = _ban_hybrid(mem_aw, data_width, mem_data_width)
    elif kind == "splitba":
        text = _ban_splitba(data_width)
    elif kind == "global":
        raise ValueError("global BAN section needs global_ban_section(n_masters, ...)")
    else:
        raise ValueError("unknown BAN kind %r" % kind)
    if with_ip_port:
        lines = text.strip().splitlines()
        lines = lines[:-1] + _ipif_lines("SB", data_width) + [lines[-1]]
        text = "\n".join(lines) + "\n"
    return text


def _ban_bfba(mem_aw: int, data_width: int = 64, mem_dw: int = 64) -> str:
    mem_msb = mem_aw - 1
    lines = _cpu_to_cbi()
    lines.append("w_addr 32 CBI addr_local 31 0 SB addr_local 31 0")
    lines.append("w_addr 32 MBI0 addr_local %d 0 SB addr_local %d 0" % (mem_msb, mem_msb))
    lines.append("w_addr 32 GBI addr_local 31 0 SB addr_local 31 0")
    lines += _local_bus(["CBI", "MBI0", "HS", "FIFO", "GBI"], data_width=data_width)
    lines += [
        "w_web 1 HS web_local 0 0 SB web_local 0 0",
        "w_reb 1 HS reb_local 0 0 SB reb_local 0 0",
        "w_csb 8 CBI csb 7 0 SB csb_local 7 0",
    ]
    lines += [
        "w_csb 8 MBI0 csb_local %d %d SB csb_local %d %d" % (CSB_MEM, CSB_MEM, CSB_MEM, CSB_MEM),
        "w_csb 8 FIFO fifo_cs_local %d %d SB csb_local %d %d"
        % (CSB_FIFO, CSB_FIFO, CSB_FIFO, CSB_FIFO),
        "w_csb 8 FIFO thr_cs_local %d %d SB csb_local %d %d"
        % (CSB_THRESHOLD, CSB_THRESHOLD, CSB_THRESHOLD, CSB_THRESHOLD),
        "w_csb 8 HS op_cs_local %d %d SB csb_local %d %d"
        % (CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP),
        "w_csb 8 HS rv_cs_local %d %d SB csb_local %d %d"
        % (CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV),
        "w_csb 8 GBI csb_local %d %d SB csb_local %d %d"
        % (CSB_GBI, CSB_GBI, CSB_GBI, CSB_GBI),
        "w_irq 1 FIFO irq_b 0 0 CBI irq_b 0 0",
    ]
    lines += _mbi_to_mem(mem_aw, mem_dw)
    return _section("ban_bfba", lines)


def _ban_gbavi(mem_aw: int, data_width: int = 64, mem_dw: int = 64) -> str:
    mem_msb = mem_aw - 1
    lane = lane_width(data_width)
    lmsb = lane - 1
    lines = _cpu_to_cbi()
    # CPU-side segment: CBI, bridge side a, handshake side a.
    lines += [
        "w_caddr 32 CBI addr_local 31 0 SBC addr_local 31 0",
        "w_caddr 32 BB a_addr 31 0 SBC addr_local 31 0",
    ]
    if _has_dh(data_width):
        lines += [
            "w_cdh %d CBI dh %d 0 SBC dh %d 0" % (lane, lmsb, lmsb),
            "w_cdh %d BB a_dh %d 0 SBC dh %d 0" % (lane, lmsb, lmsb),
            "w_cdh %d HS dh_a %d 0 SBC dh %d 0" % (lane, lmsb, lmsb),
        ]
    lines += [
        "w_cdl %d CBI dl %d 0 SBC dl %d 0" % (lane, lmsb, lmsb),
        "w_cdl %d BB a_dl %d 0 SBC dl %d 0" % (lane, lmsb, lmsb),
        "w_cdl %d HS dl_a %d 0 SBC dl %d 0" % (lane, lmsb, lmsb),
        "w_cweb 1 CBI web_local 0 0 SBC web_local 0 0",
        "w_cweb 1 BB a_web 0 0 SBC web_local 0 0",
        "w_cweb 1 HS web_a 0 0 SBC web_local 0 0",
        "w_creb 1 CBI reb_local 0 0 SBC reb_local 0 0",
        "w_creb 1 BB a_reb 0 0 SBC reb_local 0 0",
        "w_creb 1 HS reb_a 0 0 SBC reb_local 0 0",
        "w_ccsb 8 CBI csb 7 0 SBC csb_local 7 0",
        "w_ccsb 8 HS op_cs_a %d %d SBC csb_local %d %d"
        % (CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP),
        "w_ccsb 8 HS rv_cs_a %d %d SBC csb_local %d %d"
        % (CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV),
    ]
    # SRAM-side segment: bridge side b, MBI, handshake side b, GBI local.
    lines += [
        "w_maddr 32 BB b_addr 31 0 SBM addr_local 31 0",
        "w_maddr 32 MBI0 addr_local %d 0 SBM addr_local %d 0" % (mem_msb, mem_msb),
        "w_maddr 32 GBI addr_local 31 0 SBM addr_local 31 0",
    ]
    if _has_dh(data_width):
        lines += [
            "w_mdh %d BB b_dh %d 0 SBM dh %d 0" % (lane, lmsb, lmsb),
            "w_mdh %d MBI0 dh %d 0 SBM dh %d 0" % (lane, lmsb, lmsb),
            "w_mdh %d HS dh_b %d 0 SBM dh %d 0" % (lane, lmsb, lmsb),
            "w_mdh %d GBI dh %d 0 SBM dh %d 0" % (lane, lmsb, lmsb),
        ]
    lines += [
        "w_mdl %d BB b_dl %d 0 SBM dl %d 0" % (lane, lmsb, lmsb),
        "w_mdl %d MBI0 dl %d 0 SBM dl %d 0" % (lane, lmsb, lmsb),
        "w_mdl %d HS dl_b %d 0 SBM dl %d 0" % (lane, lmsb, lmsb),
        "w_mdl %d GBI dl %d 0 SBM dl %d 0" % (lane, lmsb, lmsb),
        "w_mweb 1 BB b_web 0 0 SBM web_local 0 0",
        "w_mweb 1 MBI0 web_local 0 0 SBM web_local 0 0",
        "w_mweb 1 HS web_b 0 0 SBM web_local 0 0",
        "w_mweb 1 GBI web_local 0 0 SBM web_local 0 0",
        "w_mreb 1 BB b_reb 0 0 SBM reb_local 0 0",
        "w_mreb 1 MBI0 reb_local 0 0 SBM reb_local 0 0",
        "w_mreb 1 HS reb_b 0 0 SBM reb_local 0 0",
        "w_mreb 1 GBI reb_local 0 0 SBM reb_local 0 0",
        # First line anchors the full 8-bit select bundle on the segment.
        "w_mcsb 8 MBI0 csb_local %d %d SBM csb_local 7 0" % (CSB_MEM, CSB_MEM),
        "w_mcsb 8 HS op_cs_b %d %d SBM csb_local %d %d"
        % (CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP),
        "w_mcsb 8 HS rv_cs_b %d %d SBM csb_local %d %d"
        % (CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV),
        "w_mcsb 8 GBI csb_local %d %d SBM csb_local %d %d"
        % (CSB_GBI, CSB_GBI, CSB_GBI, CSB_GBI),
    ]
    lines += _mbi_to_mem(mem_aw, mem_dw)
    return _section("ban_gbavi", lines)


def _ban_gbaviii(
    mem_aw: int,
    name: str = "ban_gbaviii",
    data_width: int = 64,
    mem_data_width: int = 64,
) -> str:
    mem_msb = mem_aw - 1
    lines = _cpu_to_cbi()
    lines += [
        "w_addr 32 CBI addr_local 31 0 SB addr_local 31 0",
        "w_addr 32 MBI0 addr_local %d 0 SB addr_local %d 0" % (mem_msb, mem_msb),
        "w_addr 32 GBI addr_local 31 0 SB addr_local 31 0",
    ]
    lines += _local_bus(["CBI", "MBI0", "GBI"], data_width=data_width)
    lines += [
        "w_csb 8 CBI csb 7 0 SB csb_local 7 0",
        "w_csb 8 MBI0 csb_local %d %d SB csb_local %d %d"
        % (CSB_MEM, CSB_MEM, CSB_MEM, CSB_MEM),
        "w_csb 8 GBI csb_local %d %d SB csb_local %d %d"
        % (CSB_GBI, CSB_GBI, CSB_GBI, CSB_GBI),
    ]
    lines += _mbi_to_mem(mem_aw, mem_data_width)
    return _section(name, lines)


def _ban_hybrid(mem_aw: int, data_width: int = 64, mem_dw: int = 64) -> str:
    mem_msb = mem_aw - 1
    lines = _cpu_to_cbi()
    lines += [
        "w_addr 32 CBI addr_local 31 0 SB addr_local 31 0",
        "w_addr 32 MBI0 addr_local %d 0 SB addr_local %d 0" % (mem_msb, mem_msb),
        "w_addr 32 GGBI addr_local 31 0 SB addr_local 31 0",
        "w_addr 32 GBI addr_local 31 0 SB addr_local 31 0",
    ]
    lines += _local_bus(
        ["CBI", "MBI0", "HS", "FIFO", "GBI", "GGBI"], data_width=data_width
    )
    lines += [
        "w_web 1 HS web_local 0 0 SB web_local 0 0",
        "w_reb 1 HS reb_local 0 0 SB reb_local 0 0",
        "w_csb 8 CBI csb 7 0 SB csb_local 7 0",
        "w_csb 8 MBI0 csb_local %d %d SB csb_local %d %d"
        % (CSB_MEM, CSB_MEM, CSB_MEM, CSB_MEM),
        "w_csb 8 FIFO fifo_cs_local %d %d SB csb_local %d %d"
        % (CSB_FIFO, CSB_FIFO, CSB_FIFO, CSB_FIFO),
        "w_csb 8 FIFO thr_cs_local %d %d SB csb_local %d %d"
        % (CSB_THRESHOLD, CSB_THRESHOLD, CSB_THRESHOLD, CSB_THRESHOLD),
        "w_csb 8 HS op_cs_local %d %d SB csb_local %d %d"
        % (CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP, CSB_DONE_OP),
        "w_csb 8 HS rv_cs_local %d %d SB csb_local %d %d"
        % (CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV, CSB_DONE_RV),
        "w_csb 8 GBI csb_local 6 6 SB csb_local 6 6",
        "w_csb 8 GGBI csb_local %d %d SB csb_local %d %d"
        % (CSB_GBI, CSB_GBI, CSB_GBI, CSB_GBI),
        "w_irq 1 FIFO irq_b 0 0 CBI irq_b 0 0",
    ]
    lines += _mbi_to_mem(mem_aw, mem_dw)
    return _section("ban_hybrid", lines)


def _ban_splitba(data_width: int = 64) -> str:
    lines = _cpu_to_cbi()
    lines += [
        "w_addr 32 CBI addr_local 31 0 SB addr_local 31 0",
        "w_addr 32 GBI addr_local 31 0 SB addr_local 31 0",
    ]
    lines += _local_bus(["CBI", "GBI"], data_width=data_width)
    lines += [
        "w_csb 8 CBI csb 7 0 SB csb_local 7 0",
        "w_csb 8 GBI csb_local %d %d SB csb_local %d %d"
        % (CSB_GBI, CSB_GBI, CSB_GBI, CSB_GBI),
    ]
    return _section("ban_splitba", lines)


def global_ban_section(
    n_masters: int, mem_aw: int = 20, data_width: int = 64, mem_data_width: int = 64
) -> str:
    """The global-resource BAN (BAN G): arbiter + ABI + shared memory."""
    msb = n_masters - 1
    mem_msb = mem_aw - 1
    lane = lane_width(data_width)
    lmsb = lane - 1
    lines = [
        "w_arb_req %d ARB req_b %d 0 ABI0 arb_req_b %d 0" % (n_masters, msb, msb),
        "w_arb_gnt %d ARB gnt_b %d 0 ABI0 arb_gnt_b %d 0" % (n_masters, msb, msb),
        "w_req %d ABI0 bus_req_b %d 0 SBG req_b %d 0" % (n_masters, msb, msb),
        "w_gnt %d ABI0 bus_gnt_b %d 0 SBG gnt_b %d 0" % (n_masters, msb, msb),
        "w_req %d EXT g_req_b %d 0 SBG req_b %d 0" % (n_masters, msb, msb),
        "w_gnt %d EXT g_gnt_b %d 0 SBG gnt_b %d 0" % (n_masters, msb, msb),
        "w_gaddr 32 MBI0 addr_local %d 0 SBG addr_local 31 0" % mem_msb,
        "w_gaddr 32 EXT g_addr 31 0 SBG addr_local 31 0",
    ]
    if _has_dh(data_width):
        lines += [
            "w_gdh %d MBI0 dh %d 0 SBG dh %d 0" % (lane, lmsb, lmsb),
            "w_gdh %d EXT g_dh %d 0 SBG dh %d 0" % (lane, lmsb, lmsb),
        ]
    lines += [
        "w_gdl %d MBI0 dl %d 0 SBG dl %d 0" % (lane, lmsb, lmsb),
        "w_gdl %d EXT g_dl %d 0 SBG dl %d 0" % (lane, lmsb, lmsb),
        "w_gweb 1 MBI0 web_local 0 0 SBG web_local 0 0",
        "w_gweb 1 EXT g_web 0 0 SBG web_local 0 0",
        "w_greb 1 MBI0 reb_local 0 0 SBG reb_local 0 0",
        "w_greb 1 EXT g_reb 0 0 SBG reb_local 0 0",
        "w_gcsb 1 MBI0 csb_local 0 0 EXT g_csb 0 0",
    ]
    lines += _mbi_to_mem(mem_aw, mem_data_width)
    return _section("ban_global", lines)


# ----------------------------------------------------------------------
# Subsystem sections
# ----------------------------------------------------------------------


def subsystem_section(
    kind: str, ban_names: List[str], global_ban: str = "G", data_width: int = 64
) -> str:
    if kind == "bfba":
        return _subsys_bfba(ban_names, data_width=data_width)
    if kind == "gbavi":
        return _subsys_gbavi(ban_names, data_width)
    if kind == "gbavii":
        return _subsys_gbavii(ban_names, global_ban, data_width)
    if kind in ("gbaviii", "splitba", "ggba", "ccba"):
        return _subsys_global(kind, ban_names, global_ban, data_width=data_width)
    if kind == "hybrid":
        chain = _subsys_bfba(ban_names, name=None, as_lines=True, data_width=data_width)
        shared = _subsys_global(
            "hybrid", ban_names, global_ban, as_lines=True, data_width=data_width
        )
        return _section("subsys_hybrid", shared + chain)
    raise ValueError("unknown subsystem kind %r" % kind)


def _group(ban_names: List[str]) -> str:
    return "BAN[%s]" % ",".join(ban_names)


def _subsys_bfba(
    ban_names: List[str],
    name: str = "subsys_bfba",
    as_lines: bool = False,
    data_width: int = 64,
):
    """Example 8's chain list, verbatim in shape."""
    group = _group(ban_names)
    data_msb = data_width - 1
    lines = [
        "w_done_op_cs 2 %s done_op_cs_dn 1 0 %s done_op_cs_up 1 0" % (group, group),
        "w_done_rv_cs 2 %s done_rv_cs_dn 1 0 %s done_rv_cs_up 1 0" % (group, group),
        "w_ban_web 1 %s web_dn 0 0 %s web_up 0 0" % (group, group),
        "w_ban_reb 1 %s reb_dn 0 0 %s reb_up 0 0" % (group, group),
        "w_fifo_cs 1 %s fifo_cs_dn 0 0 %s fifo_cs_up 0 0" % (group, group),
        "w_data %d %s data_dn %d 0 %s data_up %d 0"
        % (data_width, group, data_msb, group, data_msb),
    ]
    if as_lines:
        return lines
    return _section(name, lines)


def _gbavi_pair_lines(
    index: int, left_ban: str, right_ban: str, bridge: str, data_width: int = 64
) -> List[str]:
    """The wires attaching one BB between two GBAVI-style BAN segments."""
    lane = lane_width(data_width)
    lmsb = lane - 1
    lines = ["w_sa_%d 32 %s seg_addr 31 0 %s a_addr 31 0" % (index, left_ban, bridge)]
    if _has_dh(data_width):
        lines.append(
            "w_sah_%d %d %s seg_dh %d 0 %s a_dh %d 0"
            % (index, lane, left_ban, lmsb, bridge, lmsb)
        )
    lines += [
        "w_sal_%d %d %s seg_dl %d 0 %s a_dl %d 0"
        % (index, lane, left_ban, lmsb, bridge, lmsb),
        "w_saw_%d 1 %s seg_web 0 0 %s a_web 0 0" % (index, left_ban, bridge),
        "w_sar_%d 1 %s seg_reb 0 0 %s a_reb 0 0" % (index, left_ban, bridge),
        "w_sb_%d 32 %s seg_addr 31 0 %s b_addr 31 0" % (index, right_ban, bridge),
    ]
    if _has_dh(data_width):
        lines.append(
            "w_sbh_%d %d %s seg_dh %d 0 %s b_dh %d 0"
            % (index, lane, right_ban, lmsb, bridge, lmsb)
        )
    lines += [
        "w_sbl_%d %d %s seg_dl %d 0 %s b_dl %d 0"
        % (index, lane, right_ban, lmsb, bridge, lmsb),
        "w_sbw_%d 1 %s seg_web 0 0 %s b_web 0 0" % (index, right_ban, bridge),
        "w_sbr_%d 1 %s seg_reb 0 0 %s b_reb 0 0" % (index, right_ban, bridge),
        "w_bben_%d 1 %s bb_req 0 0 %s bb_enable 0 0" % (index, left_ban, bridge),
    ]
    return lines


def _subsys_gbavi(ban_names: List[str], data_width: int = 64) -> str:
    """Bridge-segmented chain: one BB between each adjacent BAN pair (ring)."""
    lines: List[str] = []
    count = len(ban_names)
    pairs = list(zip(range(count), list(range(1, count)) + ([0] if count > 2 else [])))
    for index, (left, right) in enumerate(pairs, start=1):
        lines += _gbavi_pair_lines(
            index,
            "BAN_%s" % ban_names[left],
            "BAN_%s" % ban_names[right],
            "BB_%d" % index,
            data_width,
        )
    return _section("subsys_gbavi", lines)


def _subsys_gbavii(ban_names: List[str], global_ban: str, data_width: int = 64) -> str:
    """GBAVII (extension): GBAVI's segment chain, ring-closed through the
    global-memory BAN -- BB_n joins the last PE segment to BAN G's bus, and
    BB_n+1 joins BAN G back to the first PE segment."""
    lane = lane_width(data_width)
    lmsb = lane - 1
    has_dh = _has_dh(data_width)
    lines: List[str] = []
    count = len(ban_names)
    for index in range(count - 1):
        left_ban = "BAN_%s" % ban_names[index]
        right_ban = "BAN_%s" % ban_names[index + 1]
        bridge = "BB_%d" % (index + 1)
        lines += _gbavi_pair_lines(index + 1, left_ban, right_ban, bridge, data_width)
    global_inst = "BAN_%s" % global_ban
    # Last PE segment -> BAN G.
    bridge_index = count
    bridge = "BB_%d" % bridge_index
    last_ban = "BAN_%s" % ban_names[-1]
    lines.append(
        "w_sa_%d 32 %s seg_addr 31 0 %s a_addr 31 0" % (bridge_index, last_ban, bridge)
    )
    if has_dh:
        lines.append(
            "w_sah_%d %d %s seg_dh %d 0 %s a_dh %d 0"
            % (bridge_index, lane, last_ban, lmsb, bridge, lmsb)
        )
    lines += [
        "w_sal_%d %d %s seg_dl %d 0 %s a_dl %d 0"
        % (bridge_index, lane, last_ban, lmsb, bridge, lmsb),
        "w_saw_%d 1 %s seg_web 0 0 %s a_web 0 0" % (bridge_index, last_ban, bridge),
        "w_sar_%d 1 %s seg_reb 0 0 %s a_reb 0 0" % (bridge_index, last_ban, bridge),
        "w_sb_%d 32 %s g_addr 31 0 %s b_addr 31 0" % (bridge_index, global_inst, bridge),
    ]
    if has_dh:
        lines.append(
            "w_sbh_%d %d %s g_dh %d 0 %s b_dh %d 0"
            % (bridge_index, lane, global_inst, lmsb, bridge, lmsb)
        )
    lines += [
        "w_sbl_%d %d %s g_dl %d 0 %s b_dl %d 0"
        % (bridge_index, lane, global_inst, lmsb, bridge, lmsb),
        "w_sbw_%d 1 %s g_web 0 0 %s b_web 0 0" % (bridge_index, global_inst, bridge),
        "w_sbr_%d 1 %s g_reb 0 0 %s b_reb 0 0" % (bridge_index, global_inst, bridge),
        "w_bben_%d 1 %s bb_req 0 0 %s bb_enable 0 0" % (bridge_index, last_ban, bridge),
    ]
    if count > 1:
        # BAN G -> first PE segment, closing the ring.
        bridge_index = count + 1
        bridge = "BB_%d" % bridge_index
        first_ban = "BAN_%s" % ban_names[0]
        lines.append(
            "w_sa_%d 32 %s g_addr 31 0 %s a_addr 31 0"
            % (bridge_index, global_inst, bridge)
        )
        if has_dh:
            lines.append(
                "w_sah_%d %d %s g_dh %d 0 %s a_dh %d 0"
                % (bridge_index, lane, global_inst, lmsb, bridge, lmsb)
            )
        lines += [
            "w_sal_%d %d %s g_dl %d 0 %s a_dl %d 0"
            % (bridge_index, lane, global_inst, lmsb, bridge, lmsb),
            "w_saw_%d 1 %s g_web 0 0 %s a_web 0 0" % (bridge_index, global_inst, bridge),
            "w_sar_%d 1 %s g_reb 0 0 %s a_reb 0 0" % (bridge_index, global_inst, bridge),
            "w_sb_%d 32 %s seg_addr 31 0 %s b_addr 31 0"
            % (bridge_index, first_ban, bridge),
        ]
        if has_dh:
            lines.append(
                "w_sbh_%d %d %s seg_dh %d 0 %s b_dh %d 0"
                % (bridge_index, lane, first_ban, lmsb, bridge, lmsb)
            )
        lines += [
            "w_sbl_%d %d %s seg_dl %d 0 %s b_dl %d 0"
            % (bridge_index, lane, first_ban, lmsb, bridge, lmsb),
            "w_sbw_%d 1 %s seg_web 0 0 %s b_web 0 0" % (bridge_index, first_ban, bridge),
            "w_sbr_%d 1 %s seg_reb 0 0 %s b_reb 0 0" % (bridge_index, first_ban, bridge),
            "w_bben_%d 1 %s bb_req 0 0 %s bb_enable 0 0"
            % (bridge_index, first_ban, bridge),
        ]
    return _section("subsys_gbavii", lines)


def _subsys_global(
    kind: str,
    ban_names: List[str],
    global_ban: str,
    as_lines: bool = False,
    data_width: int = 64,
):
    """Shared global bus: every PE BAN's GBI port onto BAN G's segment."""
    group = _group(ban_names)
    count = len(ban_names)
    global_inst = "BAN_%s" % global_ban
    lane = lane_width(data_width)
    lmsb = lane - 1
    lines = ["w_g_addr 32 %s g_addr 31 0 %s g_addr 31 0" % (group, global_inst)]
    if _has_dh(data_width):
        lines.append(
            "w_g_dh %d %s g_dh %d 0 %s g_dh %d 0" % (lane, group, lmsb, global_inst, lmsb)
        )
    lines += [
        "w_g_dl %d %s g_dl %d 0 %s g_dl %d 0" % (lane, group, lmsb, global_inst, lmsb),
        "w_g_web 1 %s g_web 0 0 %s g_web 0 0" % (group, global_inst),
        "w_g_reb 1 %s g_reb 0 0 %s g_reb 0 0" % (group, global_inst),
        "w_g_req %d %s g_req_b @ @ %s g_req_b %d 0" % (count, group, global_inst, count - 1),
        "w_g_gnt %d %s g_gnt_b @ @ %s g_gnt_b %d 0" % (count, group, global_inst, count - 1),
    ]
    if kind in ("splitba", "gbaviii", "ggba", "ccba", "hybrid"):
        # Expose the subsystem's shared bus for a possible inter-subsystem
        # bridge (Figure 7: SplitBA's two halves join through a BB; any
        # global-bus subsystem can be bridged the same way).
        lines.append("w_g_addr 32 EXT sub_addr 31 0 %s g_addr 31 0" % global_inst)
        if _has_dh(data_width):
            lines.append(
                "w_g_dh %d EXT sub_dh %d 0 %s g_dh %d 0" % (lane, lmsb, global_inst, lmsb)
            )
        lines += [
            "w_g_dl %d EXT sub_dl %d 0 %s g_dl %d 0" % (lane, lmsb, global_inst, lmsb),
            "w_g_web 1 EXT sub_web 0 0 %s g_web 0 0" % global_inst,
            "w_g_reb 1 EXT sub_reb 0 0 %s g_reb 0 0" % global_inst,
        ]
    if as_lines:
        return lines
    return _section("subsys_%s" % kind, lines)
