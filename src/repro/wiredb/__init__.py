"""Wire Library: legal-connection database (section V.A, Figure 15)."""

from .model import Endpoint, WireGroup, WireSpec, MEMBER_INDEX
from .parser import WireParseError, parse_wire_text, render_wire_text
from .library import WireLibrary, default_wire_library, expand_chain
from . import builtin

__all__ = [
    "Endpoint",
    "WireGroup",
    "WireSpec",
    "MEMBER_INDEX",
    "WireParseError",
    "parse_wire_text",
    "render_wire_text",
    "WireLibrary",
    "default_wire_library",
    "expand_chain",
    "builtin",
]
