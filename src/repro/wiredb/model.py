"""Wire Library data model (Figure 15).

A wire spec line carries: wire name, wire width, and two endpoints, each
``(module name, port name, wire MSB, wire LSB)`` -- the MSB/LSB select the
*wire* bits the endpoint's port attaches to, which is how a 20-bit memory
address port rides the low bits of a 32-bit address wire (Example 7).

Module names may be *groups*, ``BAN[A,B,C,D]``: one spec line then
describes the whole chain of identical links between consecutive members,
expanded with enumerated suffixes (``w_data_1`` ... ``w_data_4``,
Example 8 / Figure 17a, ring-closed).  An endpoint bit index written as
``@`` resolves to the member's position in the group -- used to fan
per-BAN request lines into an arbiter's request vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

__all__ = ["Endpoint", "WireSpec", "WireGroup"]

MEMBER_INDEX = "@"


@dataclass(frozen=True)
class Endpoint:
    """One end of a wire: a module (or group) pin with wire-bit selection."""

    module: str  # instance logical name, or group text "BAN[A,B,C]"
    port: str
    wire_msb: Union[int, str]  # int, or MEMBER_INDEX
    wire_lsb: Union[int, str]

    @property
    def is_group(self) -> bool:
        return "[" in self.module

    @property
    def group_base(self) -> str:
        return self.module.split("[", 1)[0]

    @property
    def group_members(self) -> List[str]:
        if not self.is_group:
            return [self.module]
        inner = self.module.split("[", 1)[1].rstrip("]")
        return [member.strip() for member in inner.split(",") if member.strip()]

    def member_name(self, member: str) -> str:
        """Concrete instance name for one group member."""
        if not self.is_group:
            return self.module
        base = self.group_base
        return "%s_%s" % (base, member) if base else member

    def resolve_bits(self, member_index: int) -> "Endpoint":
        """Replace ``@`` bit indices with the member's position."""
        msb = member_index if self.wire_msb == MEMBER_INDEX else self.wire_msb
        lsb = member_index if self.wire_lsb == MEMBER_INDEX else self.wire_lsb
        return Endpoint(self.module, self.port, msb, lsb)

    @property
    def width(self) -> Optional[int]:
        if isinstance(self.wire_msb, int) and isinstance(self.wire_lsb, int):
            return self.wire_msb - self.wire_lsb + 1
        return None


@dataclass(frozen=True)
class WireSpec:
    """One line of the Wire Library."""

    name: str
    width: int
    end1: Endpoint
    end2: Endpoint

    @property
    def is_chain(self) -> bool:
        """A BAN[..] group on both ends: a chain of BAN-to-BAN links."""
        return (
            self.end1.is_group
            and self.end2.is_group
            and self.end1.group_members == self.end2.group_members
            and len(self.end1.group_members) > 1
        )

    def validate(self) -> None:
        for endpoint in (self.end1, self.end2):
            width = endpoint.width
            if width is not None:
                if width <= 0:
                    raise ValueError(
                        "wire %s: endpoint %s.%s has inverted bit range"
                        % (self.name, endpoint.module, endpoint.port)
                    )
                if width > self.width:
                    raise ValueError(
                        "wire %s: endpoint %s.%s selects %d bits of a %d-bit wire"
                        % (self.name, endpoint.module, endpoint.port, width, self.width)
                    )
                if isinstance(endpoint.wire_msb, int) and endpoint.wire_msb >= self.width:
                    raise ValueError(
                        "wire %s: endpoint %s.%s MSB %d outside width %d"
                        % (
                            self.name,
                            endpoint.module,
                            endpoint.port,
                            endpoint.wire_msb,
                            self.width,
                        )
                    )


@dataclass
class WireGroup:
    """A named ``%wire`` section: all specs for one BAN or subsystem kind."""

    name: str
    specs: List[WireSpec]

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()
