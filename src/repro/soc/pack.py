"""Packing helpers: application data <-> 32-bit bus words.

The simulated memories and buses move 32-bit words (the unit the paper's
APIs use: "each task accesses one-hundred 32-bit words").  Applications work
on richer data -- complex OFDM samples, MPEG2 byte streams -- so this module
provides lossless-enough packings:

* complex samples as Q15 fixed-point (real, imag) int16 pairs in one word,
  which is how a fixed-point OFDM modem really ships samples to a DAC;
* byte streams packed big-endian four-to-a-word (MPEG2 bitstreams);
* plain Python ints passed through masked to 32 bits.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "Q15_SCALE",
    "complex_to_words",
    "words_to_complex",
    "complex_to_float_words",
    "float_words_to_complex",
    "bytes_to_words",
    "words_to_bytes",
    "ints_to_words",
    "bits_to_words",
    "words_to_bits",
]

Q15_SCALE = 1 << 15


def _to_q15(values: np.ndarray) -> np.ndarray:
    clipped = np.clip(values, -1.0, 32767.0 / Q15_SCALE)
    return np.round(clipped * Q15_SCALE).astype(np.int64)


def complex_to_words(samples: Sequence[complex]) -> List[int]:
    """Pack complex samples (|re|,|im| <= ~1.0) as Q15 pairs, one per word."""
    array = np.asarray(samples, dtype=np.complex128)
    real = _to_q15(array.real) & 0xFFFF
    imag = _to_q15(array.imag) & 0xFFFF
    words = (real << 16) | imag
    return [int(word) for word in words]


def _from_q15(raw: np.ndarray) -> np.ndarray:
    signed = np.where(raw >= 0x8000, raw.astype(np.int64) - 0x10000, raw)
    return signed / Q15_SCALE


def words_to_complex(words: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`complex_to_words`."""
    array = np.asarray(words, dtype=np.int64)
    real = _from_q15((array >> 16) & 0xFFFF)
    imag = _from_q15(array & 0xFFFF)
    return real + 1j * imag


def complex_to_float_words(samples: Sequence[complex]) -> List[int]:
    """Pack complex samples as float32 (re, im) bit patterns: 2 words each.

    This is the packing the OFDM pipeline uses between stages -- lossless to
    single precision, which is what a float C implementation would move.
    """
    array = np.asarray(samples, dtype=np.complex64)
    interleaved = np.empty(2 * len(array), dtype=np.float32)
    interleaved[0::2] = array.real
    interleaved[1::2] = array.imag
    return [int(word) for word in interleaved.view(np.uint32)]


def float_words_to_complex(words: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`complex_to_float_words`."""
    raw = np.asarray(words, dtype=np.uint32)
    if len(raw) % 2:
        raise ValueError("float-packed complex data needs an even word count")
    interleaved = raw.view(np.float32)
    return (interleaved[0::2] + 1j * interleaved[1::2]).astype(np.complex128)


def bits_to_words(bits: Sequence[int]) -> List[int]:
    """Pack a 0/1 bit sequence 32-to-a-word, MSB first."""
    words: List[int] = []
    accumulator = 0
    count = 0
    for bit in bits:
        accumulator = (accumulator << 1) | (int(bit) & 1)
        count += 1
        if count == 32:
            words.append(accumulator)
            accumulator = 0
            count = 0
    if count:
        words.append(accumulator << (32 - count))
    return words


def words_to_bits(words: Sequence[int], n_bits: int) -> List[int]:
    """Inverse of :func:`bits_to_words`."""
    bits: List[int] = []
    for word in words:
        for shift in range(31, -1, -1):
            bits.append((int(word) >> shift) & 1)
            if len(bits) == n_bits:
                return bits
    if len(bits) < n_bits:
        raise ValueError("not enough words for %d bits" % n_bits)
    return bits


def bytes_to_words(data: bytes) -> List[int]:
    """Pack a byte string big-endian, zero-padded to a word boundary."""
    padded = data + b"\x00" * (-len(data) % 4)
    return [
        int.from_bytes(padded[index : index + 4], "big")
        for index in range(0, len(padded), 4)
    ]


def words_to_bytes(words: Iterable[int], length: int) -> bytes:
    """Inverse of :func:`bytes_to_words`; ``length`` trims the padding."""
    chunks = [int(word).to_bytes(4, "big") for word in words]
    return b"".join(chunks)[:length]


def ints_to_words(values: Iterable[int]) -> List[int]:
    """Mask arbitrary ints to unsigned 32-bit bus words."""
    return [int(value) & 0xFFFFFFFF for value in values]
