"""Software substrate: communication APIs, handshake protocols, RTOS."""

from .api import Address, SocAPI
from .handshake import (
    BfbaChannel,
    Channel,
    FpaDistributor,
    GbaviChannel,
    GlobalChannel,
    ThreeRegisterChannel,
    make_channel,
)
from . import pack
from . import rtos

__all__ = [
    "Address",
    "SocAPI",
    "BfbaChannel",
    "Channel",
    "FpaDistributor",
    "GbaviChannel",
    "GlobalChannel",
    "ThreeRegisterChannel",
    "make_channel",
    "pack",
    "rtos",
]
