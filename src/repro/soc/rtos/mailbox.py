"""Intra-PE mailboxes: ATALANTA-style message queues between local tasks.

A mailbox passes small messages between tasks scheduled by the *same* RTOS
instance; receivers block (the kernel switches to another ready task) until
a message arrives.  Cross-PE data still moves through the bus fabric -- a
mailbox is purely a local kernel object, so it charges only the scheduling
cost, like a real single-address-space RTOS queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .kernel import Rtos, Syscall

__all__ = ["Mailbox"]


class Mailbox:
    """A FIFO message queue local to one RTOS instance."""

    def __init__(self, rtos: Rtos, name: str, capacity: Optional[int] = None):
        self.rtos = rtos
        self.name = name
        self.capacity = capacity
        self._messages: Deque[Any] = deque()
        self.sends = 0
        self.receives = 0

    @property
    def _key(self) -> str:
        return "mailbox:%s" % self.name

    @property
    def _space_key(self) -> str:
        return "mailbox-space:%s" % self.name

    def post(self, message: Any) -> Generator:
        """Send; blocks the calling task while the mailbox is full."""
        while self.capacity is not None and len(self._messages) >= self.capacity:
            yield Syscall("block", self._space_key)
        self._messages.append(message)
        self.sends += 1
        self.rtos.wake(self._key)

    def pend(self) -> Generator:
        """Receive; blocks the calling task while the mailbox is empty."""
        while not self._messages:
            yield Syscall("block", self._key)
        message = self._messages.popleft()
        self.receives += 1
        self.rtos.wake(self._space_key)
        return message

    def try_pend(self) -> Optional[Any]:
        """Non-blocking receive; None when empty."""
        if not self._messages:
            return None
        self.receives += 1
        message = self._messages.popleft()
        self.rtos.wake(self._space_key)
        return message

    def __len__(self) -> int:
        return len(self._messages)
