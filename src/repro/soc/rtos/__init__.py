"""ATALANTA-like RTOS substrate.

The paper's database experiment runs forty-one tasks on top of the ATALANTA
RTOS (GIT-CC-02-19) -- one kernel instance per BAN, tasks scheduled by
priority, with mutual exclusion over database objects implemented through
locks in shared memory.  This package provides the equivalent kernel for
the simulated PEs.
"""

from .kernel import Rtos, Syscall, Task, TaskState
from .sync import LockManager, SpinLock
from .mailbox import Mailbox

__all__ = [
    "Rtos",
    "Syscall",
    "Task",
    "TaskState",
    "LockManager",
    "SpinLock",
    "Mailbox",
]
