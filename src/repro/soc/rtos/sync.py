"""Shared-memory locks for cross-PE mutual exclusion.

The database example synchronizes "mutually exclusive accesses of the
database objects in a multiprocessor system" (Figure 21) through locks.  A
:class:`SpinLock` is a word in *shared* memory manipulated with the bus-
locked read-modify-write primitive; acquisition failure suspends the calling
task in its local RTOS and retries after a backoff, so lock contention shows
up as both bus traffic (the test-and-set transactions) and scheduling time
-- the two costs the paper's Table IV architecture comparison stresses.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from ..api import Address, SocAPI
from .kernel import Rtos, Syscall

__all__ = ["SpinLock", "LockManager"]


class SpinLock:
    """One test-and-set lock word in shared memory."""

    def __init__(self, name: str, address: Address):
        self.name = name
        self.address = address
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self, rtos: Rtos, retry_cycles: int = 64) -> Generator:
        """Acquire from an RTOS task: test-and-set, sleep-retry on failure."""
        api = rtos.api
        while True:
            old, _new = yield from api.atomic_update(self.address, lambda v: 1)
            if old == 0:
                self.acquisitions += 1
                return
            self.contentions += 1
            yield Syscall("sleep", retry_cycles)

    def acquire_raw(self, api: SocAPI, retry_cycles: int = 64) -> Generator:
        """Acquire from a bare program (no RTOS): spin with idle backoff."""
        while True:
            old, _new = yield from api.atomic_update(self.address, lambda v: 1)
            if old == 0:
                self.acquisitions += 1
                return
            self.contentions += 1
            yield from api.stall(retry_cycles)

    def release(self, api: SocAPI) -> Generator:
        yield from api.mem_write([0], self.address)

    def holder_value(self, api: SocAPI) -> Generator:
        values = yield from api.read(self.address, 1)
        return values[0]


class LockManager:
    """Allocates named locks out of a shared-memory region.

    All PEs must construct their manager over the same memory device with
    the same names in the same order so the lock words line up; the manager
    derives each lock's address deterministically from a common base.
    """

    def __init__(self, api: SocAPI, base: Address, capacity: int = 64):
        self.api = api
        self.base = api.resolve(base)
        self.capacity = capacity
        self._locks: Dict[str, SpinLock] = {}
        self._order: Dict[str, int] = {}

    def lock(self, name: str) -> SpinLock:
        if name not in self._locks:
            index = len(self._order)
            if index >= self.capacity:
                raise RuntimeError("lock region exhausted (%d locks)" % self.capacity)
            self._order[name] = index
            device, offset = self.base
            self._locks[name] = SpinLock(name, (device, offset + index))
        return self._locks[name]

    def acquire(self, rtos: Rtos, name: str, retry_cycles: int = 64) -> Generator:
        yield from self.lock(name).acquire(rtos, retry_cycles)

    def release(self, name: str) -> Generator:
        yield from self.lock(name).release(self.api)
