"""Priority-scheduled cooperative RTOS kernel for one simulated PE.

Tasks are Python generators over the :class:`repro.soc.api.SocAPI` surface.
The kernel multiplexes them on its PE: bus transactions and compute phases
run synchronously (a blocked bus access stalls the CPU, as on real
hardware), while *kernel services* -- sleeping, yielding, blocking on a lock
or mailbox -- reschedule to another ready task, charging a context-switch
cost in instructions.

Scheduling is fixed-priority preemptive-at-service-points with FIFO order
inside a priority level, like ATALANTA's static-priority scheduler; priority
0 is highest.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from ..api import SocAPI

__all__ = ["Syscall", "TaskState", "Task", "Rtos"]


class Syscall:
    """A kernel-service request yielded out of a task body.

    ``kind`` is one of:

    * ``"yield"``  -- give up the CPU voluntarily;
    * ``"sleep"``  -- block for ``arg`` cycles;
    * ``"block"``  -- block until :meth:`Rtos.wake` is called with ``arg``
      (an arbitrary waiting-channel key);
    * ``"exit"``   -- terminate the calling task.
    """

    __slots__ = ("kind", "arg")

    def __init__(self, kind: str, arg: Any = None):
        self.kind = kind
        self.arg = arg


class TaskState:
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    DONE = "done"


class Task:
    """One RTOS task: a generator body plus scheduling metadata."""

    _ids = itertools.count(1)

    def __init__(self, name: str, body: Generator, priority: int = 10):
        self.task_id = next(Task._ids)
        self.name = name
        self.body = body
        self.priority = priority
        self.state = TaskState.READY
        self.wake_at: Optional[int] = None
        self.wait_key: Any = None
        self.result: Any = None
        self.enqueued_at = 0
        self.switches = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Task %s #%d %s>" % (self.name, self.task_id, self.state)


class Rtos:
    """One kernel instance bound to one PE."""

    def __init__(
        self,
        api: SocAPI,
        context_switch_instructions: int = 120,
        idle_tick_cycles: int = 32,
    ):
        self.api = api
        self.context_switch_instructions = context_switch_instructions
        self.idle_tick_cycles = idle_tick_cycles
        self.tasks: List[Task] = []
        self.current: Optional[Task] = None
        self.context_switches = 0
        self.idle_cycles = 0
        self._enqueue_seq = 0

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------
    def spawn(self, name: str, body: Generator, priority: int = 10) -> Task:
        task = Task(name, body, priority)
        self._enqueue_seq += 1
        task.enqueued_at = self._enqueue_seq
        self.tasks.append(task)
        return task

    def live_tasks(self) -> List[Task]:
        return [task for task in self.tasks if task.state != TaskState.DONE]

    # ------------------------------------------------------------------
    # Kernel services callable from task bodies (via ``yield from``)
    # ------------------------------------------------------------------
    def yield_cpu(self) -> Generator:
        yield Syscall("yield")

    def sleep(self, cycles: int) -> Generator:
        yield Syscall("sleep", cycles)

    def block_on(self, key: Any) -> Generator:
        yield Syscall("block", key)

    def wake(self, key: Any) -> int:
        """Make every task blocked on ``key`` ready; returns how many."""
        count = 0
        for task in self.tasks:
            if task.state == TaskState.BLOCKED and task.wait_key == key:
                task.state = TaskState.READY
                task.wait_key = None
                self._enqueue_seq += 1
                task.enqueued_at = self._enqueue_seq
                count += 1
        return count

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _pick(self) -> Optional[Task]:
        ready = [task for task in self.tasks if task.state == TaskState.READY]
        if not ready:
            return None
        return min(ready, key=lambda task: (task.priority, task.enqueued_at))

    def _next_wake(self) -> Optional[int]:
        times = [
            task.wake_at
            for task in self.tasks
            if task.state == TaskState.SLEEPING and task.wake_at is not None
        ]
        return min(times) if times else None

    def run(self) -> Generator:
        """The scheduler loop; launch with ``machine.pe(...).run(rtos.run())``."""
        sim = self.api.machine.sim
        while self.live_tasks():
            self._wake_sleepers(sim.now)
            task = self._pick()
            if task is None:
                yield from self._idle(sim)
                continue
            if task is not self.current:
                self.context_switches += 1
                task.switches += 1
                yield from self.api.compute(self.context_switch_instructions)
            self.current = task
            task.state = TaskState.RUNNING
            yield from self._drive(task)
        self.current = None

    def _wake_sleepers(self, now: int) -> None:
        for task in self.tasks:
            if (
                task.state == TaskState.SLEEPING
                and task.wake_at is not None
                and task.wake_at <= now
            ):
                task.state = TaskState.READY
                task.wake_at = None
                self._enqueue_seq += 1
                task.enqueued_at = self._enqueue_seq

    def _idle(self, sim) -> Generator:
        next_wake = self._next_wake()
        if next_wake is None:
            # Every live task is blocked on a key that only another PE can
            # wake (through shared state polled by a retry loop); tick.
            wait = self.idle_tick_cycles
        else:
            wait = max(1, next_wake - sim.now)
        self.idle_cycles += wait
        yield wait
        self._wake_sleepers(sim.now)

    def _drive(self, task: Task) -> Generator:
        """Advance one task until it requests a service or finishes."""
        sim = self.api.machine.sim
        send_value: Any = None
        while True:
            try:
                item = task.body.send(send_value)
            except StopIteration as stop:
                task.state = TaskState.DONE
                task.result = stop.value
                return
            if isinstance(item, Syscall):
                if item.kind == "yield":
                    task.state = TaskState.READY
                    self._enqueue_seq += 1
                    task.enqueued_at = self._enqueue_seq
                elif item.kind == "sleep":
                    task.state = TaskState.SLEEPING
                    task.wake_at = sim.now + max(1, int(item.arg))
                elif item.kind == "block":
                    task.state = TaskState.BLOCKED
                    task.wait_key = item.arg
                elif item.kind == "exit":
                    task.state = TaskState.DONE
                else:  # pragma: no cover - defensive
                    raise ValueError("unknown syscall %r" % item.kind)
                return
            # Anything else is a simulation event (bus access, compute):
            # the whole PE stalls on it -- no task switch.
            send_value = yield item
