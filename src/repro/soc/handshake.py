"""Handshake protocol adapters (section IV.C, Figures 11-13).

The paper's 2-register protocol (DONE_OP / DONE_RV, Example 2) is adapted to
each bus architecture:

* :class:`GbaviChannel` -- polling over a shared HS_REGS block; the payload
  moves through the *sender's* local SRAM, read by the receiver across the
  segmented global bus (Example 3 / Figure 11).
* :class:`BfbaChannel` -- the sender pushes into the receiver's Bi-FIFO; a
  threshold interrupt fires the receiver's handler, which pops the data and
  flips the registers (Example 4 / Figure 12).
* :class:`GlobalChannel` -- DONE_OP / DONE_RV live as *global control
  variables* in the shared memory, and the payload moves through a shared
  buffer there (Example 5 / Figure 13; used by GBAVIII, SplitBA, Hybrid's
  global path, GGBA and CCBA).

All three expose the same sender/receiver surface::

    yield from channel.send(words)      # sender side
    values = yield from channel.recv()  # receiver side
    yield from channel.release()        # receiver side, after processing

``release()`` is meaningful for BFBA (it re-asserts DONE_OP, Figure 12 step
6) and a no-op elsewhere.  Each channel records a protocol *step trace* --
``(step_label, cycle)`` pairs keyed to the numbered steps of the paper's
state diagrams -- which the figure-reproduction benches assert against.

:class:`FpaDistributor` implements the functional-parallel pattern of
Example 5 proper: one PE distributes raw data chunks to every worker through
the shared memory and collects completion flags.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from .api import Address, SocAPI

__all__ = [
    "Channel",
    "GbaviChannel",
    "ThreeRegisterChannel",
    "BfbaChannel",
    "GlobalChannel",
    "FpaDistributor",
    "make_channel",
]


class Channel:
    """Common base: one direction of communication between two BANs."""

    kind = "abstract"

    def __init__(self, sender: SocAPI, receiver: SocAPI, max_words: int):
        if sender.machine is not receiver.machine:
            raise ValueError("channel endpoints live on different machines")
        self.sender = sender
        self.receiver = receiver
        self.max_words = max_words
        self.transfers = 0
        self.trace: List[Tuple[str, int]] = []

    def _mark(self, label: str) -> None:
        self.trace.append((label, self.sender.machine.sim.now))

    # Sender / receiver surface -----------------------------------------
    def send(self, values: Sequence[int]) -> Generator:
        raise NotImplementedError

    def recv(self) -> Generator:
        raise NotImplementedError

    def release(self) -> Generator:
        """Receiver-side completion hook (no-op unless the protocol needs it)."""
        return
        yield  # pragma: no cover - makes this a generator


class GbaviChannel(Channel):
    """Figure 11: polling handshake; data via the sender's shared SRAM."""

    kind = "GBAVI"

    def __init__(self, sender: SocAPI, receiver: SocAPI, max_words: int):
        super().__init__(sender, receiver, max_words)
        machine = sender.machine
        self.hs_device = machine.hsregs_for(sender.ban, receiver.ban).name
        # Shared mailbox area in the sender's local SRAM (Example 3 uses
        # SRAM_A address 0x000000 for the A->B transfer).
        sender_memory = machine.local_memory_of(sender.ban)
        if sender_memory is None:
            raise LookupError("GBAVI channel needs a sender-local SRAM")
        self.mailbox: Address = (sender_memory, machine.reserve(sender_memory, max_words))
        # Receiver-local landing buffer (SRAM_B address 0x400000 in Ex. 3).
        receiver_memory = machine.local_memory_of(receiver.ban)
        if receiver_memory is None:
            raise LookupError("GBAVI channel needs a receiver-local SRAM")
        self.landing: Address = (receiver_memory, machine.reserve(receiver_memory, max_words))
        self._pending_words = 0

    def send(self, values: Sequence[int]) -> Generator:
        values = list(values)
        if len(values) > self.max_words:
            raise ValueError("transfer exceeds channel mailbox size")
        # Step (2): write processed data into the sender SRAM, assert DONE_OP.
        yield from self.sender.mem_write(values, self.mailbox)
        self._pending_words = len(values)
        yield from self.sender.reg_write(self.hs_device, "DONE_OP", 1)
        self._mark("2:assert DONE_OP")
        # Step (5): wait for DONE_RV and deassert it.
        yield from self.sender.reg_wait(self.hs_device, "DONE_RV", 1)
        yield from self.sender.reg_write(self.hs_device, "DONE_RV", 0)
        self._mark("5:deassert DONE_RV")
        self.transfers += 1

    def recv(self) -> Generator:
        # Step (3): wait DONE_OP, deassert it, mem_read() the payload across
        # the bus bridge into the local SRAM.
        yield from self.receiver.reg_wait(self.hs_device, "DONE_OP", 1)
        yield from self.receiver.reg_write(self.hs_device, "DONE_OP", 0)
        self._mark("3:deassert DONE_OP")
        words = self._pending_words or self.max_words
        values = yield from self.receiver.mem_read(words, self.mailbox, self.landing)
        self._mark("3:transfer data")
        # Step (4): assert DONE_RV.
        yield from self.receiver.reg_write(self.hs_device, "DONE_RV", 1)
        self._mark("4:assert DONE_RV")
        return values


class ThreeRegisterChannel(GbaviChannel):
    """The *typical* 3-register handshake the paper's protocol drops.

    Section IV.C: a conventional handshake keeps (1) read request, (2) data
    ready and (3) acknowledge.  BusSyn's protocol removes (1) by exploiting
    the data dependency between pipeline stages.  This variant restores the
    read-request register (a second HS_REGS pair in the receiver's BAN) so
    the ablation bench can measure what dropping it saves: one extra
    register round-trip per transfer on the sender's critical path.
    """

    kind = "GBAVI-3REG"

    def __init__(self, sender: SocAPI, receiver: SocAPI, max_words: int):
        super().__init__(sender, receiver, max_words)
        # The request register rides a second pair in the receiver's BAN.
        self.req_device = self._alloc_req_device(sender, receiver)

    @staticmethod
    def _alloc_req_device(sender: SocAPI, receiver: SocAPI) -> str:
        machine = sender.machine
        name = "HS_REGS_%s_REQ_%s" % (receiver.ban, sender.ban)
        if name not in machine.devices:
            from ..sim.fabric import Device
            from ..sim.hsregs import HandshakeRegisters

            template = machine.hsregs_for(sender.ban, receiver.ban)
            block = HandshakeRegisters(machine.sim, name)
            parties = None
            if template.point_to_point:
                parties = {sender.pe.name, receiver.pe.name}
            machine.add_device(
                Device(
                    name,
                    "hsregs",
                    block,
                    template.segment,
                    point_to_point=template.point_to_point,
                    parties=parties,
                )
            )
        return name

    def send(self, values: Sequence[int]) -> Generator:
        # Condition (1): wait for the receiver's read request, clear it.
        yield from self.sender.reg_wait(self.req_device, "DONE_OP", 1)
        yield from self.sender.reg_write(self.req_device, "DONE_OP", 0)
        self._mark("1:consume read request")
        yield from super().send(values)

    def recv(self) -> Generator:
        # Condition (1): raise the read request before waiting for data.
        yield from self.receiver.reg_write(self.req_device, "DONE_OP", 1)
        self._mark("1:assert read request")
        values = yield from super().recv()
        return values


class BfbaChannel(Channel):
    """Figure 12: Bi-FIFO push, threshold interrupt, register handshake."""

    kind = "BFBA"

    def __init__(
        self,
        sender: SocAPI,
        receiver: SocAPI,
        max_words: int,
        threshold: Optional[int] = None,
    ):
        super().__init__(sender, receiver, max_words)
        machine = sender.machine
        self.hs_device = machine.hsregs_for(sender.ban, receiver.ban).name
        self.threshold = threshold or max_words
        receiver_memory = machine.local_memory_of(receiver.ban)
        if receiver_memory is None:
            raise LookupError("BFBA channel needs a receiver-local SRAM")
        self.landing: Address = (
            receiver_memory,
            machine.reserve(receiver_memory, max_words),
        )
        self._mailbox: List[List[int]] = []
        # Initial conditions of Example 4: DONE_OP=1 (sender may push),
        # DONE_RV=0; the sender programs the threshold register.
        hs_block = machine.devices[self.hs_device].target
        hs_block.write("DONE_OP", 1)
        sender.fifo_set_threshold(receiver.ban, self.threshold)
        receiver.on_fifo_interrupt(sender.ban, self._interrupt)

    # -- receiver-side interrupt handler ---------------------------------
    def _interrupt(self, payload) -> None:
        """Threshold interrupt: spawn the handler process on the receiver.

        DONE_OP is deasserted *synchronously* here -- before the sender can
        poll it again -- modelling the interrupt-entry hardware gating the
        register.  (With a purely software deassert, a fast sender could
        read a stale "1" and push a second transfer before the handler of
        the first has run; the generated HS_REGS block ties the deassert to
        the interrupt acknowledge to close that race.)
        """
        self.receiver.pe.stats.interrupts_taken += 1
        self.receiver.machine.devices[self.hs_device].target.write("DONE_OP", 0)
        self._mark("3.1:deassert DONE_OP")
        self.receiver.machine.sim.process(
            self._handler(), "%s.fifo_isr" % self.receiver.pe.name
        )

    def _handler(self) -> Generator:
        # Figure 12 steps (3.2)-(3.3): pop the data into the landing
        # buffer, assert DONE_RV.  A short fixed instruction charge models
        # the handler prologue/epilogue.
        receiver = self.receiver
        yield from receiver.compute(40)
        # The pop streams straight into the landing buffer: the Bi-FIFO
        # controller drives the local bus once, FIFO -> SRAM.
        values = yield from receiver.fifo_pop(self.sender.ban, self.threshold)
        receiver.machine.memory(self.landing[0]).write(self.landing[1], values)
        self._mailbox.append(values)
        self._mark("3.2:pop data")
        yield from receiver.reg_write(self.hs_device, "DONE_RV", 1)
        self._mark("3.3:assert DONE_RV")

    # -- channel surface -----------------------------------------------------
    def send(self, values: Sequence[int]) -> Generator:
        values = list(values)
        if len(values) != self.threshold:
            raise ValueError(
                "BFBA transfer must match the threshold register (%d words, got %d)"
                % (self.threshold, len(values))
            )
        # Step (2): after reading "1" in DONE_OP, push into the Bi-FIFO.
        # (Marked at push start: the threshold interrupt fires the moment
        # the final word lands, i.e. while the push API is still active.)
        yield from self.sender.reg_wait(self.hs_device, "DONE_OP", 1)
        self._mark("2:push data")
        yield from self.sender.fifo_push(self.receiver.ban, values)
        self.transfers += 1

    def recv(self) -> Generator:
        # Step (4): wait DONE_RV, deassert it, hand the popped data over.
        yield from self.receiver.reg_wait(self.hs_device, "DONE_RV", 1)
        yield from self.receiver.reg_write(self.hs_device, "DONE_RV", 0)
        self._mark("4:deassert DONE_RV")
        return self._mailbox.pop(0)

    def release(self) -> Generator:
        # Step (6): processing finished; allow the next push.
        yield from self.receiver.reg_write(self.hs_device, "DONE_OP", 1)
        self._mark("6:assert DONE_OP")


class GlobalChannel(Channel):
    """Figure 13-style handshake over shared-memory control variables."""

    kind = "GLOBAL"

    def __init__(
        self,
        sender: SocAPI,
        receiver: SocAPI,
        max_words: int,
        memory: Optional[str] = None,
    ):
        super().__init__(sender, receiver, max_words)
        machine = sender.machine
        self.memory = memory or sender.shared_memory()
        self.buffer: Address = (self.memory, machine.reserve(self.memory, max_words))
        suffix = "%s_%s" % (sender.ban, receiver.ban)
        self.var_op = "DONE_OP_%s" % suffix
        self.var_rv = "DONE_RV_%s" % suffix
        self._pending_words = 0

    def send(self, values: Sequence[int]) -> Generator:
        values = list(values)
        if len(values) > self.max_words:
            raise ValueError("transfer exceeds channel buffer size")
        yield from self.sender.mem_write(values, self.buffer)
        self._pending_words = len(values)
        yield from self.sender.var_write(self.var_op, 1, self.memory)
        self._mark("2:assert DONE_OP")
        yield from self.sender.var_wait(self.var_rv, 1, self.memory)
        yield from self.sender.var_write(self.var_rv, 0, self.memory)
        self._mark("5:deassert DONE_RV")
        self.transfers += 1

    def recv(self) -> Generator:
        yield from self.receiver.var_wait(self.var_op, 1, self.memory)
        yield from self.receiver.var_write(self.var_op, 0, self.memory)
        self._mark("3:deassert DONE_OP")
        words = self._pending_words or self.max_words
        values = yield from self.receiver.read(self.buffer, words)
        self._mark("3:transfer data")
        yield from self.receiver.var_write(self.var_rv, 1, self.memory)
        self._mark("4:assert DONE_RV")
        return values


class FpaDistributor:
    """Example 5: one PE distributes work chunks through the global memory.

    The distributor BAN writes each worker's input chunk to a per-worker
    buffer in the shared memory and raises that worker's DONE_RV variable
    (step 1); workers wait on it, read their chunk, clear the flag and
    process (step 3); on completion they write results to a per-worker
    output buffer and raise DONE_OP (step 4); the distributor collects by
    waiting on DONE_OP and clearing it (step 5).
    """

    def __init__(
        self,
        distributor: SocAPI,
        workers: Dict[str, SocAPI],
        chunk_words: int,
        result_words: int,
        memory: Optional[str] = None,
    ):
        self.distributor = distributor
        self.workers = dict(workers)
        self.chunk_words = chunk_words
        self.result_words = result_words
        machine = distributor.machine
        self.memory = memory or distributor.shared_memory()
        self.in_buffers: Dict[str, Address] = {}
        self.out_buffers: Dict[str, Address] = {}
        for ban in self.workers:
            self.in_buffers[ban] = (self.memory, machine.reserve(self.memory, chunk_words))
            self.out_buffers[ban] = (self.memory, machine.reserve(self.memory, result_words))
        self.trace: List[Tuple[str, int]] = []

    def _mark(self, label: str) -> None:
        self.trace.append((label, self.distributor.machine.sim.now))

    def _rv(self, ban: str) -> str:
        return "DONE_RV_FPA_%s" % ban

    def _op(self, ban: str) -> str:
        return "DONE_OP_FPA_%s" % ban

    # -- distributor side -------------------------------------------------
    def deliver(self, ban: str, values: Sequence[int]) -> Generator:
        """Step (1): write a worker's input chunk and raise its DONE_RV."""
        api = self.distributor
        yield from api.mem_write(list(values), self.in_buffers[ban])
        yield from api.var_write(self._rv(ban), 1, self.memory)
        self._mark("1:deliver %s" % ban)

    def collect(self, ban: str) -> Generator:
        """Step (5): wait for a worker's DONE_OP, clear it, read results."""
        api = self.distributor
        yield from api.var_wait(self._op(ban), 1, self.memory)
        yield from api.var_write(self._op(ban), 0, self.memory)
        values = yield from api.read(self.out_buffers[ban], self.result_words)
        self._mark("5:collect %s" % ban)
        return values

    # -- worker side ----------------------------------------------------------
    def fetch(self, ban: str) -> Generator:
        """Step (3): wait for DONE_RV, read the chunk, clear the flag."""
        api = self.workers[ban]
        yield from api.var_wait(self._rv(ban), 1, self.memory)
        values = yield from api.read(self.in_buffers[ban], self.chunk_words)
        yield from api.var_write(self._rv(ban), 0, self.memory)
        self._mark("3:fetch %s" % ban)
        return values

    def complete(self, ban: str, values: Sequence[int]) -> Generator:
        """Step (4): write results and raise DONE_OP."""
        api = self.workers[ban]
        yield from api.mem_write(list(values), self.out_buffers[ban])
        yield from api.var_write(self._op(ban), 1, self.memory)
        self._mark("4:complete %s" % ban)


def make_channel(
    sender: SocAPI,
    receiver: SocAPI,
    max_words: int,
    prefer: Optional[str] = None,
) -> Channel:
    """Pick the natural channel type for the machine's bus architecture.

    ``prefer`` forces a kind ('BFBA', 'GBAVI', 'GLOBAL') where the topology
    offers several (the Hybrid system has both FIFOs and a global bus --
    section IV.C.4).
    """
    machine = sender.machine
    have_fifo = bool(machine.fifo_blocks)
    have_hs_bus = (
        sender.ban in machine.hs_blocks or receiver.ban in machine.hs_blocks
    ) and not have_fifo
    have_global = machine.global_memory is not None

    def adjacent() -> bool:
        try:
            machine.fifo_for(sender.ban, receiver.ban)
            return True
        except LookupError:
            return False

    if prefer == "BFBA" or (prefer is None and have_fifo and adjacent()):
        return BfbaChannel(sender, receiver, max_words)
    if prefer == "GBAVI" or (prefer is None and have_hs_bus):
        return GbaviChannel(sender, receiver, max_words)
    if prefer == "GLOBAL" or (prefer is None and have_global):
        return GlobalChannel(sender, receiver, max_words)
    raise LookupError(
        "no usable channel from %s to %s on %s"
        % (sender.ban, receiver.ban, machine.name)
    )
