"""Software communication APIs (section IV.C).

The paper wraps the communication procedure in APIs "for the sake of easy
programming and program reliability" -- ``mem_read()`` in Example 3 moves an
exact number of words from a source area of the sender memory to a target
area of the receiver memory.  :class:`SocAPI` is the reproduction of that
layer: one instance is bound to one PE, and every method is a simulation
generator (call with ``yield from``) whose cycle cost flows through the
machine's buses, arbiters, caches and memories.

Addresses are ``(device_name, word_offset)`` pairs; plain integers are also
accepted and interpreted against the PE's default data memory, matching the
flat physical addresses of the paper's examples ("mem_read(64, 0x000000,
0x400000)").
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional, Sequence, Tuple, Union

from ..sim.fabric import Machine
from ..sim.pe import DataTouch, ProcessingElement

__all__ = ["Address", "SocAPI"]

Address = Union[int, Tuple[str, int]]


class SocAPI:
    """The per-PE software interface onto a simulated bus system."""

    def __init__(self, machine: Machine, ban: str):
        self.machine = machine
        self.ban = ban
        self.pe: ProcessingElement = machine.pe_by_ban[ban]
        # The PE's "natural" data memory: its local SRAM when it has one,
        # otherwise the shared memory it runs from (GGBA/SplitBA).
        local = machine.local_memory_of(ban)
        self.default_memory = local or machine.shared_memory_of.get(
            ban, machine.global_memory
        )
        # Polling parameters for register/variable waits.
        self.poll_interval = 16
        self.poll_interval_max = 128
        # Software overhead of one communication-API call (Example 3's
        # mem_read and friends): call/return, parameter marshalling, the
        # virtual-to-physical address translation Example 6 requires, and
        # loop setup.  Charged on every data-movement call.
        self.api_call_instructions = 300
        # A software poll iteration: load, mask, compare, branch.
        self.poll_probe_instructions = 25

    def _api_overhead(self) -> Generator:
        if self.api_call_instructions:
            yield from self.pe.compute(self.api_call_instructions)

    # ------------------------------------------------------------------
    # Address handling
    # ------------------------------------------------------------------
    def resolve(self, address: Address) -> Tuple[str, int]:
        if isinstance(address, tuple):
            return address
        return self.default_memory, int(address)

    def alloc(self, words: int, device: Optional[str] = None, label: str = "") -> Tuple[str, int]:
        """Reserve a buffer; returns its (device, offset) address."""
        device = device or self.default_memory
        return device, self.machine.reserve(device, words)

    # ------------------------------------------------------------------
    # Data movement (the paper's mem_read/mem_write APIs)
    # ------------------------------------------------------------------
    def mem_read(self, size: int, source: Address, target: Address) -> Generator:
        """Example 3's API: read ``size`` words at ``source`` (typically a
        remote BAN's memory) and store them at ``target`` (typically local).
        Returns the words moved."""
        yield from self._api_overhead()
        src_device, src_offset = self.resolve(source)
        dst_device, dst_offset = self.resolve(target)
        values = yield from self.pe.bus_read(src_device, src_offset, size)
        yield from self.pe.bus_write(dst_device, dst_offset, values)
        return values

    def mem_write(self, values: Sequence[int], target: Address) -> Generator:
        """Write ``values`` to ``target`` over the bus."""
        yield from self._api_overhead()
        device, offset = self.resolve(target)
        yield from self.pe.bus_write(device, offset, list(values))

    def read(self, source: Address, size: int) -> Generator:
        """Read ``size`` words into the program (registers), no store-back."""
        yield from self._api_overhead()
        device, offset = self.resolve(source)
        values = yield from self.pe.bus_read(device, offset, size)
        return values

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def compute(
        self,
        instructions: float,
        touches: Sequence[DataTouch] = (),
    ) -> Generator:
        """Charge a compute phase (see :meth:`ProcessingElement.compute`)."""
        yield from self.pe.compute(instructions, touches)

    def touch(self, address: Address, words: int, write: bool = False) -> DataTouch:
        """Build a DataTouch for :meth:`compute` from an API-level address."""
        device, offset = self.resolve(address)
        return DataTouch(device, offset, words, write)

    def stall(self, cycles: int) -> Generator:
        yield from self.pe.stall(cycles)

    # ------------------------------------------------------------------
    # Handshake registers (HS_REGS blocks; GBAVI / BFBA)
    # ------------------------------------------------------------------
    def reg_read(self, hs_device: str, register: str) -> Generator:
        value = yield from self.machine.reg_read(self.pe, hs_device, register)
        return value

    def reg_write(self, hs_device: str, register: str, value: int) -> Generator:
        yield from self.machine.reg_write(self.pe, hs_device, register, value)

    def reg_wait(self, hs_device: str, register: str, value: int) -> Generator:
        """Poll a handshake register until it holds ``value``.

        Models software polling: each probe is a real one-word bus read, and
        between probes the PE idles with a capped exponential backoff (so
        event counts stay bounded on long waits while contention from the
        polling traffic is still present).
        """
        block = self.machine.devices[hs_device].target
        interval = self.poll_interval
        while True:
            if self.poll_probe_instructions:
                yield from self.pe.compute(self.poll_probe_instructions)
            observed = yield from self.reg_read(hs_device, register)
            self.pe.stats.handshake_polls += 1
            if observed == value:
                return
            waiter = block.wait_for(register, value)
            if waiter.triggered:
                continue
            timeout = self.machine.sim.timeout(interval)
            yield self.machine.sim.any_of([waiter, timeout])
            interval = min(interval * 2, self.poll_interval_max)

    # ------------------------------------------------------------------
    # Shared control variables (GBAVIII / SplitBA / Hybrid / GGBA / CCBA)
    # ------------------------------------------------------------------
    def shared_memory(self) -> str:
        name = self.machine.shared_memory_of.get(self.ban, self.machine.global_memory)
        if name is None:
            raise LookupError("bus system %s has no shared memory" % self.machine.name)
        return name

    def var_read(self, variable: str, memory: Optional[str] = None) -> Generator:
        value = yield from self.machine.var_read(
            self.pe, memory or self.shared_memory(), variable
        )
        return value

    def var_write(self, variable: str, value: int, memory: Optional[str] = None) -> Generator:
        yield from self.machine.var_write(
            self.pe, memory or self.shared_memory(), variable, value
        )

    def var_wait(self, variable: str, value: int, memory: Optional[str] = None) -> Generator:
        """Poll a shared control variable until it reads ``value``.

        Unlike :meth:`reg_wait` there is no hardware change notification for
        a plain memory word, so this polls on a capped-backoff timer; every
        probe is a real arbitrated global-bus read (the contention source
        discussed in section IV.C's 'possible bus conflicts').
        """
        interval = self.poll_interval
        while True:
            if self.poll_probe_instructions:
                yield from self.pe.compute(self.poll_probe_instructions)
            observed = yield from self.var_read(variable, memory)
            self.pe.stats.handshake_polls += 1
            if observed == value:
                return
            yield interval
            interval = min(interval * 2, self.poll_interval_max)

    def scattered_access(
        self, address: Address, word_ops: int, write: bool = False
    ) -> Generator:
        """Word-granular accesses to a (cache-inhibited) buffer.

        Each of the ``word_ops`` single-word accesses re-arbitrates for the
        bus; the fabric groups them per tenure so event counts stay bounded
        while per-access grant cost is preserved.  This is how the MPEG2
        decoder's pointer-chasing over its working buffers is charged --
        the traffic class whose arbitration cost (3 vs 5 cycles) the paper
        blames for CCBA's deficit in Table III.
        """
        device, _offset = self.resolve(address)
        yield from self.machine.miss_traffic(
            self.pe, device, word_ops, line_words=1, write=write
        )

    def atomic_update(
        self, address: Address, update: Callable[[int], int]
    ) -> Generator:
        """Bus-locked read-modify-write (used by the RTOS lock manager)."""
        device, offset = self.resolve(address)
        old, new = yield from self.machine.atomic_rmw(self.pe, device, offset, update)
        return old, new

    # ------------------------------------------------------------------
    # Bi-FIFO operations (BFBA / Hybrid)
    # ------------------------------------------------------------------
    def fifo_set_threshold(self, receiver_ban: str, words: int) -> None:
        """Sender-side: program the receiver FIFO's threshold register."""
        _device, fifo = self.machine.fifo_for(self.ban, receiver_ban)
        fifo.set_threshold(words)

    def fifo_push(self, receiver_ban: str, values: Iterable[int]) -> Generator:
        yield from self._api_overhead()
        device, fifo = self.machine.fifo_for(self.ban, receiver_ban)
        yield from self.machine.fifo_push(self.pe, device, fifo, list(values))

    def fifo_pop(self, sender_ban: str, count: int) -> Generator:
        yield from self._api_overhead()
        device, fifo = self.machine.fifo_for(sender_ban, self.ban)
        values = yield from self.machine.fifo_pop(self.pe, device, fifo, count)
        return values

    def on_fifo_interrupt(self, sender_ban: str, handler: Callable) -> None:
        """Attach ``handler(payload)`` to the Bi-FIFO threshold interrupt
        raised when ``sender_ban`` fills this PE's receive FIFO."""
        controller = self.machine.interrupt_controllers[self.pe.name]
        controller.line("fifo_from_%s" % sender_ban).connect(handler)
        self.pe.stats.interrupts_taken += 0  # line exists; counted on delivery

    # ------------------------------------------------------------------
    # Topology helpers for application drivers
    # ------------------------------------------------------------------
    def neighbors(self) -> Tuple[Optional[str], Optional[str]]:
        return self.machine.neighbors_of(self.ban)

    def hs_device(self, sender_ban: str, receiver_ban: str) -> str:
        return self.machine.hsregs_for(sender_ban, receiver_ban).name
