"""Architecture fuzzing with auto-shrinking (``repro fuzz``).

The closed loop behind ROADMAP item 3: a seeded sampler draws random
*legal* option sets from the DSE options schema
(:mod:`repro.fuzz.generator`), a composed oracle checks each one from
four independent directions (:mod:`repro.fuzz.oracle`), any failure is
greedily shrunk to a minimal still-failing config
(:mod:`repro.fuzz.shrink`), and the minimal repro lands as a
deterministic, content-hash-named file in the checked-in ``corpus/``
directory (:mod:`repro.fuzz.corpus`).  :mod:`repro.fuzz.runner` drives
the whole loop -- corpus replay first, then the budgeted random sweep --
behind ``repro fuzz --budget N --seed S --jobs J`` (docs/fuzzing.md).
"""

from .corpus import DEFAULT_CORPUS_DIR, load_corpus, write_entry
from .generator import FuzzProfile, sample_cases
from .oracle import ORACLE_CHECKS, ORACLE_VERSION, evaluate_case
from .runner import format_fuzz_lines, fuzz_fingerprint, run_fuzz
from .shrink import shrink_case

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "FuzzProfile",
    "ORACLE_CHECKS",
    "ORACLE_VERSION",
    "evaluate_case",
    "format_fuzz_lines",
    "fuzz_fingerprint",
    "load_corpus",
    "run_fuzz",
    "sample_cases",
    "shrink_case",
    "write_entry",
]
