"""Greedy auto-shrinking of a failing fuzz case to a minimal repro.

Given a case the oracle failed, the shrinker walks a fixed set of
*dimension ladders* -- fewer PEs, fewer subsystems, narrower data width,
shallower FIFO, simpler arbiter policy, simpler style, fewer packets, a
shorter (or absent) fault plan, and a canonical fault seed -- most
aggressive value first, and adopts a candidate only when it

1. is still **legal** (re-validated through
   :func:`repro.dse.spec.normalize_options` -- an illegal candidate is
   counted and skipped *without ever reaching the oracle*, so the trace
   provably contains zero illegal evaluations), and
2. still **fails** the oracle with at least one failing check in common
   with the current repro (so the shrink cannot wander onto an unrelated
   bug).

Passes repeat until a whole sweep over every dimension adopts nothing
(a fixpoint): a ``pes`` shrink that is illegal under PPA becomes legal
after the ``style`` ladder moves PPA -> FPA on a shared-memory bus, so
single-pass greed would under-shrink.  Every attempt -- adopted, illegal,
passed, or diverged -- is recorded in the shrink trace that lands in the
corpus entry, which makes the minimization auditable after the fact.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..dse.spec import normalize_options
from .generator import case_key
from .oracle import evaluate_case

__all__ = ["DIMENSIONS", "shrink_case"]

#: Hard ceiling on oracle evaluations per shrink (each one simulates the
#: workload five times); generous -- real shrinks converge in well under
#: fifty -- but bounds a pathological ladder walk.
MAX_EVALUATIONS = 256

#: Arbiter policies by simplicity (shrink target first).
_POLICY_ORDER = ("fcfs", "round_robin", "priority")


def _ladder_pes(case: Dict[str, Any]) -> List[int]:
    return [value for value in (1, 2, 3, 4, 6) if value < case["options"]["pes"]]


def _ladder_subsystems(case: Dict[str, Any]) -> List[Optional[int]]:
    current = case["options"]["subsystems"]
    if current is None:
        return []
    return [value for value in (1, 2, 3, 4) if value < current]


def _ladder_data_width(case: Dict[str, Any]) -> List[int]:
    return [value for value in (32, 64) if value < case["options"]["data_width"]]


def _ladder_fifo_depth(case: Dict[str, Any]) -> List[int]:
    current = case["options"]["fifo_depth"]
    if current is None:
        return []
    return [value for value in (4, 16, 64, 256) if value < current]


def _ladder_policy(case: Dict[str, Any]) -> List[str]:
    current = case["options"]["arbiter_policy"]
    if current not in _POLICY_ORDER:
        return []
    return list(_POLICY_ORDER[: _POLICY_ORDER.index(current)])


def _ladder_style(case: Dict[str, Any]) -> List[str]:
    # FPA is the enabling move: it frees the 4-PE PPA pin so the pes
    # ladder can keep shrinking (legality still gates it to shared-memory
    # architectures -- an illegal FPA draw is skipped, never evaluated).
    if case["options"]["style"] == "PPA":
        return ["FPA"]
    return []


def _ladder_packets(case: Dict[str, Any]) -> List[int]:
    current = case["options"]["packets"]
    if current is None:
        return []
    return [value for value in (1, 2) if value < current]


def _ladder_fault_scale(case: Dict[str, Any]) -> List[int]:
    return [value for value in (0, 1) if value < case["fault_scale"]]


def _ladder_fault_seed(case: Dict[str, Any]) -> List[int]:
    return [0] if case["fault_seed"] != 0 else []


#: (name, is_option_dimension, ladder) -- most aggressive value first.
DIMENSIONS: Tuple[Tuple[str, bool, Callable], ...] = (
    ("pes", True, _ladder_pes),
    ("subsystems", True, _ladder_subsystems),
    ("style", True, _ladder_style),
    ("data_width", True, _ladder_data_width),
    ("fifo_depth", True, _ladder_fifo_depth),
    ("arbiter_policy", True, _ladder_policy),
    ("packets", True, _ladder_packets),
    ("fault_scale", False, _ladder_fault_scale),
    ("fault_seed", False, _ladder_fault_seed),
)


def _candidate(
    case: Dict[str, Any], dimension: str, is_option: bool, value: Any
) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Build the one-step candidate, legality-checked; (case, None) or
    (None, skip_reason)."""
    raw = dict(case["options"])
    fault_seed = case["fault_seed"]
    fault_scale = case["fault_scale"]
    if is_option:
        raw[dimension] = value
    elif dimension == "fault_scale":
        fault_scale = value
    else:
        fault_seed = value
    config, reason = normalize_options(raw)
    if config is None:
        return None, reason
    candidate = {
        "options": config.options(),
        "fault_seed": fault_seed,
        "fault_scale": fault_scale,
    }
    candidate["key"] = case_key(candidate)
    return candidate, None


def shrink_case(
    case: Dict[str, Any],
    verdict: Optional[Dict[str, Any]] = None,
    evaluate: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    kernel: str = "heap",
    max_evaluations: int = MAX_EVALUATIONS,
) -> Dict[str, Any]:
    """Shrink a failing ``case`` to a minimal still-failing one.

    ``evaluate`` defaults to :func:`repro.fuzz.oracle.evaluate_case`; the
    runner passes its cache-backed evaluator instead so shrink steps hit
    the artifact store.  Returns the shrink result::

        {"case", "verdict", "trace", "adopted", "evaluations",
         "illegal_skipped", "exhausted"}

    with the invariant that ``evaluations`` counts only *legal* candidates
    (illegal ones are skipped before the oracle) and ``verdict`` still
    fails with a check overlapping the original failure.
    """
    if evaluate is None:
        evaluate = lambda candidate: evaluate_case(candidate, kernel=kernel)
    current = dict(case)
    current.setdefault("key", case_key(current))
    current_verdict = verdict if verdict is not None else evaluate(current)
    if current_verdict["ok"]:
        raise ValueError(
            "shrink_case needs a failing case; %s passed the oracle"
            % current["key"][:12]
        )

    trace: List[Dict[str, Any]] = []
    memo: Dict[str, Dict[str, Any]] = {current["key"]: current_verdict}
    evaluations = 0
    illegal_skipped = 0
    adopted = 0
    exhausted = False

    progressed = True
    while progressed and not exhausted:
        progressed = False
        for dimension, is_option, ladder in DIMENSIONS:
            for value in ladder(current):
                step: Dict[str, Any] = {
                    "dimension": dimension,
                    "from": current["options"][dimension]
                    if is_option
                    else current[dimension],
                    "to": value,
                }
                candidate, reason = _candidate(current, dimension, is_option, value)
                if candidate is None:
                    illegal_skipped += 1
                    step["outcome"] = "illegal:%s" % reason
                    trace.append(step)
                    continue
                if candidate["key"] == current["key"]:
                    step["outcome"] = "no-op"
                    trace.append(step)
                    continue
                if candidate["key"] in memo:
                    candidate_verdict = memo[candidate["key"]]
                    step["memoized"] = True
                else:
                    if evaluations >= max_evaluations:
                        exhausted = True
                        step["outcome"] = "budget-exhausted"
                        trace.append(step)
                        break
                    evaluations += 1
                    candidate_verdict = evaluate(candidate)
                    memo[candidate["key"]] = candidate_verdict
                if candidate_verdict["ok"]:
                    step["outcome"] = "passed"
                    trace.append(step)
                    continue
                overlap = sorted(
                    set(candidate_verdict["failed_checks"])
                    & set(current_verdict["failed_checks"])
                )
                if not overlap:
                    step["outcome"] = "different-failure"
                    step["failed_checks"] = candidate_verdict["failed_checks"]
                    trace.append(step)
                    continue
                step["outcome"] = "adopted"
                step["key"] = candidate["key"][:12]
                trace.append(step)
                current = candidate
                current_verdict = candidate_verdict
                adopted += 1
                progressed = True
                # Restart this dimension's ladder from the new current
                # value on the next pass; move on for now.
                break
            if exhausted:
                break

    return {
        "case": current,
        "verdict": current_verdict,
        "trace": trace,
        "adopted": adopted,
        "evaluations": evaluations,
        "illegal_skipped": illegal_skipped,
        "exhausted": exhausted,
    }
