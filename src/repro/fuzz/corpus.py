"""The checked-in corpus of minimal failing configs.

Every finding the fuzzer shrinks lands here as one JSON file named by the
first twelve hex digits of the minimal case's content hash -- the same
identity discipline as the artifact cache and the run ledger, so the same
finding found twice (any seed, any machine) lands on the same filename
and a corpus merge is a plain file-level union.

An entry records the minimal case, its oracle verdict, the original
(pre-shrink) case, the full shrink trace, and a ``status``:

* ``"open"``   -- a live finding; corpus replay expects the oracle to
  *still fail* on it (it passing means somebody fixed the bug and should
  flip the status);
* ``"fixed"``  -- a regression guard; replay expects the oracle to *pass*
  (it failing again is a regression).

Files are canonical JSON (sorted keys, trailing newline), so a rewrite of
an unchanged entry is byte-identical and git-quiet.  The replay gate runs
in CI and as a tier-1 test (``tests/test_fuzz_corpus.py``) across all
three scheduler backends -- see docs/fuzzing.md for the triage workflow.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from ..obs.ledger import canonical_json

__all__ = [
    "CORPUS_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "STATUSES",
    "build_entry",
    "entry_filename",
    "load_corpus",
    "write_entry",
]

CORPUS_SCHEMA = 1

#: Repo-root-relative default; the CLI resolves it against the cwd.
DEFAULT_CORPUS_DIR = "corpus"

STATUSES = ("open", "fixed")

_REQUIRED = ("schema", "key", "status", "case", "verdict")


def entry_filename(entry: Dict[str, Any]) -> str:
    return "%s.json" % entry["key"][:12]


def build_entry(
    shrink_result: Dict[str, Any],
    original_case: Dict[str, Any],
    found_by: Dict[str, Any],
    status: str = "open",
    notes: str = "",
) -> Dict[str, Any]:
    """Assemble a corpus entry from one shrink result.

    ``found_by`` is provenance (fuzz seed, profile hash, oracle version)
    -- documentation for the human triaging the finding, not part of the
    entry's identity.
    """
    case = shrink_result["case"]
    return {
        "schema": CORPUS_SCHEMA,
        "key": case["key"],
        "status": status,
        "case": case,
        "verdict": shrink_result["verdict"],
        "original": original_case,
        "shrink": {
            "adopted": shrink_result["adopted"],
            "evaluations": shrink_result["evaluations"],
            "illegal_skipped": shrink_result["illegal_skipped"],
            "exhausted": shrink_result["exhausted"],
            "trace": shrink_result["trace"],
        },
        "found_by": found_by,
        "notes": notes,
    }


def validate_entry(entry: Dict[str, Any], source: str = "corpus entry") -> None:
    missing = [key for key in _REQUIRED if key not in entry]
    if missing:
        raise ValueError("%s: missing key(s) %s" % (source, ", ".join(missing)))
    if entry["status"] not in STATUSES:
        raise ValueError(
            "%s: status %r not one of %s"
            % (source, entry["status"], "/".join(STATUSES))
        )
    for key in ("options", "fault_seed", "fault_scale", "key"):
        if key not in entry["case"]:
            raise ValueError("%s: case is missing %r" % (source, key))


def write_entry(entry: Dict[str, Any], corpus_dir: str = DEFAULT_CORPUS_DIR) -> str:
    """Write (or byte-identically rewrite) one entry; returns its path."""
    validate_entry(entry)
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry_filename(entry))
    payload = canonical_json(entry) + "\n"
    handle = tempfile.NamedTemporaryFile(
        "w", dir=corpus_dir, prefix=".tmp-", suffix=".json", delete=False
    )
    try:
        handle.write(payload)
        handle.close()
        os.replace(handle.name, path)
    finally:
        if os.path.exists(handle.name):
            os.unlink(handle.name)
    return path


def load_corpus(corpus_dir: str = DEFAULT_CORPUS_DIR) -> List[Dict[str, Any]]:
    """All corpus entries, sorted by key (deterministic replay order).

    A missing directory is an empty corpus, not an error.  Each returned
    entry gains a ``"file"`` key with its basename (for replay messages);
    non-JSON files (the README) are ignored, unreadable JSON raises.
    """
    if not os.path.isdir(corpus_dir):
        return []
    entries: List[Dict[str, Any]] = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json") or name.startswith("."):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path) as handle:
            try:
                entry = json.load(handle)
            except ValueError as error:
                raise ValueError("%s: not valid JSON (%s)" % (path, error))
        validate_entry(entry, source=path)
        entry["file"] = name
        entries.append(entry)
    entries.sort(key=lambda entry: entry["key"])
    return entries
