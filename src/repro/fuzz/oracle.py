"""The composed oracle: four independent checks on one sampled config.

Each fuzz case is judged by every harness the repo has grown, composed
into one verdict:

* ``structural`` -- generate the Verilog bus system and require the
  netlist and simulation-machine :class:`FabricGraph` abstractions to be
  equivalent (:func:`repro.verify.equiv.compare_graphs`);
* ``protocol`` -- run the workload with
  :class:`~repro.verify.monitors.ProtocolMonitor` armed on every
  arbiter/segment/FIFO/bridge; any protocol finding, unfinished PE, or
  monitor-induced cycle perturbation fails the check;
* ``resilience`` -- compile a seeded fault plan (``fault_scale`` smoke
  scenarios worth), install it, run, and require the
  :class:`~repro.faults.report.ResilienceReport` accounting invariant
  (injected == recovered + residual + accounted) plus PE completion;
  a ``fault_scale`` of 0 skips the check (the shrinker's "no fault plan
  needed" direction);
* ``parity`` -- run the bare workload on the heap, wheel and compiled
  kernels and require identical run fingerprints (cycles, throughput,
  per-segment counter-plane totals).

Every check is exception-safe: a raised :class:`BusTimeoutError` (or any
other error) becomes a deterministic ``exception:`` finding rather than a
crashed fuzz run.  Verdicts are plain JSON-able dicts so they cache in
the DSE artifact store (kind ``"fuzz"``, keyed by case hash +
:data:`ORACLE_VERSION`) and diff cleanly inside corpus entries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.busyn import BusSyn
from ..dse.engine import simulate_config
from ..dse.spec import DseConfig, build_config_spec
from ..obs.ledger import content_hash
from ..sim.kernel import KERNEL_BACKENDS

__all__ = [
    "ORACLE_VERSION",
    "ORACLE_CHECKS",
    "PARITY_BACKENDS",
    "oracle_cache_key",
    "run_fingerprint",
    "evaluate_case",
]

#: Bump when the oracle's judgement surface changes; cached verdicts from
#: older oracles then read as misses instead of stale acquittals.
#: Version 2: data_width propagates into the generated RTL and the
#: structural extractor reads true widths, so every width-divergence
#: verdict from version 1 is void.
ORACLE_VERSION = 2

ORACLE_CHECKS = ("structural", "protocol", "resilience", "parity")

#: All registered scheduler backends, in registry order (heap, wheel,
#: compiled) -- the parity check runs the bare workload on each.
PARITY_BACKENDS = tuple(KERNEL_BACKENDS)

#: Architectures whose netlist <-> machine structural comparison is a
#: documented modelled divergence, not a bug (docs/verification.md).
STRUCTURAL_EXCLUDED = frozenset(["CCBA"])


def oracle_cache_key(case: Dict[str, Any]) -> str:
    """Artifact-store key for one case's verdict.

    The scheduler backend stays out of the key on purpose: verdicts are
    backend-invariant (the parity check itself proves it), so a verdict
    computed under ``--kernel compiled`` serves a later heap run.
    """
    return content_hash(
        {
            "oracle": ORACLE_VERSION,
            "options": case["options"],
            "fault_seed": case["fault_seed"],
            "fault_scale": case["fault_scale"],
        }
    )


def run_fingerprint(config: DseConfig, machine, metric: Dict[str, Any]) -> str:
    """Deterministic fingerprint of one finished run.

    Hashes the simulated-cycle count, the workload metric, per-PE finish
    cycles and the counter-plane totals -- everything the backend-parity
    suite guarantees bit-identical across heap/wheel/compiled, and nothing
    wall-clock.
    """
    plane = machine.counters
    return content_hash(
        {
            "cycles": metric["cycles"],
            "metric_name": metric["name"],
            "metric_value": metric["value"],
            "sim_now": machine.sim.now,
            "pe_finish": {
                name: pe.finished_at for name, pe in sorted(machine.pes.items())
            },
            "counters": plane.totals() if plane is not None else None,
        }
    )


def _findings_from_error(error: BaseException) -> List[str]:
    return ["exception: %s: %s" % (type(error).__name__, error)]


def _check_structural(config: DseConfig, tool: BusSyn) -> List[str]:
    from ..sim.fabric import build_machine
    from ..verify.equiv import compare_graphs
    from ..verify.graph import graph_from_design, graph_from_machine

    if config.bus in STRUCTURAL_EXCLUDED:
        return []
    spec = build_config_spec(config)
    generated = tool.generate(spec)
    return [
        str(finding)
        for finding in compare_graphs(
            graph_from_design(generated.design()),
            graph_from_machine(build_machine(spec)),
        )
    ]


def _unfinished_pes(machine) -> List[str]:
    return [
        "PE %s did not complete" % name
        for name, pe in sorted(machine.pes.items())
        if pe.finished_at is None
    ]


def _check_protocol(
    config: DseConfig, kernel: str, baseline_cycles: Optional[int] = None
) -> List[str]:
    from ..sim.fabric import build_machine

    spec = build_config_spec(config)
    if baseline_cycles is None:
        # Normally the parity check's run for this kernel is the baseline
        # (monitors are free-when-off, counters never change cycles); only
        # a parity-stage error forces a dedicated bare run here.
        bare = build_machine(spec, kernel=kernel)
        baseline_cycles = simulate_config(config, bare)["cycles"]

    monitored = build_machine(spec, kernel=kernel)
    monitor = monitored.attach_monitors(fail_fast=False)
    metric = simulate_config(config, monitored)
    findings = [str(finding) for finding in monitor.finalize()]
    findings.extend(_unfinished_pes(monitored))
    if metric["cycles"] != baseline_cycles:
        findings.append(
            "monitors perturbed the run (%d cycles != baseline %d)"
            % (metric["cycles"], baseline_cycles)
        )
    return findings


def _check_resilience(
    config: DseConfig, fault_seed: int, fault_scale: int, kernel: str
) -> List[str]:
    from ..faults.injector import RecoveryPolicy, install_faults
    from ..faults.plan import SMOKE_SCENARIO, compile_plan
    from ..sim.fabric import build_machine

    if fault_scale <= 0:
        return []
    scenario = (
        SMOKE_SCENARIO if fault_scale == 1 else SMOKE_SCENARIO.scaled(fault_scale)
    )
    machine = build_machine(build_config_spec(config), kernel=kernel)
    plan = compile_plan(machine, scenario, fault_seed)
    injector = install_faults(machine, plan, RecoveryPolicy())
    simulate_config(config, machine)
    report = injector.resilience_report()
    report.name = config.label()
    return report.check() + _unfinished_pes(machine)


def _check_parity(config: DseConfig) -> Dict[str, Any]:
    from ..sim.fabric import build_machine

    fingerprints: Dict[str, str] = {}
    cycles: Dict[str, int] = {}
    findings: List[str] = []
    for backend in PARITY_BACKENDS:
        try:
            machine = build_machine(build_config_spec(config), kernel=backend)
            machine.attach_counters()
            metric = simulate_config(config, machine)
            fingerprints[backend] = run_fingerprint(config, machine, metric)
            cycles[backend] = metric["cycles"]
        except Exception as error:  # noqa: BLE001 -- deterministic finding
            fingerprints[backend] = None
            findings.extend(
                "%s: %s" % (backend, text) for text in _findings_from_error(error)
            )
    if len(set(fingerprints.values())) > 1:
        findings.append(
            "run fingerprints diverge across backends: %s"
            % ", ".join(
                "%s=%s" % (backend, (value or "error")[:12])
                for backend, value in sorted(fingerprints.items())
            )
        )
    return {"fingerprints": fingerprints, "cycles": cycles, "findings": findings}


def evaluate_case(
    case: Dict[str, Any], kernel: str = "heap", tool: Optional[BusSyn] = None
) -> Dict[str, Any]:
    """Run the full oracle stack on one case; returns its verdict dict.

    ``kernel`` drives the protocol and resilience checks (the parity
    check always runs all of :data:`PARITY_BACKENDS`).  ``tool`` lets a
    shard worker share one store-backed :class:`BusSyn` across cases.
    """
    config = DseConfig.from_options(case["options"])
    tool = tool or BusSyn()
    checks: Dict[str, List[str]] = {}

    try:
        checks["structural"] = _check_structural(config, tool)
    except Exception as error:  # noqa: BLE001 -- deterministic finding
        checks["structural"] = _findings_from_error(error)
    try:
        parity = _check_parity(config)
    except Exception as error:  # noqa: BLE001
        parity = {"fingerprints": {}, "cycles": {}, "findings": _findings_from_error(error)}
    checks["parity"] = parity["findings"]
    try:
        checks["protocol"] = _check_protocol(
            config, kernel, baseline_cycles=parity["cycles"].get(kernel)
        )
    except Exception as error:  # noqa: BLE001
        checks["protocol"] = _findings_from_error(error)
    try:
        checks["resilience"] = _check_resilience(
            config, case["fault_seed"], case["fault_scale"], kernel
        )
    except Exception as error:  # noqa: BLE001
        checks["resilience"] = _findings_from_error(error)

    failed = sorted(name for name, findings in checks.items() if findings)
    return {
        "oracle_version": ORACLE_VERSION,
        "key": case.get("key") or oracle_cache_key(case),
        "options": case["options"],
        "fault_seed": case["fault_seed"],
        "fault_scale": case["fault_scale"],
        "label": config.label(),
        "ok": not failed,
        "failed_checks": failed,
        "checks": checks,
        "fingerprints": parity["fingerprints"],
    }
