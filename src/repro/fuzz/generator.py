"""Seeded sampling of random *legal* option sets.

The sampler draws raw dimension combinations from a :class:`FuzzProfile`
and funnels every draw through :func:`repro.dse.spec.normalize_options`
-- the same normalization + skip-reason legality the DSE queue uses -- so
every emitted case is canonical, deduplicated, and guaranteed buildable.
Illegal draws are not errors: they are counted per skip reason (the same
reason vocabulary as ``repro dse``) and surface in the fuzz summary and
ledger record, so coverage holes in the sampled space stay visible.

A case is a :class:`DseConfig` option surface plus two fuzz-only
dimensions: the fault-plan seed and the fault *scale* (how many smoke
scenarios worth of faults the oracle arms -- 0 means no plan, which is
what the shrinker reduces toward when faults are irrelevant to a
finding).  Sampling is pure ``random.Random("fuzz:<seed>")``: the same
seed always yields the same case list, byte for byte, which is what makes
``repro fuzz`` re-runs cache-hit for free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.ledger import content_hash
from ..dse.spec import DseConfig, normalize_options

__all__ = ["FuzzProfile", "case_key", "sample_cases"]

#: Draws per requested case before the sampler gives up.  Profiles whose
#: dimension pools are mostly-legal never get near this; it only guards
#: against a pathological profile (e.g. PPA-only at 2 PEs) spinning.
MAX_DRAW_FACTOR = 64


@dataclass(frozen=True)
class FuzzProfile:
    """The sampled design space: one value pool per dimension.

    CCBA is deliberately absent from the default bus pool -- its machine
    abstraction diverges from the generated netlist by design
    (docs/verification.md), so the structural oracle would flag every
    CCBA draw as a false positive.
    """

    buses: Tuple[str, ...] = (
        "BFBA",
        "GBAVI",
        "GBAVII",
        "GBAVIII",
        "HYBRID",
        "SPLITBA",
        "GGBA",
    )
    pes: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
    data_widths: Tuple[int, ...] = (32, 64, 128)
    fifo_depths: Tuple[int, ...] = (4, 16, 64, 256, 1024)
    arbiter_policies: Tuple[str, ...] = ("fcfs", "round_robin", "priority")
    styles: Tuple[str, ...] = ("PPA", "FPA", "auto")
    packets: Tuple[int, ...] = (1, 2)
    fault_scales: Tuple[int, ...] = (1, 2)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buses": list(self.buses),
            "pes": list(self.pes),
            "data_widths": list(self.data_widths),
            "fifo_depths": list(self.fifo_depths),
            "arbiter_policies": list(self.arbiter_policies),
            "styles": list(self.styles),
            "packets": list(self.packets),
            "fault_scales": list(self.fault_scales),
        }

    def hash(self) -> str:
        return content_hash(self.as_dict())[:12]


def case_key(case: Dict[str, Any]) -> str:
    """Content hash identifying one fuzz case (cache + corpus + dedup key)."""
    return content_hash(
        {
            "options": case["options"],
            "fault_seed": case["fault_seed"],
            "fault_scale": case["fault_scale"],
        }
    )


def _draw_raw(rng: random.Random, profile: FuzzProfile) -> Dict[str, Any]:
    """One raw (pre-normalization) dimension combination."""
    pes = rng.choice(profile.pes)
    return {
        "bus": rng.choice(profile.buses),
        "pes": pes,
        # SplitBA is the only multi-subsystem family; normalize_options
        # ignores the axis everywhere else, so an unconditional draw keeps
        # the rng stream identical across buses (stable replay).
        "subsystems": rng.randint(1, max(1, pes)),
        "data_width": rng.choice(profile.data_widths),
        "fifo_depth": rng.choice(profile.fifo_depths),
        "arbiter_policy": rng.choice(profile.arbiter_policies),
        "app": "ofdm",
        "style": rng.choice(profile.styles),
        "packets": rng.choice(profile.packets),
    }


def sample_cases(
    seed: int,
    budget: int,
    profile: Optional[FuzzProfile] = None,
) -> Tuple[List[Dict[str, Any]], Dict[str, int], int]:
    """Sample ``budget`` unique legal cases; returns (cases, skipped, draws).

    ``skipped`` counts illegal draws per normalization skip reason;
    ``draws`` is the total number of raw combinations pulled (so the
    legal-density of the profile is measurable).  Duplicate draws (two
    raws normalizing onto one canonical config + fault tuple) count under
    the pseudo-reason ``"duplicate"``.
    """
    profile = profile or FuzzProfile()
    rng = random.Random("fuzz:%d" % seed)
    cases: List[Dict[str, Any]] = []
    seen: set = set()
    skipped: Dict[str, int] = {}
    draws = 0
    limit = budget * MAX_DRAW_FACTOR
    while len(cases) < budget and draws < limit:
        draws += 1
        raw = _draw_raw(rng, profile)
        fault_seed = rng.randrange(2**32)
        fault_scale = rng.choice(profile.fault_scales)
        config, reason = normalize_options(raw)
        if config is None:
            skipped[reason] = skipped.get(reason, 0) + 1
            continue
        case = {
            "options": config.options(),
            "fault_seed": fault_seed,
            "fault_scale": fault_scale,
        }
        key = case_key(case)
        if key in seen:
            skipped["duplicate"] = skipped.get("duplicate", 0) + 1
            continue
        seen.add(key)
        case["key"] = key
        cases.append(case)
    return cases, skipped, draws
