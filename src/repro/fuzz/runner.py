"""The fuzz loop: corpus replay, budgeted sweep, shrink, corpus write.

``run_fuzz`` is what ``repro fuzz --budget N --seed S --jobs J`` drives:

1. **Corpus replay** -- every checked-in entry is re-judged *fresh* (the
   artifact cache is deliberately bypassed on reads here: a cached
   verdict predates the current working tree, and the whole point of
   replay is to judge today's code).  An ``open`` entry passing means the
   bug got fixed (flip its status); a ``fixed`` entry failing is a
   regression.
2. **Budgeted sweep** -- ``budget`` unique legal cases sampled from the
   seeded generator, sharded by case hash over the experiment process
   pool (same discipline as ``repro dse``), each judged by the composed
   oracle with verdicts memoized in the artifact cache (kind ``"fuzz"``,
   keyed by case + oracle version -- a re-run of the same seed is all
   cache hits).
3. **Shrink + corpus** -- every failing case is greedily shrunk in the
   parent process (shrink steps share the cache-backed evaluator), and
   each *new* minimal repro is written to the corpus; a minimal case
   whose file already exists is reported as known, never overwritten
   (so a triaged ``fixed`` entry cannot be silently re-opened).

The summary's hashed surface -- sampled cases, skip counters, replay
outcomes, verdict rows, findings with full shrink traces -- is
bit-identical across ``--jobs`` values, scheduler backends and cache
states; everything wall-clock or cache-dependent sits under
ledger-scrubbed keys, exactly like the DSE sweep.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.busyn import BusSyn
from ..dse.cache import DEFAULT_CACHE_DIR, ArtifactCache
from ..dse.engine import shard_of
from ..experiments.runner import run_cases
from ..obs.ledger import content_hash, scrub_timings
from .corpus import DEFAULT_CORPUS_DIR, build_entry, load_corpus, write_entry
from .generator import FuzzProfile, sample_cases
from .oracle import ORACLE_VERSION, evaluate_case, oracle_cache_key
from .shrink import shrink_case

__all__ = [
    "run_fuzz",
    "run_fuzz_shard",
    "shrink_fuzz_case",
    "replay_corpus",
    "fuzz_fingerprint",
    "format_fuzz_lines",
]


def _cached_evaluator(
    cache: Optional[ArtifactCache],
    kernel: str,
    tool: Optional[BusSyn] = None,
    use_cache: bool = True,
) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    tool = tool or BusSyn(store=cache)

    def evaluate(case: Dict[str, Any]) -> Dict[str, Any]:
        key = oracle_cache_key(case)
        if cache is not None and use_cache:
            stored = cache.get_json("fuzz", key)
            if stored is not None:
                return stored
        verdict = evaluate_case(case, kernel=kernel, tool=tool)
        if cache is not None:
            cache.put_json("fuzz", key, verdict)
        return verdict

    return evaluate


def run_fuzz_shard(
    shard: Tuple[int, List[Dict[str, Any]]],
    cache_dir: Optional[str] = None,
    kernel: str = "heap",
    use_cache: bool = True,
) -> Dict[str, Any]:
    """Judge one shard of cases (module-level: pool-worker addressable)."""
    shard_index, cases = shard
    cache = ArtifactCache(cache_dir) if cache_dir else None
    tool = BusSyn(store=cache)
    verdicts: List[Dict[str, Any]] = []
    hits = 0
    start = time.perf_counter()
    for case in cases:
        key = oracle_cache_key(case)
        if cache is not None and use_cache:
            stored = cache.get_json("fuzz", key)
            if stored is not None:
                verdicts.append(stored)
                hits += 1
                continue
        verdict = evaluate_case(case, kernel=kernel, tool=tool)
        if cache is not None:
            cache.put_json("fuzz", key, verdict)
        verdicts.append(verdict)
    return {
        "shard": shard_index,
        "cases": len(cases),
        "hits": hits,
        "misses": len(cases) - hits,
        "seconds": time.perf_counter() - start,
        "verdicts": verdicts,
    }


def shrink_fuzz_case(
    payload: Dict[str, Any],
    cache_dir: Optional[str] = None,
    kernel: str = "heap",
    use_cache: bool = True,
) -> Dict[str, Any]:
    """Shrink one failing case (module-level: pool-worker addressable).

    ``payload`` is ``{"case": ..., "verdict": ...}``; shrink-step verdicts
    go through the shared artifact cache, so concurrent shrinks that
    converge onto the same minimal config share their candidate
    evaluations.
    """
    cache = ArtifactCache(cache_dir) if cache_dir else None
    evaluate = _cached_evaluator(cache, kernel, use_cache=use_cache)
    return shrink_case(
        payload["case"], verdict=payload["verdict"], evaluate=evaluate, kernel=kernel
    )


def replay_corpus(
    corpus_dir: str,
    kernel: str = "heap",
    cache: Optional[ArtifactCache] = None,
    tool: Optional[BusSyn] = None,
) -> Dict[str, Any]:
    """Re-judge every corpus entry against the current tree.

    Cache reads are bypassed (fresh verdicts only -- see module
    docstring); fresh verdicts are still *written* so the sweep benefits.
    """
    evaluate = _cached_evaluator(cache, kernel, tool=tool, use_cache=False)
    rows: List[Dict[str, Any]] = []
    regressions = 0
    fixed = 0
    for entry in load_corpus(corpus_dir):
        verdict = evaluate(entry["case"])
        expected_fail = entry["status"] == "open"
        stable = verdict["ok"] != expected_fail
        if not stable:
            if entry["status"] == "fixed":
                regressions += 1
            else:
                fixed += 1
        rows.append(
            {
                "file": entry["file"],
                "key": entry["key"],
                "status": entry["status"],
                "label": verdict["label"],
                "ok": verdict["ok"],
                "failed_checks": verdict["failed_checks"],
                "stable": stable,
            }
        )
    return {
        "entries": len(rows),
        "stable": sum(1 for row in rows if row["stable"]),
        "regressions": regressions,
        "now_fixed": fixed,
        "rows": rows,
    }


def run_fuzz(
    seed: int,
    budget: int,
    jobs: int = 1,
    kernel: str = "heap",
    profile: Optional[FuzzProfile] = None,
    corpus_dir: str = DEFAULT_CORPUS_DIR,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    write_findings: bool = True,
    progress=None,
) -> Dict[str, Any]:
    """Run the full fuzz loop; returns the summary dict.

    ``write_findings=False`` leaves the corpus untouched (dry-run mode
    for tests and triage).  Exit-status policy lives in the CLI: any
    replay instability or new finding is a nonzero exit there, not an
    exception here.
    """
    profile = profile or FuzzProfile()
    start = time.perf_counter()
    cache = ArtifactCache(cache_dir) if cache_dir else None

    replay = replay_corpus(corpus_dir, kernel=kernel, cache=cache)
    if progress and replay["entries"]:
        progress(
            "corpus replay: %d entr(ies), %d stable, %d regression(s), %d now fixed"
            % (
                replay["entries"],
                replay["stable"],
                replay["regressions"],
                replay["now_fixed"],
            )
        )

    cases, skipped, draws = sample_cases(seed, budget, profile)
    if progress:
        progress(
            "fuzz seed %d: %d case(s) sampled from %d draw(s) (%d skipped), "
            "kernel=%s, cache=%s"
            % (
                seed,
                len(cases),
                draws,
                sum(skipped.values()),
                kernel,
                cache_dir if (cache_dir and use_cache) else "off",
            )
        )

    shards = max(1, min(jobs, len(cases))) if cases else 1
    buckets: List[List[Dict[str, Any]]] = [[] for _ in range(shards)]
    for case in cases:
        buckets[shard_of(case["key"], shards)].append(case)
    shard_results, _telemetry = run_cases(
        run_fuzz_shard,
        [(index, bucket) for index, bucket in enumerate(buckets)],
        jobs=jobs,
        kwargs={"cache_dir": cache_dir, "kernel": kernel, "use_cache": use_cache},
    )
    verdicts = [v for shard in shard_results for v in shard["verdicts"]]
    verdicts.sort(key=lambda verdict: verdict["key"])
    failures = [verdict for verdict in verdicts if not verdict["ok"]]

    # One shrink per failure *signature* (bus + failing-check set), not per
    # failing case: a systemic bug fails dozens of sampled configs, and
    # shrinking each one converges onto the same minimal repro anyway.
    # The representative is the lexically-smallest case key (deterministic
    # across jobs/backends); the other members ride along in the finding.
    groups: Dict[Tuple[str, Tuple[str, ...]], List[Dict[str, Any]]] = {}
    for verdict in failures:
        signature = (verdict["options"]["bus"], tuple(verdict["failed_checks"]))
        groups.setdefault(signature, []).append(verdict)
    representatives = [members[0] for _signature, members in sorted(groups.items())]
    if progress and representatives:
        progress(
            "%d failing case(s) in %d signature group(s): shrinking..."
            % (len(failures), len(representatives))
        )
    payloads = [
        {
            "case": {
                "options": verdict["options"],
                "fault_seed": verdict["fault_seed"],
                "fault_scale": verdict["fault_scale"],
                "key": verdict["key"],
            },
            "verdict": verdict,
        }
        for verdict in representatives
    ]
    shrink_results, _shrink_telemetry = run_cases(
        shrink_fuzz_case,
        payloads,
        jobs=jobs,
        kwargs={"cache_dir": cache_dir, "kernel": kernel, "use_cache": use_cache},
    )

    known_keys = {entry["key"] for entry in load_corpus(corpus_dir)}
    findings: List[Dict[str, Any]] = []
    for (signature, members), payload, shrunk in zip(
        sorted(groups.items()), payloads, shrink_results
    ):
        minimal_key = shrunk["case"]["key"]
        new = minimal_key not in known_keys
        finding = {
            "original_key": payload["case"]["key"],
            "original_label": payload["verdict"]["label"],
            "members": [member["key"] for member in members],
            "key": minimal_key,
            "label": shrunk["verdict"]["label"],
            "failed_checks": shrunk["verdict"]["failed_checks"],
            "new": new,
            "case": shrunk["case"],
            "verdict": shrunk["verdict"],
            "shrink": {
                "adopted": shrunk["adopted"],
                "evaluations": shrunk["evaluations"],
                "illegal_skipped": shrunk["illegal_skipped"],
                "exhausted": shrunk["exhausted"],
                "trace": shrunk["trace"],
            },
        }
        if new and write_findings:
            entry = build_entry(
                shrunk,
                original_case=payload["case"],
                found_by={
                    "seed": seed,
                    "budget": budget,
                    "profile": profile.hash(),
                    "oracle_version": ORACLE_VERSION,
                },
            )
            finding["file"] = write_entry(entry, corpus_dir)
            known_keys.add(minimal_key)
        findings.append(finding)
        if progress:
            progress(
                "  %s/%s -> %s %s (%d member(s), %d step(s), %d eval(s), "
                "%d illegal skipped)"
                % (
                    signature[0],
                    "+".join(signature[1]),
                    "NEW" if new else "known",
                    minimal_key[:12],
                    len(members),
                    shrunk["adopted"],
                    shrunk["evaluations"],
                    shrunk["illegal_skipped"],
                )
            )

    hits = sum(shard["hits"] for shard in shard_results)
    misses = sum(shard["misses"] for shard in shard_results)
    lookups = hits + misses
    seconds = time.perf_counter() - start
    return {
        "seed": seed,
        "budget": budget,
        "kernel": kernel,
        "oracle_version": ORACLE_VERSION,
        "profile": profile.as_dict(),
        "profile_hash": profile.hash(),
        "draws": draws,
        "sampled": len(cases),
        "skipped": skipped,
        "replay": replay,
        "results": [
            {
                "key": verdict["key"],
                "label": verdict["label"],
                "ok": verdict["ok"],
                "failed_checks": verdict["failed_checks"],
            }
            for verdict in verdicts
        ],
        "failures": len(failures),
        "findings": findings,
        "new_findings": sum(1 for finding in findings if finding["new"]),
        # Nondeterministic tail (ledger-scrubbed keys).
        "seconds": seconds,
        "configs_per_sec": (len(cases) / seconds) if seconds > 0 else 0.0,
        "cache_stats": {
            "enabled": bool(cache_dir and use_cache),
            "dir": cache_dir,
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / lookups) if lookups else 0.0,
        },
        "shard_stats": {
            "jobs": jobs,
            "shards": [
                {
                    "shard": shard["shard"],
                    "cases": shard["cases"],
                    "hits": shard["hits"],
                    "misses": shard["misses"],
                    "seconds": shard["seconds"],
                }
                for shard in shard_results
            ],
        },
    }


def fuzz_fingerprint(summary: Dict[str, Any]) -> str:
    """Content hash of a fuzz summary's deterministic surface.

    Covers the sampled queue, skip counters, replay outcomes, every
    verdict row and every finding (shrink trace included); excludes the
    backend label (verdicts are backend-invariant -- the parity oracle
    enforces it) and all ledger-scrubbed wall-clock / cache-state keys.
    Equal fingerprints across ``--jobs``, kernels and cold/warm caches
    are the determinism contract (docs/fuzzing.md).
    """
    surface = {
        key: summary[key]
        for key in (
            "seed",
            "budget",
            "oracle_version",
            "profile_hash",
            "draws",
            "sampled",
            "skipped",
            "replay",
            "results",
            "failures",
            "findings",
            "new_findings",
        )
    }
    return content_hash(scrub_timings(surface))


def format_fuzz_lines(summary: Dict[str, Any]) -> List[str]:
    """Human-readable fuzz outcome for the CLI."""
    lines: List[str] = []
    cache_stats = summary["cache_stats"]
    lines.append(
        "seed %d: %d case(s) from %d draw(s) in %.2f s, cache %s: "
        "%d hit(s) / %d miss(es)"
        % (
            summary["seed"],
            summary["sampled"],
            summary["draws"],
            summary["seconds"],
            "on" if cache_stats["enabled"] else "off",
            cache_stats["hits"],
            cache_stats["misses"],
        )
    )
    if summary["skipped"]:
        lines.append(
            "illegal draws: "
            + ", ".join(
                "%s=%d" % (reason, count)
                for reason, count in sorted(summary["skipped"].items())
            )
        )
    replay = summary["replay"]
    if replay["entries"]:
        lines.append(
            "corpus replay: %d entr(ies), %d stable, %d regression(s), %d now fixed"
            % (
                replay["entries"],
                replay["stable"],
                replay["regressions"],
                replay["now_fixed"],
            )
        )
        for row in replay["rows"]:
            if not row["stable"]:
                verdict = "REGRESSION" if row["status"] == "fixed" else "now fixed"
                lines.append(
                    "  %s %s (%s): %s" % (row["file"], row["label"], row["status"], verdict)
                )
    else:
        lines.append("corpus replay: empty corpus")
    if summary["failures"]:
        lines.append(
            "%d failing case(s) in %d signature group(s), %d new finding(s):"
            % (summary["failures"], len(summary["findings"]), summary["new_findings"])
        )
        for finding in summary["findings"]:
            lines.append(
                "  %s %s %s [%s] (%d case(s), shrunk from %s in %d step(s))"
                % (
                    "NEW" if finding["new"] else "known",
                    finding["key"][:12],
                    finding["label"],
                    ", ".join(finding["failed_checks"]),
                    len(finding["members"]),
                    finding["original_label"],
                    finding["shrink"]["adopted"],
                )
            )
    else:
        lines.append("no failing cases")
    lines.append("fingerprint %s" % fuzz_fingerprint(summary)[:16])
    return lines
