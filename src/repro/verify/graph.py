"""Connectivity graphs for netlist<->fabric equivalence checking.

The generated Verilog (:mod:`repro.core`) and the simulation machine
(:mod:`repro.sim.fabric`) are two elaborations of the same
:class:`~repro.options.schema.BusSystemSpec`; this module abstracts each
into a :class:`FabricGraph` -- bus segments with their masters, memories
and arbiters, the bridges joining segments, and the point-to-point
FIFO/handshake links of the BFBA family -- so the two can be compared
key-for-key by :mod:`repro.verify.equiv`.

Canonical segment identity is the *master set*: a segment is named
``seg(<sorted master PE names>)`` on both sides, which survives the naming
differences between the RTL (nets like ``w_sa_1``/``sub_addr``) and the
machine (``CPU_BUS_A``/``GLOBAL_BUS_SUB1``).  GBAVII's global segment has
no direct masters (PEs reach it over bridges) and keys as ``seg()``.

Netlist extraction walks the real module hierarchy pin by pin -- the CPU's
address/data buses into the CBI, the CBI/MBI bundles onto a segment's
wires, the MBI's SRAM pins into the memory, the arbiter's REQ/GNT pair
through the ABI onto the shared bus -- so a single dropped or misrouted
wire in the generated Verilog surfaces as a typed :class:`Finding`, not as
a silently different graph.

Known modelled divergence: CCBA's machine flattens every memory onto one
PLB segment while the netlist keeps per-BAN structure; CCBA is therefore
outside this checker's supported set (see docs/verification.md).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hdl.ast import Design, Instance, Module
from .findings import Finding

__all__ = ["SegmentNode", "FabricGraph", "graph_from_machine", "graph_from_design"]


_ARBITER_RE = re.compile(r"^arbiter_([a-z_]+)_n(\d+)$")
_ABI_RE = re.compile(r"^abi_n(\d+)_g(\d+)$")
_SRAM_RE = re.compile(r"^sram_aw(\d+)(?:_w\d+)?$")
_BIFIFO_RE = re.compile(r"^bififo_d(\d+)(?:_w\d+)?$")

# Chain (point-to-point) link pins of the BFBA family: the ``_up`` pin of
# one BAN and the ``_dn`` pin of its successor share a subsystem wire.
_FIFO_CHAIN = ("fifo_cs_up", "fifo_cs_dn")
_HS_CHAIN = ("done_op_cs_up", "done_op_cs_dn")


@dataclass
class SegmentNode:
    """One arbitrated bus segment, abstracted from either elaboration."""

    origin: str  # machine segment name / netlist net name (for messages)
    masters: set = field(default_factory=set)  # PE names
    memories: List[int] = field(default_factory=list)  # word counts
    hs_count: int = 0  # bus-addressable handshake blocks
    data_width: Optional[int] = None
    arbiter_policy: Optional[str] = None
    n_masters: Optional[int] = None
    grant_cycles: Optional[int] = None

    @property
    def key(self) -> str:
        return "seg(%s)" % ",".join(sorted(self.masters))

    def describe(self) -> str:
        return "%s [%s]" % (self.key, self.origin)


@dataclass
class FabricGraph:
    origin: str  # 'netlist' | 'machine'
    segments: Dict[str, SegmentNode] = field(default_factory=dict)
    bridges: Counter = field(default_factory=Counter)  # (key_a, key_b) sorted
    fifo_links: Counter = field(default_factory=Counter)  # (pe, pe) sorted
    hs_links: Counter = field(default_factory=Counter)  # (pe, pe) sorted
    fifo_depth_of: Dict[Tuple[str, str], int] = field(default_factory=dict)
    pes: set = field(default_factory=set)
    findings: List[Finding] = field(default_factory=list)

    def _finding(self, where: str, text: str, severity: str = "error") -> None:
        self.findings.append(Finding(severity, "structure", where, text))

    def add_segment(self, node: SegmentNode) -> str:
        # Two segments may legitimately share a master set (a single PE
        # mastering both its local and a shared segment); disambiguate by
        # insertion order, which is deterministic on both sides.
        key = node.key
        if key in self.segments:
            key = "%s#%d" % (key, len(self.segments))
        self.segments[key] = node
        return key


# ----------------------------------------------------------------------
# Machine side
# ----------------------------------------------------------------------


_POLICY_OF_CLASS = {
    "FCFSArbiter": "fcfs",
    "RoundRobinArbiter": "round_robin",
    "PriorityArbiter": "priority",
}


def graph_from_machine(machine) -> FabricGraph:
    """Abstract a freshly built :class:`~repro.sim.fabric.Machine`.

    Use a machine that has not run yet: lazily created devices (the extra
    ``HS_REGS_X_FROM_Y`` register pairs) would otherwise skew link counts.
    """
    graph = FabricGraph("machine")
    graph.pes = set(machine.pes)

    nodes: Dict[str, SegmentNode] = {}
    for name, segment in machine.segments.items():
        masters = {
            pe
            for pe, direct in machine.direct_segments.items()
            if segment in direct
        }
        nodes[name] = SegmentNode(
            origin=name,
            masters=masters,
            data_width=segment.data_width,
            arbiter_policy=_POLICY_OF_CLASS.get(type(segment.arbiter).__name__),
            n_masters=len(masters) if masters else None,
            grant_cycles=segment.grant_cycles,
        )

    for device in machine.devices.values():
        if device.kind == "memory" and device.segment is not None:
            nodes[device.segment.name].memories.append(device.target.size_words)
        elif device.kind == "hsregs":
            if device.point_to_point:
                pair = tuple(sorted(device.parties))
                graph.hs_links[pair] += 1
            elif device.segment is not None:
                nodes[device.segment.name].hs_count += 1
        elif device.kind == "fifo":
            pair = tuple(sorted(device.parties))
            graph.fifo_links[pair] += 1
            graph.fifo_depth_of[pair] = device.target.depth_words

    key_of: Dict[str, str] = {}
    for name, node in nodes.items():
        node.memories.sort()
        key_of[name] = graph.add_segment(node)
    for bridge in machine.bridges:
        pair = tuple(sorted((key_of[bridge.side_a.name], key_of[bridge.side_b.name])))
        graph.bridges[pair] += 1
    return graph


# ----------------------------------------------------------------------
# Netlist side
# ----------------------------------------------------------------------


def _conn_base(instance: Instance, port: str) -> Optional[str]:
    conn = instance.connection(port)
    if conn is None:
        return None
    base = conn.base_signal
    return base or None


@dataclass
class _BanInfo:
    """Per-BAN-module extraction, shared by every instance of the module."""

    kind: str  # 'pe' | 'global' | 'ip'
    cpu: Optional[str] = None
    mem_words: Optional[int] = None
    seg_width: Optional[int] = None
    hs_bus: int = 0
    has_hs_chain: bool = False
    fifo_depth: Optional[int] = None
    masters_global: bool = False
    exports_seg: bool = False
    # global-BAN fields
    policy: Optional[str] = None
    n_masters: Optional[int] = None
    grant_cycles: Optional[int] = None
    findings: List[Finding] = field(default_factory=list)


def _pin_check(
    info: _BanInfo,
    module_name: str,
    label: str,
    left: Optional[str],
    right: Optional[str],
) -> bool:
    """One wire-level connectivity assertion; False (and a finding) on break."""
    if left is None and right is None:
        # Both sides omit the pin (e.g. the dh lane at data_width 32).
        return True
    if left is not None and left == right:
        return True
    info.findings.append(
        Finding(
            "error",
            "structure",
            module_name,
            "%s: pins land on different nets (%r vs %r)" % (label, left, right),
        )
    )
    return False


def _signal_width(module: Module, name: Optional[str]) -> Optional[int]:
    if name is None:
        return None
    return module.signal_width(name)


def _extract_ban(module: Module) -> _BanInfo:
    by_name = {inst.name: inst for inst in module.instances}
    by_kind: Dict[str, List[Instance]] = {}
    for inst in module.instances:
        for kind, pattern in (
            ("arb", _ARBITER_RE),
            ("abi", _ABI_RE),
            ("mem", _SRAM_RE),
            ("fifo", _BIFIFO_RE),
        ):
            if pattern.match(inst.module):
                by_kind.setdefault(kind, []).append(inst)
        if inst.module.startswith("mbi_"):
            by_kind.setdefault("mbi", []).append(inst)
        elif inst.module.startswith("cbi_"):
            by_kind.setdefault("cbi", []).append(inst)
        elif inst.module.startswith("sb_gbaviii_n"):
            by_kind.setdefault("sbg", []).append(inst)
        elif inst.module.startswith("sb_"):
            by_kind.setdefault("sb", []).append(inst)
        elif inst.module.startswith("hs_regs"):
            by_kind.setdefault("hs", []).append(inst)
        elif inst.module.startswith("bb_"):
            by_kind.setdefault("bb", []).append(inst)
        elif inst.module.startswith("gbi_"):
            by_kind.setdefault("gbi", []).append(inst)

    def one(kind: str) -> Optional[Instance]:
        items = by_kind.get(kind)
        return items[0] if items else None

    if one("arb") is not None:
        return _extract_global_ban(module, by_kind)
    if "u_cpu" not in by_name:
        return _BanInfo("ip")  # hardware-IP BAN: no bus structure inside
    return _extract_pe_ban(module, by_name["u_cpu"], by_kind)


def _extract_pe_ban(
    module: Module, cpu: Instance, by_kind: Dict[str, List[Instance]]
) -> _BanInfo:
    info = _BanInfo("pe", cpu=cpu.module.upper())
    name = module.name

    cbi = by_kind.get("cbi", [None])[0]
    if cbi is None:
        info.findings.append(
            Finding("error", "structure", name, "PE BAN has no CPU bus interface (CBI)")
        )
        return info
    # CPU <-> CBI: the processor's address and data buses must land on the
    # same wires on both modules.
    for pin in ("cpu_a", "cpu_d"):
        _pin_check(
            info, name, "CPU.%s <-> CBI.%s" % (pin, pin),
            _conn_base(cpu, pin), _conn_base(cbi, pin),
        )

    # Segment bundles: each SB pins down one {addr, dh, dl} wire bundle.
    sb_bundles = []
    for sb in by_kind.get("sb", []):
        sb_bundles.append(
            {
                "inst": sb,
                "addr": _conn_base(sb, "addr_local"),
                "dh": _conn_base(sb, "dh"),
                "dl": _conn_base(sb, "dl"),
            }
        )

    def attach(inst: Instance, label: str):
        """Locate ``inst``'s {addr,dh,dl} bundle on an SB; pin-check dh/dl."""
        addr = _conn_base(inst, "addr_local")
        for bundle in sb_bundles:
            if bundle["addr"] == addr and addr is not None:
                _pin_check(
                    info, name, "%s.dh on segment %s" % (label, addr),
                    _conn_base(inst, "dh"), bundle["dh"],
                )
                _pin_check(
                    info, name, "%s.dl on segment %s" % (label, addr),
                    _conn_base(inst, "dl"), bundle["dl"],
                )
                return bundle
        info.findings.append(
            Finding(
                "error", "structure", name,
                "%s address bundle %r reaches no bus segment" % (label, addr),
            )
        )
        return None

    cbi_bundle = attach(cbi, "CBI")
    if cbi_bundle is not None:
        dh = _signal_width(module, cbi_bundle["dh"]) or 0
        dl = _signal_width(module, cbi_bundle["dl"]) or 0
        info.seg_width = (dh + dl) or None

    mbi = by_kind.get("mbi", [None])[0]
    mem = by_kind.get("mem", [None])[0]
    if mbi is not None and mem is not None:
        mbi_bundle = attach(mbi, "MBI0")
        if mbi_bundle is not None and cbi_bundle is not None and mbi_bundle is not cbi_bundle:
            # Two SBs (GBAVI's sbc/sbm pair) must be fused by the BAN's
            # internal bus bridge, else CPU and memory sit on disjoint buses.
            fused = any(
                {_conn_base(bb, "a_addr"), _conn_base(bb, "b_addr")}
                == {cbi_bundle["addr"], mbi_bundle["addr"]}
                for bb in by_kind.get("bb", [])
            )
            if not fused:
                info.findings.append(
                    Finding(
                        "error", "structure", name,
                        "CBI (%s) and MBI0 (%s) sit on disjoint segments with "
                        "no internal bridge" % (cbi_bundle["addr"], mbi_bundle["addr"]),
                    )
                )
                mbi_bundle = None
        if mbi_bundle is not None:
            # MBI0 <-> MEM0 over the SRAM pin bundle.
            _pin_check(
                info, name, "MBI0.sram_addr <-> MEM0.sram_addr",
                _conn_base(mbi, "sram_addr"), _conn_base(mem, "sram_addr"),
            )
            _pin_check(
                info, name, "MBI0.sram_dq <-> MEM0.sram_dq",
                _conn_base(mbi, "sram_dq"), _conn_base(mem, "sram_dq"),
            )
            aw = int(_SRAM_RE.match(mem.module).group(1))
            dq = mem.connection("sram_dq")
            dq_width = _signal_width(module, dq.base_signal) if dq else None
            info.mem_words = (1 << aw) * (dq_width or 32) // 32

    for hs in by_kind.get("hs", []):
        hs_def_has_chain = module.port("done_op_cs_dn") is not None and (
            _conn_base(hs, "done_op_cs_dn") == "done_op_cs_dn"
        )
        if hs_def_has_chain:
            info.has_hs_chain = True
        else:
            info.hs_bus += 1

    fifo = by_kind.get("fifo", [None])[0]
    if fifo is not None:
        info.fifo_depth = int(_BIFIFO_RE.match(fifo.module).group(1))
        _pin_check(
            info, name, "FIFO.fifo_cs_dn on BAN chain port",
            _conn_base(fifo, "fifo_cs_dn"), "fifo_cs_dn",
        )

    for gbi in by_kind.get("gbi", []):
        if gbi.connection("g_req_b") is not None:
            # GBI_GBAVIII / GBI_SHARED: this BAN masters a shared bus.
            info.masters_global = True
            _pin_check(
                info, name, "GBI.g_addr on BAN shared-bus port",
                _conn_base(gbi, "g_addr"), "g_addr",
            )
            if cbi_bundle is not None:
                _pin_check(
                    info, name, "GBI.addr_local on CBI segment",
                    _conn_base(gbi, "addr_local"), cbi_bundle["addr"],
                )
        if gbi.connection("seg_addr") is not None:
            # GBI_GBAVI: the BAN's segment is exported for external bridging.
            info.exports_seg = True
            _pin_check(
                info, name, "GBI.seg_addr on BAN segment port",
                _conn_base(gbi, "seg_addr"), "seg_addr",
            )
    return info


def _extract_global_ban(module: Module, by_kind: Dict[str, List[Instance]]) -> _BanInfo:
    info = _BanInfo("global")
    name = module.name
    arb = by_kind["arb"][0]
    match = _ARBITER_RE.match(arb.module)
    info.policy = match.group(1)
    info.n_masters = int(match.group(2))

    abi = by_kind.get("abi", [None])[0]
    if abi is None:
        info.findings.append(
            Finding("error", "structure", name, "global BAN has no ABI")
        )
    else:
        info.grant_cycles = int(_ABI_RE.match(abi.module).group(2))
        # Arbiter <-> ABI request/grant pair.
        _pin_check(
            info, name, "ARB.req_b <-> ABI0.arb_req_b",
            _conn_base(arb, "req_b"), _conn_base(abi, "arb_req_b"),
        )
        _pin_check(
            info, name, "ARB.gnt_b <-> ABI0.arb_gnt_b",
            _conn_base(arb, "gnt_b"), _conn_base(abi, "arb_gnt_b"),
        )

    sbg = by_kind.get("sbg", [None])[0]
    if sbg is None:
        info.findings.append(
            Finding("error", "structure", name, "global BAN has no shared-bus SB")
        )
        return info
    if abi is not None:
        # ABI <-> SB: the bus-side REQ/GNT lines ride the shared segment.
        _pin_check(
            info, name, "ABI0.bus_req_b <-> SBG.req_b",
            _conn_base(abi, "bus_req_b"), _conn_base(sbg, "req_b"),
        )
        _pin_check(
            info, name, "ABI0.bus_gnt_b <-> SBG.gnt_b",
            _conn_base(abi, "bus_gnt_b"), _conn_base(sbg, "gnt_b"),
        )

    dh = _signal_width(module, _conn_base(sbg, "dh")) or 0
    dl = _signal_width(module, _conn_base(sbg, "dl")) or 0
    info.seg_width = (dh + dl) or None

    mbi = by_kind.get("mbi", [None])[0]
    mem = by_kind.get("mem", [None])[0]
    if mbi is not None and mem is not None:
        on_bus = _pin_check(
            info, name, "MBI0.addr_local on shared segment",
            _conn_base(mbi, "addr_local"), _conn_base(sbg, "addr_local"),
        )
        _pin_check(
            info, name, "MBI0.dh on shared segment",
            _conn_base(mbi, "dh"), _conn_base(sbg, "dh"),
        )
        _pin_check(
            info, name, "MBI0.dl on shared segment",
            _conn_base(mbi, "dl"), _conn_base(sbg, "dl"),
        )
        _pin_check(
            info, name, "MBI0.sram_addr <-> MEM0.sram_addr",
            _conn_base(mbi, "sram_addr"), _conn_base(mem, "sram_addr"),
        )
        _pin_check(
            info, name, "MBI0.sram_dq <-> MEM0.sram_dq",
            _conn_base(mbi, "sram_dq"), _conn_base(mem, "sram_dq"),
        )
        if on_bus:
            aw = int(_SRAM_RE.match(mem.module).group(1))
            dq = mem.connection("sram_dq")
            dq_width = _signal_width(module, dq.base_signal) if dq else None
            info.mem_words = (1 << aw) * (dq_width or 32) // 32
    return info


def graph_from_design(design: Design) -> FabricGraph:
    """Abstract an elaborated :class:`~repro.hdl.ast.Design` (whole system)."""
    graph = FabricGraph("netlist")
    if design.top is None:
        graph._finding("<design>", "design has no top module")
        return graph
    top = design.module(design.top)
    info_cache: Dict[str, _BanInfo] = {}

    def ban_info(module_name: str) -> _BanInfo:
        if module_name not in info_cache:
            info = _extract_ban(design.module(module_name))
            info_cache[module_name] = info
            graph.findings.extend(info.findings)
        return info_cache[module_name]

    nodes: List[SegmentNode] = []
    bridge_pairs: List[Tuple[SegmentNode, SegmentNode]] = []
    # (subsystem instance name, EXT port) -> shared node, for system bridges.
    exported_shared: Dict[Tuple[str, str], SegmentNode] = {}

    for sub_inst in top.instances:
        if not sub_inst.module.startswith("subsys_"):
            continue
        sub_mod = design.module(sub_inst.module)
        # net -> segment node reachable for bridging on that net.
        net_node: Dict[str, SegmentNode] = {}
        shared_nodes: Dict[str, SegmentNode] = {}
        # chain wires: net -> {'up'|'dn': (pe, fifo_depth)}
        fifo_chain: Dict[str, Dict[str, Tuple[str, Optional[int]]]] = {}
        hs_chain: Dict[str, Dict[str, str]] = {}
        local_bridges: List[Tuple[Optional[str], Optional[str], str]] = []

        def shared(net: Optional[str], origin: str) -> SegmentNode:
            key = net or "<unconnected>"
            if key not in shared_nodes:
                node = SegmentNode(origin="%s.%s" % (sub_inst.name, origin))
                shared_nodes[key] = node
                nodes.append(node)
                if net is not None:
                    net_node[net] = node
                    if sub_mod.port(net) is not None:
                        exported_shared[(sub_inst.name, net)] = node
            return shared_nodes[key]

        for inst in sub_mod.instances:
            if inst.name.startswith("u_ban_"):
                letter = inst.name[len("u_ban_"):].upper()
                info = ban_info(inst.module)
                if info.kind == "global":
                    net = _conn_base(inst, "g_addr")
                    node = shared(net, net or inst.name)
                    if info.mem_words is not None:
                        node.memories.append(info.mem_words)
                    node.arbiter_policy = info.policy
                    node.n_masters = info.n_masters
                    node.grant_cycles = info.grant_cycles
                    node.data_width = info.seg_width
                    continue
                if info.kind != "pe" or info.cpu is None:
                    continue
                pe = "%s_%s" % (info.cpu, letter)
                graph.pes.add(pe)
                if info.masters_global:
                    net = _conn_base(inst, "g_addr")
                    shared(net, net or inst.name).masters.add(pe)
                if info.mem_words is not None:
                    node = SegmentNode(
                        origin="%s.%s" % (sub_inst.name, inst.name),
                        masters={pe},
                        memories=[info.mem_words],
                        hs_count=info.hs_bus,
                        data_width=info.seg_width,
                    )
                    nodes.append(node)
                    if info.exports_seg:
                        seg_net = _conn_base(inst, "seg_addr")
                        if seg_net is not None:
                            net_node[seg_net] = node
                if info.fifo_depth is not None:
                    up = _conn_base(inst, _FIFO_CHAIN[0])
                    dn = _conn_base(inst, _FIFO_CHAIN[1])
                    if up is not None and sub_mod.port(up) is None:
                        fifo_chain.setdefault(up, {})["up"] = (pe, None)
                    if dn is not None and sub_mod.port(dn) is None:
                        fifo_chain.setdefault(dn, {})["dn"] = (pe, info.fifo_depth)
                if info.has_hs_chain:
                    up = _conn_base(inst, _HS_CHAIN[0])
                    dn = _conn_base(inst, _HS_CHAIN[1])
                    if up is not None and sub_mod.port(up) is None:
                        hs_chain.setdefault(up, {})["up"] = pe
                    if dn is not None and sub_mod.port(dn) is None:
                        hs_chain.setdefault(dn, {})["dn"] = pe
            elif inst.module.startswith("bb_"):
                local_bridges.append(
                    (_conn_base(inst, "a_addr"), _conn_base(inst, "b_addr"), inst.name)
                )

        for net_a, net_b, bb_name in local_bridges:
            node_a = net_node.get(net_a) if net_a else None
            node_b = net_node.get(net_b) if net_b else None
            if node_a is None or node_b is None:
                graph._finding(
                    "%s.%s" % (sub_inst.name, bb_name),
                    "bridge side on net %r reaches no bus segment"
                    % (net_a if node_a is None else net_b),
                )
                continue
            bridge_pairs.append((node_a, node_b))

        for net, ends in sorted(fifo_chain.items()):
            if "up" in ends and "dn" in ends:
                pair = tuple(sorted((ends["up"][0], ends["dn"][0])))
                graph.fifo_links[pair] += 1
                depth = ends["dn"][1]
                if depth is not None:
                    graph.fifo_depth_of[pair] = depth
            else:
                graph._finding(
                    "%s.%s" % (sub_inst.name, net),
                    "FIFO chain wire has only one endpoint (%s)"
                    % ", ".join(sorted(ends)),
                )
        for net, ends in sorted(hs_chain.items()):
            if "up" in ends and "dn" in ends:
                pair = tuple(sorted((ends["up"], ends["dn"])))
                graph.hs_links[pair] += 1
            else:
                graph._finding(
                    "%s.%s" % (sub_inst.name, net),
                    "handshake chain wire has only one endpoint (%s)"
                    % ", ".join(sorted(ends)),
                )

    # System-level bridges between subsystem shared buses (SplitBA).
    for inst in top.instances:
        if inst.module.startswith("subsys_") or not inst.name.startswith("u_bb_sys"):
            continue
        sides: List[Optional[SegmentNode]] = []
        for pin in ("a_addr", "b_addr"):
            net = _conn_base(inst, pin)
            side = None
            if net is not None:
                for sub_inst in top.instances:
                    if not sub_inst.module.startswith("subsys_"):
                        continue
                    conn = sub_inst.connection("sub_addr")
                    if conn is not None and conn.base_signal == net:
                        side = exported_shared.get((sub_inst.name, "sub_addr"))
                        break
            sides.append(side)
        if sides[0] is None or sides[1] is None:
            graph._finding(
                inst.name,
                "system bridge side reaches no subsystem shared bus",
            )
            continue
        bridge_pairs.append((sides[0], sides[1]))

    key_of: Dict[int, str] = {}
    for node in nodes:
        node.memories.sort()
        key_of[id(node)] = graph.add_segment(node)
    for node_a, node_b in bridge_pairs:
        pair = tuple(sorted((key_of[id(node_a)], key_of[id(node_b)])))
        graph.bridges[pair] += 1
    return graph
