"""Structural equivalence between the two :class:`FabricGraph` sides.

Comparison is by canonical segment key (the sorted master set), then
field by field inside each common segment, then over the bridge /
FIFO-link / handshake-link multisets.  Fields one side cannot determine
(``None``) are skipped -- e.g. the machine has no arbiter parameters for
an uncontended local bus, and GBAVII's bridged-only global segment has no
countable masters on either side.
"""

from __future__ import annotations

from typing import List

from .findings import Finding
from .graph import FabricGraph

__all__ = ["compare_graphs"]


def _mismatch(where: str, text: str) -> Finding:
    return Finding("error", "equivalence", where, text)


def compare_graphs(netlist: FabricGraph, machine: FabricGraph) -> List[Finding]:
    """All findings keeping the two elaborations from being equivalent."""
    findings: List[Finding] = []
    findings.extend(netlist.findings)
    findings.extend(machine.findings)

    if netlist.pes != machine.pes:
        findings.append(
            _mismatch(
                "<pes>",
                "PE sets differ: netlist %s vs machine %s"
                % (sorted(netlist.pes), sorted(machine.pes)),
            )
        )

    net_keys = set(netlist.segments)
    mach_keys = set(machine.segments)
    for key in sorted(net_keys - mach_keys):
        findings.append(
            _mismatch(key, "segment exists only in the netlist (%s)"
                      % netlist.segments[key].origin)
        )
    for key in sorted(mach_keys - net_keys):
        findings.append(
            _mismatch(key, "segment exists only in the machine (%s)"
                      % machine.segments[key].origin)
        )

    for key in sorted(net_keys & mach_keys):
        net_seg = netlist.segments[key]
        mach_seg = machine.segments[key]
        where = "%s [netlist %s / machine %s]" % (key, net_seg.origin, mach_seg.origin)
        pairs = [
            ("data width", net_seg.data_width, mach_seg.data_width),
            ("memory words", net_seg.memories, mach_seg.memories),
            ("bus-addressable handshake blocks", net_seg.hs_count, mach_seg.hs_count),
            ("arbiter policy", net_seg.arbiter_policy, mach_seg.arbiter_policy),
            ("arbiter n_masters", net_seg.n_masters, mach_seg.n_masters),
            ("arbiter grant cycles", net_seg.grant_cycles, mach_seg.grant_cycles),
        ]
        for label, net_value, mach_value in pairs:
            if net_value is None or mach_value is None:
                continue  # undeterminable on one side: not comparable
            if net_value != mach_value:
                findings.append(
                    _mismatch(
                        where,
                        "%s differs: netlist %r vs machine %r"
                        % (label, net_value, mach_value),
                    )
                )

    for label, net_counter, mach_counter in (
        ("bridge", netlist.bridges, machine.bridges),
        ("FIFO link", netlist.fifo_links, machine.fifo_links),
        ("handshake link", netlist.hs_links, machine.hs_links),
    ):
        for pair in sorted(set(net_counter) | set(mach_counter)):
            net_count = net_counter.get(pair, 0)
            mach_count = mach_counter.get(pair, 0)
            if net_count != mach_count:
                findings.append(
                    _mismatch(
                        "%s %s" % (label, "<->".join(pair)),
                        "%s count differs: netlist %d vs machine %d"
                        % (label, net_count, mach_count),
                    )
                )

    for pair in sorted(set(netlist.fifo_depth_of) & set(machine.fifo_depth_of)):
        net_depth = netlist.fifo_depth_of[pair]
        mach_depth = machine.fifo_depth_of[pair]
        if net_depth != mach_depth:
            findings.append(
                _mismatch(
                    "FIFO link %s" % "<->".join(pair),
                    "depth differs: netlist %d vs machine %d words"
                    % (net_depth, mach_depth),
                )
            )
    return findings
