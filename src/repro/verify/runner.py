"""The ``repro verify`` sweep: structural equivalence + monitored runs.

For every architecture under test this runs, per scheduler backend:

1. **structural** -- generate the Verilog bus system, abstract both the
   netlist and the simulation machine into :class:`FabricGraph`\\ s, and
   compare them (:func:`repro.verify.equiv.compare_graphs`);
2. **runtime** -- run the OFDM workload twice, once bare and once with
   :class:`~repro.verify.monitors.ProtocolMonitor` attached to every
   arbiter/segment/FIFO/bridge, and require (a) zero protocol findings
   and (b) cycle-identical results, proving the monitors observe without
   perturbing (the free-when-off contract);

then asserts backend parity on cycle counts and on the per-segment
counter-plane totals carried by every case row (the bare run is counted
via :class:`~repro.obs.counters.CounterPlane`, which must also agree
with ``BusStats`` and the arbiters' grant counts in these fault-free
sweeps).  Cases fan out over the
parallel experiment runner, so ``repro verify --jobs N`` sweeps
architectures concurrently with deterministic results.

CCBA is deliberately excluded: its machine abstraction flattens every
BAN's memory onto one processor local bus while the generated netlist
keeps the per-BAN structure, a modelled divergence documented in
docs/verification.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps.ofdm import OfdmParameters, run_ofdm
from ..core.busyn import BusSyn
from ..faults.chaos import CHAOS_STYLES
from ..options import presets
from ..sim.fabric import build_machine
from .equiv import compare_graphs
from .graph import graph_from_design, graph_from_machine

__all__ = [
    "VERIFY_ARCHITECTURES",
    "SMOKE_ARCHITECTURES",
    "run_verify_case",
    "run_verify",
    "format_verify_summary",
]

# Every preset whose machine and netlist elaborate the same structure.
VERIFY_ARCHITECTURES = [
    "BFBA",
    "GBAVI",
    "GBAVII",
    "GBAVIII",
    "HYBRID",
    "SPLITBA",
    "GGBA",
]

# CI's quick pass: one distributed-memory and one shared-memory family
# member, still covering chains/bridges (BFBA) and shared-bus arbitration
# (SPLITBA's two subsystems plus a system bridge).
SMOKE_ARCHITECTURES = ["BFBA", "SPLITBA"]


def run_verify_case(
    case: Tuple[str, str],
    packets: int = 2,
    pe_count: int = 4,
    data_width: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one ``(arch, backend)`` verification case; picklable."""
    arch, backend = case
    style = CHAOS_STYLES.get(arch, "PPA")
    spec = presets.preset(arch, pe_count)
    if data_width is not None:
        # Same width-axis application as the DSE sweep's
        # build_config_spec: the option lands on every bus and memory.
        for subsystem in spec.subsystems:
            for bus in subsystem.buses:
                bus.data_width = data_width
            for ban in subsystem.bans:
                for memory in ban.memories:
                    memory.data_width = data_width
        spec.validate()

    generated = BusSyn().generate(spec)
    structural = [
        str(finding)
        for finding in compare_graphs(
            graph_from_design(generated.design()),
            graph_from_machine(build_machine(spec, kernel=backend)),
        )
    ]

    bare_machine = build_machine(spec, kernel=backend)
    plane = bare_machine.attach_counters()
    baseline = run_ofdm(bare_machine, style, OfdmParameters(packets=packets))
    counter_findings = plane.check_against_stats(bare_machine)
    # Fault-free sweep: every retired tenure is exactly one arbiter grant.
    for name in plane.segment_order:
        granted = bare_machine.segments[name].arbiter.grants
        counted = plane.value(name, "grants")
        if counted != granted:
            counter_findings.append(
                "%s: counter grants %d != arbiter grants %d"
                % (name, counted, granted)
            )

    monitored_machine = build_machine(spec, kernel=backend)
    monitor = monitored_machine.attach_monitors(fail_fast=False)
    monitored = run_ofdm(monitored_machine, style, OfdmParameters(packets=packets))
    runtime = [str(finding) for finding in monitor.finalize()]
    if monitored.cycles != baseline.cycles:
        runtime.append(
            "%s/%s: monitors perturbed the run (%d cycles != baseline %d)"
            % (arch, backend, monitored.cycles, baseline.cycles)
        )

    return {
        "arch": arch,
        "style": style,
        "backend": backend,
        "cycles": baseline.cycles,
        "monitored_cycles": monitored.cycles,
        "throughput_mbps": baseline.throughput_mbps,
        "grants": monitor.grants_observed,
        "transfers": monitor.transfers_opened,
        "counters": plane.totals(),
        "structural_findings": structural,
        "runtime_findings": runtime + counter_findings,
    }


def run_verify(
    archs: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("heap", "wheel"),
    packets: int = 2,
    pe_count: int = 4,
    jobs: int = 1,
    data_width: Optional[int] = None,
) -> Dict[str, Any]:
    """Sweep the verification matrix; returns a JSON-able summary."""
    from ..experiments.runner import run_cases

    archs = [str(arch).upper() for arch in (archs or VERIFY_ARCHITECTURES)]
    for arch in archs:
        if arch not in presets.PRESETS:
            # OptionError -> exit 2 in the CLI, with the did-you-mean
            # candidate list (core/netlist.py style), not a traceback.
            from ..core.netlist import _did_you_mean
            from ..options.schema import OptionError

            known = sorted(presets.PRESETS)
            raise OptionError(
                "unknown architecture %r%s; known architectures: %s"
                % (arch, _did_you_mean(arch, known), ", ".join(known))
            )
    cases = [(arch, backend) for arch in archs for backend in backends]
    results, _telemetry = run_cases(
        run_verify_case,
        cases,
        jobs=jobs,
        kwargs={"packets": packets, "pe_count": pe_count, "data_width": data_width},
    )
    by_key = {(row["arch"], row["backend"]): row for row in results}
    failures: List[str] = []
    for arch in archs:
        for backend in backends:
            row = by_key[(arch, backend)]
            failures.extend(
                "%s/%s structural: %s" % (arch, backend, text)
                for text in row["structural_findings"]
            )
            failures.extend(
                "%s/%s runtime: %s" % (arch, backend, text)
                for text in row["runtime_findings"]
            )
        reference = by_key[(arch, backends[0])]
        for backend in backends[1:]:
            other = by_key[(arch, backend)]
            if other["cycles"] != reference["cycles"]:
                failures.append(
                    "%s: cycles diverge across backends (%s=%d, %s=%d)"
                    % (
                        arch,
                        backends[0],
                        reference["cycles"],
                        backend,
                        other["cycles"],
                    )
                )
            if other["counters"] != reference["counters"]:
                failures.append(
                    "%s: counter totals diverge between %s and %s"
                    % (arch, backends[0], backend)
                )
    return {
        "packets": packets,
        "pe_count": pe_count,
        "data_width": data_width,
        "backends": list(backends),
        "architectures": archs,
        "cases": results,
        "failures": failures,
        "ok": not failures,
    }


def format_verify_summary(summary: Dict[str, Any]) -> List[str]:
    """Human-readable digest of a :func:`run_verify` summary."""
    width = summary.get("data_width")
    lines = [
        "verify sweep: packets=%d pes=%d backends=%s%s"
        % (
            summary["packets"],
            summary["pe_count"],
            "/".join(summary["backends"]),
            " data_width=%d" % width if width else "",
        )
    ]
    for row in summary["cases"]:
        status = (
            "ok"
            if not (row["structural_findings"] or row["runtime_findings"])
            else "FAIL"
        )
        lines.append(
            "  %-8s %-4s %-5s  %8d cycles  %6d grants  %6d transfers  "
            "structural %d  runtime %d  %s"
            % (
                row["arch"],
                row["style"],
                row["backend"],
                row["cycles"],
                row["grants"],
                row["transfers"],
                len(row["structural_findings"]),
                len(row["runtime_findings"]),
                status,
            )
        )
    if summary["failures"]:
        lines.append("verification FAILURES:")
        lines.extend("  - %s" % failure for failure in summary["failures"])
    else:
        lines.append(
            "netlist and machine are structurally equivalent; all protocol "
            "monitors green and bit-identical to baseline"
        )
    return lines
