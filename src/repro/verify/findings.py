"""Typed findings shared by the equivalence checker and the monitors.

Mirrors :class:`repro.hdl.lint.LintMessage` so tooling that consumes lint
output (reports, CI artifacts) can render verification findings the same
way; adds a ``category`` for machine filtering and an optional offending
``cycle`` for runtime violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Finding"]


@dataclass
class Finding:
    severity: str  # 'error' | 'warning'
    category: str  # e.g. 'structure', 'grant-onehot', 'fifo', 'retire'
    where: str  # segment/module/arbiter the finding anchors to
    text: str
    cycle: Optional[int] = None

    def __str__(self) -> str:
        stamp = " @cycle %d" % self.cycle if self.cycle is not None else ""
        return "[%s] %s (%s)%s: %s" % (
            self.severity,
            self.where,
            self.category,
            stamp,
            self.text,
        )

    def as_dict(self) -> dict:
        return {
            "severity": self.severity,
            "category": self.category,
            "where": self.where,
            "text": self.text,
            "cycle": self.cycle,
        }
