"""Runtime protocol assertion monitors for the simulated bus fabric.

The high-value bus-protocol invariants are small and checkable (the AMBA
formal-specification literature distills essentially the same list):

* **grant one-hot** -- at most one master owns a segment's arbiter at any
  cycle; a second grant while the bus is held is a double grant;
* **REQ held until GNT** -- a queued grant must consume a previously
  asserted request; a request still pending at end of run was starved;
* **FIFO conservation and bounds** -- fill = pushes - pops at all times,
  never below zero (underflow) or above the depth (overflow);
* **bridge forwarding conservation** -- every bridge crossing happens with
  the bridge enabled, with the crossing master holding the grant on both
  attached segments, and every crossing is accounted by a monitored
  transfer;
* **transaction retirement** -- every transfer opened on a segment is
  closed (bus released) by end of run; withdrawals via the fault layer's
  ``Arbiter.cancel`` are accounted, not lost.

Monitors attach through the same NULL-object contract as the tracer and
the fault injector: every model carries a ``monitor`` slot defaulting to
``None``, so an unmonitored run never pays for the hooks and stays
bit-identical to seed.  Monitors only *observe* -- they never yield, never
touch simulation state -- so a monitored run is also bit-identical.

With ``fail_fast=True`` (the default) a violation raises
:class:`ProtocolViolationError` carrying the offending cycle; with
``fail_fast=False`` violations accumulate as :class:`Finding` objects and
:meth:`ProtocolMonitor.finalize` returns them together with end-of-run
checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .findings import Finding

__all__ = ["ProtocolViolationError", "ProtocolMonitor", "attach_monitors"]


class ProtocolViolationError(AssertionError):
    """A bus-protocol invariant failed during simulation."""

    def __init__(self, finding: Finding):
        super().__init__(str(finding))
        self.finding = finding


class ProtocolMonitor:
    """Free-when-off assertion checker attached to arbiters/segments/FIFOs.

    The monitor keeps its *own* shadow of the arbitration state (owner per
    arbiter, pending request counts, FIFO fill), so a model whose internal
    bookkeeping is corrupted -- e.g. an arbiter that overwrites ``owner``
    on a double grant -- is still caught: the shadow state disagrees with
    the sequence of hook events.
    """

    def __init__(self, fail_fast: bool = True):
        self.fail_fast = fail_fast
        self.findings: List[Finding] = []
        # Shadow arbitration state, keyed by model object identity.
        self._owner: Dict[object, Optional[str]] = {}
        self._pending: Dict[object, Dict[str, int]] = {}
        self._fifo_fill: Dict[object, int] = {}
        # (segment name, master) -> currently open transfer count.
        self._open: Dict[Tuple[str, str], int] = {}
        self._bridge_base: Dict[object, int] = {}
        self._bridge_seen: Dict[object, int] = {}
        self.grants_observed = 0
        self.requests_observed = 0
        self.cancels_observed = 0
        self.transfers_opened = 0
        self.transfers_closed = 0

    # -- attachment ------------------------------------------------------
    def watch_arbiter(self, arbiter) -> None:
        arbiter.monitor = self
        self._owner[arbiter] = arbiter.owner
        self._pending.setdefault(arbiter, {})

    def watch_segment(self, segment) -> None:
        segment.monitor = self
        self.watch_arbiter(segment.arbiter)

    def watch_fifo(self, fifo) -> None:
        fifo.monitor = self
        self._fifo_fill[fifo] = fifo.count

    def watch_bridge(self, bridge) -> None:
        bridge.monitor = self
        self._bridge_base[bridge] = bridge.crossings
        self._bridge_seen[bridge] = 0

    # -- violation plumbing ----------------------------------------------
    def _violation(self, category: str, where: str, text: str, cycle: int) -> None:
        finding = Finding("error", category, where, text, cycle=cycle)
        self.findings.append(finding)
        if self.fail_fast:
            raise ProtocolViolationError(finding)

    # -- arbiter hooks ---------------------------------------------------
    def on_request(self, arbiter, master: str) -> None:
        self.requests_observed += 1
        pending = self._pending.setdefault(arbiter, {})
        pending[master] = pending.get(master, 0) + 1

    def on_grant(self, arbiter, master: str, queued: bool) -> None:
        cycle = arbiter.sim.now
        owner = self._owner.get(arbiter)
        if owner is not None:
            self._violation(
                "grant-onehot",
                arbiter.name,
                "granted %r while %r holds the bus (double grant)"
                % (master, owner),
                cycle,
            )
        self._owner[arbiter] = master
        self.grants_observed += 1
        pending = self._pending.setdefault(arbiter, {})
        held = pending.get(master, 0)
        if queued:
            # A dispatched grant must answer a REQ that was asserted and
            # held; granting a master with no outstanding request means a
            # request was dropped or fabricated somewhere.
            if held <= 0:
                self._violation(
                    "req-gnt",
                    arbiter.name,
                    "queued grant to %r without a held REQ" % master,
                    cycle,
                )
            else:
                pending[master] = held - 1
        elif held > 0:
            # Immediate grant with a stale request still queued counts as
            # answering it (REQ and GNT in the same cycle).
            pending[master] = held - 1

    def on_release(self, arbiter, master: str) -> None:
        cycle = arbiter.sim.now
        owner = self._owner.get(arbiter)
        if owner != master:
            self._violation(
                "grant-onehot",
                arbiter.name,
                "released by %r but the monitor observed owner %r"
                % (master, owner),
                cycle,
            )
        self._owner[arbiter] = None

    def on_cancel(self, arbiter, master: str) -> None:
        cycle = arbiter.sim.now
        self.cancels_observed += 1
        pending = self._pending.setdefault(arbiter, {})
        held = pending.get(master, 0)
        if held <= 0:
            self._violation(
                "req-gnt",
                arbiter.name,
                "cancelled a REQ from %r that was never asserted" % master,
                cycle,
            )
        else:
            # Withdrawn by the fault layer's timeout escalation: the
            # request is *accounted*, not silently lost.
            pending[master] = held - 1

    # -- FIFO hooks ------------------------------------------------------
    def on_fifo_push(self, fifo, count: int) -> None:
        cycle = fifo.sim.now
        fill = self._fifo_fill.get(fifo)
        if fill is None:  # attached mid-run: seed from pre-push state
            fill = fifo.count - count
        fill += count
        self._fifo_fill[fifo] = fill
        if fill > fifo.depth_words:
            self._violation(
                "fifo",
                fifo.name,
                "overflow: fill %d exceeds depth %d" % (fill, fifo.depth_words),
                cycle,
            )
        elif fill != fifo.count:
            self._violation(
                "fifo",
                fifo.name,
                "conservation broken: monitor fill %d != hardware count %d"
                % (fill, fifo.count),
                cycle,
            )

    def on_fifo_pop(self, fifo, count: int) -> None:
        cycle = fifo.sim.now
        fill = self._fifo_fill.get(fifo)
        if fill is None:
            fill = fifo.count + count
        fill -= count
        self._fifo_fill[fifo] = fill
        if fill < 0:
            self._violation(
                "fifo",
                fifo.name,
                "underflow: fill went to %d" % fill,
                cycle,
            )
        elif fill != fifo.count:
            self._violation(
                "fifo",
                fifo.name,
                "conservation broken: monitor fill %d != hardware count %d"
                % (fill, fifo.count),
                cycle,
            )

    # -- segment / bridge hooks ------------------------------------------
    def on_transfer_open(self, segment, master: str) -> None:
        cycle = segment.sim.now
        if self._owner.get(segment.arbiter) != master:
            self._violation(
                "retire",
                segment.name,
                "transfer by %r opened without holding the grant" % master,
                cycle,
            )
        key = (segment.name, master)
        self._open[key] = self._open.get(key, 0) + 1
        self.transfers_opened += 1

    def on_transfer_close(self, segment, master: str) -> None:
        cycle = segment.sim.now
        key = (segment.name, master)
        held = self._open.get(key, 0)
        if held <= 0:
            self._violation(
                "retire",
                segment.name,
                "transfer by %r closed but was never opened" % master,
                cycle,
            )
        else:
            self._open[key] = held - 1
        self.transfers_closed += 1

    def on_bridge_cross(self, bridge, master: Optional[str]) -> None:
        cycle = bridge.sim.now
        self._bridge_seen[bridge] = self._bridge_seen.get(bridge, 0) + 1
        if bridge not in self._bridge_base:
            self._bridge_base[bridge] = bridge.crossings - 1
        if not bridge.enabled:
            self._violation(
                "bridge",
                bridge.name,
                "crossing while the bridge is disabled",
                cycle,
            )
        if master is None:
            return
        for side in (bridge.side_a, bridge.side_b):
            if self._owner.get(side.arbiter) != master:
                self._violation(
                    "bridge",
                    bridge.name,
                    "crossing master %r does not hold segment %s"
                    % (master, side.name),
                    cycle,
                )

    # -- end-of-run checks -----------------------------------------------
    def finalize(self, cycle: Optional[int] = None) -> List[Finding]:
        """End-of-run accounting; returns *all* findings (runtime + final)."""
        for (segment_name, master), count in sorted(self._open.items()):
            if count > 0:
                self.findings.append(
                    Finding(
                        "error",
                        "retire",
                        segment_name,
                        "%d transfer(s) by %r issued but never retired"
                        % (count, master),
                        cycle=cycle,
                    )
                )
        for arbiter, owner in self._owner.items():
            if owner is not None:
                self.findings.append(
                    Finding(
                        "error",
                        "grant-onehot",
                        arbiter.name,
                        "still owned by %r at end of run" % owner,
                        cycle=cycle,
                    )
                )
        for arbiter, pending in self._pending.items():
            for master, count in sorted(pending.items()):
                if count > 0:
                    self.findings.append(
                        Finding(
                            "error",
                            "req-gnt",
                            arbiter.name,
                            "%d REQ(s) from %r still held at end of run "
                            "(never granted, never withdrawn)" % (count, master),
                            cycle=cycle,
                        )
                    )
        for bridge, seen in self._bridge_seen.items():
            actual = bridge.crossings - self._bridge_base.get(bridge, 0)
            if actual != seen:
                self.findings.append(
                    Finding(
                        "error",
                        "bridge",
                        bridge.name,
                        "forwarding conservation broken: hardware counted %d "
                        "crossing(s), monitor observed %d" % (actual, seen),
                        cycle=cycle,
                    )
                )
        return self.findings


def attach_monitors(machine, fail_fast: bool = True) -> ProtocolMonitor:
    """Attach one :class:`ProtocolMonitor` to every model of ``machine``."""
    # Monitored transfers must run the generic instrumented paths, not the
    # compiled backend's specialized (hook-free) dispatch.
    machine._despecialize()
    monitor = ProtocolMonitor(fail_fast=fail_fast)
    for segment in machine.segments.values():
        monitor.watch_segment(segment)
    for bridge in machine.bridges:
        monitor.watch_bridge(bridge)
    for device in machine.devices.values():
        if device.kind == "fifo":
            monitor.watch_fifo(device.target.up)
            monitor.watch_fifo(device.target.down)
    machine._monitor = monitor
    return monitor
