"""Cross-layer verification: netlist<->fabric equivalence + protocol monitors.

Two complementary checks tie the generator (:mod:`repro.core`) and the
simulator (:mod:`repro.sim`) together:

* **structural** -- :func:`graph_from_design` and :func:`graph_from_machine`
  abstract both elaborations of a spec into a :class:`FabricGraph`;
  :func:`compare_graphs` reports every structural divergence as a typed
  :class:`Finding`;
* **runtime** -- :class:`ProtocolMonitor` attaches to arbiters, segments,
  FIFOs and bridges through the free-when-off NULL-object contract and
  asserts the bus-protocol invariants (grant one-hot, REQ-until-GNT, FIFO
  conservation/bounds, bridge forwarding conservation, transaction
  retirement) while the workload runs.

:func:`run_verify` sweeps both checks across architectures and scheduler
backends; the ``repro verify`` CLI verb and CI's smoke step drive it.
"""

from .equiv import compare_graphs
from .findings import Finding
from .graph import FabricGraph, SegmentNode, graph_from_design, graph_from_machine
from .monitors import ProtocolMonitor, ProtocolViolationError, attach_monitors
from .runner import (
    SMOKE_ARCHITECTURES,
    VERIFY_ARCHITECTURES,
    format_verify_summary,
    run_verify,
    run_verify_case,
)

__all__ = [
    "Finding",
    "FabricGraph",
    "SegmentNode",
    "graph_from_design",
    "graph_from_machine",
    "compare_graphs",
    "ProtocolMonitor",
    "ProtocolViolationError",
    "attach_monitors",
    "VERIFY_ARCHITECTURES",
    "SMOKE_ARCHITECTURES",
    "run_verify_case",
    "run_verify",
    "format_verify_summary",
]
