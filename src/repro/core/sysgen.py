"""Bus System assembly: subsystems joined through bus bridges.

"A Bus System is also formed by connecting generated Bus Subsystems
through bus bridges (BBs)" -- the split architecture of Figure 7 is the
canonical case: two GBAVIII-style subsystems, one BB_SPLITBA between their
shared buses.  Single-subsystem systems get a thin top wrapper so every
generated design has a uniform top module exposing clk/rst_n.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hdl.ast import Design, Module
from ..moduledb.library import GeneratedModule, ModuleLibrary
from ..options.schema import BusSystemSpec
from ..wiredb.library import WireLibrary
from .bangen import GeneratedBan
from .netlist import NetlistBuilder
from .subsysgen import GeneratedSubsystem, generate_subsystem

__all__ = ["GeneratedSystem", "generate_system"]

def _bridge_bus_pins(side: str, data_width: int):
    """The BB_SPLITBA pins joining one bridge side to a subsystem's shared
    bus, at the bus's lane widths (no dh lane in the 32-bit layout)."""
    lane = data_width // 2 if data_width > 32 else data_width
    pins = [("%s_addr" % side, "sub_addr", 32)]
    if data_width > 32:
        pins.append(("%s_dh" % side, "sub_dh", lane))
    pins += [
        ("%s_dl" % side, "sub_dl", lane),
        ("%s_web" % side, "sub_web", 1),
        ("%s_reb" % side, "sub_reb", 1),
    ]
    return tuple(pins)


@dataclass
class GeneratedSystem:
    spec: BusSystemSpec
    top: Module
    subsystems: Dict[str, GeneratedSubsystem]
    leaves: Dict[str, GeneratedModule]
    bans: Dict[str, GeneratedBan] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.top.name

    def design(self) -> Design:
        """The whole hierarchy as one Design (for emit/lint/elaborate)."""
        design = Design()
        for leaf in self.leaves.values():
            if leaf.name not in design.modules:
                design.add(leaf.module)
        for ban in self.bans.values():
            if ban.name not in design.modules:
                design.add(ban.module)
        for subsystem in self.subsystems.values():
            if subsystem.name not in design.modules:
                design.add(subsystem.module)
        design.add(self.top)
        design.top = self.top.name
        return design


def generate_system(
    module_library: ModuleLibrary,
    wire_library: WireLibrary,
    spec: BusSystemSpec,
) -> GeneratedSystem:
    spec.validate()
    ban_cache: Dict[str, GeneratedBan] = {}
    subsystems: Dict[str, GeneratedSubsystem] = {}
    leaves: Dict[str, GeneratedModule] = {}
    for subsystem_spec in spec.subsystems:
        generated = generate_subsystem(
            module_library, wire_library, subsystem_spec, ban_cache
        )
        subsystems[subsystem_spec.name] = generated
        leaves.update(generated.leaves)

    builder = NetlistBuilder("bus_system_%s" % spec.name.lower())
    for subsystem_spec in spec.subsystems:
        generated = subsystems[subsystem_spec.name]
        builder.add_instance(
            "SUB_%s" % subsystem_spec.name,
            generated.module,
            "u_%s" % subsystem_spec.name.lower(),
        )

    bridges = spec.effective_bridges()
    if bridges:
        data_width = spec.subsystems[0].buses[0].data_width
        bridge_name = (
            "bb_splitba" if data_width == 64 else "bb_splitba_w%d" % data_width
        )
        bridge = module_library.generate(
            "BB_SPLITBA", bridge_name, DATA_WIDTH=data_width
        )
        leaves[bridge.name] = bridge
        pins_a = _bridge_bus_pins("a", data_width)
        pins_b = _bridge_bus_pins("b", data_width)
        for index, (left, right) in enumerate(bridges, start=1):
            logical = "BB_SYS_%d" % index
            builder.add_instance(logical, bridge.module, "u_bb_sys_%d" % index)
            for side, pins in ((left, pins_a), (right, pins_b)):
                side_module = subsystems[side].module
                tag = "" if pins is pins_a else "b"
                for bridge_pin, subsystem_pin, width in pins:
                    if side_module.port(subsystem_pin) is None:
                        # The subsystem exposes no shared bus (a pure BFBA
                        # pipeline); the bridge pin is left for the user to
                        # wire (it surfaces as a top-level port).
                        continue
                    builder.connect(
                        "w_br%d%s_%s" % (index, tag, subsystem_pin),
                        width,
                        [
                            (logical, bridge_pin, width - 1, 0),
                            ("SUB_%s" % side, subsystem_pin, width - 1, 0),
                        ],
                    )

    top = builder.build()
    system = GeneratedSystem(spec, top, subsystems, leaves)
    for subsystem in subsystems.values():
        system.bans.update(subsystem.bans)
    return system
