"""Bus System assembly: subsystems joined through bus bridges.

"A Bus System is also formed by connecting generated Bus Subsystems
through bus bridges (BBs)" -- the split architecture of Figure 7 is the
canonical case: two GBAVIII-style subsystems, one BB_SPLITBA between their
shared buses.  Single-subsystem systems get a thin top wrapper so every
generated design has a uniform top module exposing clk/rst_n.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hdl.ast import Design, Module
from ..moduledb.library import GeneratedModule, ModuleLibrary
from ..options.schema import BusSystemSpec
from ..wiredb.library import WireLibrary
from .bangen import GeneratedBan
from .netlist import NetlistBuilder
from .subsysgen import GeneratedSubsystem, generate_subsystem

__all__ = ["GeneratedSystem", "generate_system"]

_BRIDGE_BUS_PINS = (
    ("a_addr", "sub_addr", 32),
    ("a_dh", "sub_dh", 32),
    ("a_dl", "sub_dl", 32),
    ("a_web", "sub_web", 1),
    ("a_reb", "sub_reb", 1),
)
_BRIDGE_BUS_PINS_B = (
    ("b_addr", "sub_addr", 32),
    ("b_dh", "sub_dh", 32),
    ("b_dl", "sub_dl", 32),
    ("b_web", "sub_web", 1),
    ("b_reb", "sub_reb", 1),
)


@dataclass
class GeneratedSystem:
    spec: BusSystemSpec
    top: Module
    subsystems: Dict[str, GeneratedSubsystem]
    leaves: Dict[str, GeneratedModule]
    bans: Dict[str, GeneratedBan] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.top.name

    def design(self) -> Design:
        """The whole hierarchy as one Design (for emit/lint/elaborate)."""
        design = Design()
        for leaf in self.leaves.values():
            if leaf.name not in design.modules:
                design.add(leaf.module)
        for ban in self.bans.values():
            if ban.name not in design.modules:
                design.add(ban.module)
        for subsystem in self.subsystems.values():
            if subsystem.name not in design.modules:
                design.add(subsystem.module)
        design.add(self.top)
        design.top = self.top.name
        return design


def generate_system(
    module_library: ModuleLibrary,
    wire_library: WireLibrary,
    spec: BusSystemSpec,
) -> GeneratedSystem:
    spec.validate()
    ban_cache: Dict[str, GeneratedBan] = {}
    subsystems: Dict[str, GeneratedSubsystem] = {}
    leaves: Dict[str, GeneratedModule] = {}
    for subsystem_spec in spec.subsystems:
        generated = generate_subsystem(
            module_library, wire_library, subsystem_spec, ban_cache
        )
        subsystems[subsystem_spec.name] = generated
        leaves.update(generated.leaves)

    builder = NetlistBuilder("bus_system_%s" % spec.name.lower())
    for subsystem_spec in spec.subsystems:
        generated = subsystems[subsystem_spec.name]
        builder.add_instance(
            "SUB_%s" % subsystem_spec.name,
            generated.module,
            "u_%s" % subsystem_spec.name.lower(),
        )

    bridges = spec.effective_bridges()
    if bridges:
        bridge = module_library.generate("BB_SPLITBA", "bb_splitba")
        leaves[bridge.name] = bridge
        for index, (left, right) in enumerate(bridges, start=1):
            logical = "BB_SYS_%d" % index
            builder.add_instance(logical, bridge.module, "u_bb_sys_%d" % index)
            for side, pins in ((left, _BRIDGE_BUS_PINS), (right, _BRIDGE_BUS_PINS_B)):
                side_module = subsystems[side].module
                tag = "" if pins is _BRIDGE_BUS_PINS else "b"
                for bridge_pin, subsystem_pin, width in pins:
                    if side_module.port(subsystem_pin) is None:
                        # The subsystem exposes no shared bus (a pure BFBA
                        # pipeline); the bridge pin is left for the user to
                        # wire (it surfaces as a top-level port).
                        continue
                    builder.connect(
                        "w_br%d%s_%s" % (index, tag, subsystem_pin),
                        width,
                        [
                            (logical, bridge_pin, width - 1, 0),
                            ("SUB_%s" % side, subsystem_pin, width - 1, 0),
                        ],
                    )

    top = builder.build()
    system = GeneratedSystem(spec, top, subsystems, leaves)
    for subsystem in subsystems.values():
        system.bans.update(subsystem.bans)
    return system
