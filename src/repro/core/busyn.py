"""BusSyn: the bus synthesis tool (Figure 18's generation sequence).

``BusSyn.generate(spec)`` runs the whole flow -- Module extraction and
generation, BAN integration, Bus Subsystem generation, Bus System assembly
-- and returns a :class:`GeneratedBusSystem` carrying:

* the synthesizable Verilog (one file per module plus a combined file),
* the parsed design hierarchy (for lint/elaboration),
* the generation report: wall-clock generation time in milliseconds and
  the NAND2 gate estimate (the two columns of Table V),
* a hook building the matching cycle-level simulation machine.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..hdl.ast import Design
from ..hdl.emitter import emit_design, emit_module
from ..hdl.lint import LintMessage, lint_design
from ..moduledb.library import ModuleLibrary, default_library
from ..options.schema import BusSystemSpec
from ..wiredb.library import WireLibrary, default_wire_library
from .gatecount import count_system_gates, gate_report
from .sysgen import GeneratedSystem, generate_system

__all__ = ["GenerationReport", "GeneratedBusSystem", "BusSyn", "GENERATOR_VERSION"]

#: Bump whenever the generation stack's output changes for an unchanged
#: spec (template edits, wire-section layout changes, naming schemes).
#: The shared-store key mixes this in so stale pickled systems from an
#: older generator are never served for the same spec.
GENERATOR_VERSION = 2


@dataclass
class GenerationReport:
    """Table V's two measures for one generated Bus System."""

    bus_system: str
    pe_count: int
    generation_time_ms: float
    gate_count: int
    gate_breakdown: Dict[str, int] = field(default_factory=dict)

    def row(self) -> str:
        return "%-10s %3d PEs  %8.1f ms  %8d gates" % (
            self.bus_system,
            self.pe_count,
            self.generation_time_ms,
            self.gate_count,
        )


@dataclass
class GeneratedBusSystem:
    spec: BusSystemSpec
    system: GeneratedSystem
    report: GenerationReport

    @property
    def top_name(self) -> str:
        return self.system.name

    def design(self) -> Design:
        return self.system.design()

    def verilog(self) -> str:
        """The whole Bus System as one synthesizable Verilog text."""
        return emit_design(self.design())

    def files(self) -> Dict[str, str]:
        """One ``<module>.v`` text per module in the hierarchy."""
        design = self.design()
        return {
            "%s.v" % name: emit_module(module)
            for name, module in design.modules.items()
        }

    def lint(self) -> List[LintMessage]:
        return lint_design(self.design())

    def lint_errors(self) -> List[LintMessage]:
        return [message for message in self.lint() if message.severity == "error"]

    def build_machine(self, **kwargs):
        """The simulation twin of this generated system."""
        from ..sim.fabric import build_machine

        return build_machine(self.spec, **kwargs)

    def testbench(self, cycles: int = 1000) -> str:
        """A simple co-simulation harness for the generated top module.

        The paper drove generated systems under Seamless CVE/VCS; this emits
        the equivalent stand-alone stimulus: clock generation, an active-low
        reset pulse, every other top-level input tied low, and a bounded
        ``$finish``.  The text parses back through :mod:`repro.hdl.parser`.
        """
        top = self.design().modules[self.top_name]
        lines = [
            "module tb_%s();" % top.name,
            "  reg clk;",
            "  reg rst_n;",
        ]
        stimulus_regs = {"clk", "rst_n"}
        wires = []
        connections = []
        for port in top.ports:
            if port.name in stimulus_regs:
                connections.append("    .%s(%s)" % (port.name, port.name))
                continue
            range_text = "[%d:0] " % (port.width - 1) if port.width > 1 else ""
            if port.direction == "input":
                lines.append("  reg %s%s;" % (range_text, port.name))
            else:
                wires.append("  wire %s%s;" % (range_text, port.name))
            connections.append("    .%s(%s)" % (port.name, port.name))
        lines.extend(wires)
        lines.append("  %s u_dut (" % top.name)
        lines.append(",\n".join(connections))
        lines.append("  );")
        lines.append("  always begin")
        lines.append("    clk = 1'b0;")
        lines.append("    #5;")
        lines.append("    clk = 1'b1;")
        lines.append("    #5;")
        lines.append("  end")
        lines.append("  initial begin")
        lines.append("    rst_n = 1'b0;")
        for port in top.ports:
            if port.direction == "input" and port.name not in stimulus_regs:
                lines.append("    %s = %d'b0;" % (port.name, port.width))
        lines.append("    #100;")
        lines.append("    rst_n = 1'b1;")
        lines.append("    #%d;" % (cycles * 10))
        lines.append("    $finish;")
        lines.append("  end")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"


class BusSyn:
    """The bus synthesis tool: libraries in, Verilog out, in seconds.

    Generation is deterministic in the spec (and the libraries), so results
    are cached at two levels, both keyed by the spec:

    * an in-process **memo** per tool instance (keyed by :meth:`spec_key`),
      which returns the *original* :class:`GeneratedBusSystem` object --
      including its first-run ``generation_time_ms`` -- which is what
      repeated-measurement harnesses want;
    * an optional shared **store** (``store=``), any object with
      ``get_object(kind, key)`` / ``put_object(kind, key, payload)`` --
      in practice the content-addressed :class:`~repro.dse.cache.ArtifactCache`
      under ``.repro/dse/`` -- which persists pickled generated systems
      across tool instances *and across processes*, keyed by
      :meth:`spec_hash`.  DSE sweep workers all share one store, so a spec
      is generated once per fleet rather than once per worker.

    Pass ``cache=False`` to bypass **both** levels and time every
    generation afresh (the Table V measurement path does this).
    """

    #: Store namespace for generated systems.
    STORE_KIND = "busyn"

    def __init__(
        self,
        module_library: Optional[ModuleLibrary] = None,
        wire_library: Optional[WireLibrary] = None,
        cache: bool = True,
        store: Optional[Any] = None,
    ):
        self.module_library = module_library or default_library()
        self.wire_library = wire_library or default_wire_library()
        self._cache: Optional[Dict[str, GeneratedBusSystem]] = {} if cache else None
        self._store = store if cache else None
        self.memo_hits = 0
        self.store_hits = 0
        self.generations = 0

    @staticmethod
    def spec_key(spec: BusSystemSpec) -> str:
        """In-process memo key: the dataclass repr is complete and stable."""
        return repr(spec)

    @staticmethod
    def spec_hash(spec: BusSystemSpec) -> str:
        """Content hash of the spec (the shared-store key): SHA-256 over the
        canonical JSON of the spec's dataclass fields plus the generator
        version, so a generator change invalidates stored systems."""
        from ..obs.ledger import canonical_json, content_hash

        payload = {
            "generator": GENERATOR_VERSION,
            "spec": dataclasses.asdict(spec),
        }
        return content_hash(canonical_json(payload))

    def generate(self, spec: BusSystemSpec) -> GeneratedBusSystem:
        """Generate the Bus System described by the user options."""
        cache = self._cache
        key = None
        if cache is not None:
            key = self.spec_key(spec)
            hit = cache.get(key)
            if hit is not None:
                self.memo_hits += 1
                return hit
            if self._store is not None:
                stored = self._store.get_object(self.STORE_KIND, self.spec_hash(spec))
                if stored is not None:
                    self.store_hits += 1
                    cache[key] = stored
                    return stored
        start = time.perf_counter()
        system = generate_system(self.module_library, self.wire_library, spec)
        gates = count_system_gates(system)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        report = GenerationReport(
            bus_system=spec.name,
            pe_count=spec.pe_count,
            generation_time_ms=elapsed_ms,
            gate_count=gates,
            gate_breakdown=gate_report(system),
        )
        generated = GeneratedBusSystem(spec, system, report)
        self.generations += 1
        if cache is not None:
            cache[key] = generated
            if self._store is not None:
                self._store.put_object(self.STORE_KIND, self.spec_hash(spec), generated)
        return generated
