"""NAND2-equivalent gate estimation (Table V).

The paper synthesized the generated bus logic with Design Compiler against
the LEDA TSMC 0.25um standard-cell library and reported NAND2 counts.  Our
substitute is a structural estimator: each Module Library component has a
gate formula in terms of its parameters (register bits at ~7 NAND2 per
flop, mux/driver terms per data-path bit, FSM overheads), calibrated so the
4-PE presets land near the paper's Table V column.  Two conventions match
the paper's accounting:

* PE cores are IP, not bus logic -- zero;
* memory *storage* arrays (SRAM/DRAM macros, Bi-FIFO storage) are macros,
  not synthesized gates -- only their controllers count.
"""

from __future__ import annotations

from typing import Dict

from ..hdl.ast import Design
from .sysgen import GeneratedSystem

__all__ = ["estimate_component", "count_system_gates", "gate_report"]

_FLOP = 7  # NAND2 equivalents per register bit
_MUX = 3  # per 2:1 mux bit / tri-state driver pair


def estimate_component(component: str, parameters: Dict[str, object]) -> int:
    """NAND2 estimate for one generated leaf module."""
    n = int(parameters.get("N_MASTERS", 4) or 4)
    addr = int(parameters.get("ADDR_WIDTH", 32) or 32)
    pointer = int(parameters.get("PTR_WIDTH", 11) or 11)
    data = int(parameters.get("DATA_WIDTH", 64) or 64)

    if component in ("MPC750", "MPC755", "MPC7410", "ARM9TDMI"):
        return 0  # IP core, not bus logic
    if component in ("SRAM_comp", "DRAM_comp"):
        return 0  # memory macro
    if component in ("DCT_IP", "MPEG2_IP"):
        return 0  # hardware IP core (not bus logic)
    if component == "IPIF":
        return 200
    if component.startswith("CBI_"):
        # Address/data registers + decode + FSM + TA/interrupt path.
        return addr * _FLOP // 4 + data * _MUX // 2 + 90
    if component == "MBI_SRAM":
        return data * _MUX // 2 + 60
    if component == "MBI_DRAM":
        return data * _MUX // 2 + 120
    if component.startswith("SB_"):
        # Bus keepers hold the data lanes; control overhead is flat.
        return 8 + data // 2 + (8 * n if component == "SB_GBAVIII" else 0)
    if component == "BB_GBAVI":
        # Pass-gate pairs on addr + data + {web, reb} control.
        return (addr + data + 2) * 1 - 8
    if component == "BB_SPLITBA":
        return (addr + data + 2) * 1 + 150  # plus the request/grant exchange FSM
    if component == "ARBITER_FCFS":
        return 220 + 45 * n  # grant register + FIFO of requester ids
    if component == "ARBITER_ROUND_ROBIN":
        return 180 + 40 * n
    if component == "ARBITER_PRIORITY":
        return 120 + 30 * n
    if component == "ABI":
        return 90 + 25 * n
    if component == "GBI_GBAVIII":
        # Full two-bus master: posted-write/read buffers, burst counters,
        # request FSM -- the dominant per-PE term of GBAVIII in Table V.
        return 1200
    if component == "GBI_GBAVI":
        return 160
    if component == "GBI_BFBA":
        return 110
    if component == "GBI_SHARED":
        return 180
    if component == "HS_REGS":
        return 70
    if component == "HS_REGS_GBAVI":
        return 90
    if component == "BIFIFO":
        # Controller only: pointers, fill counter, threshold compare, irq,
        # plus the tri-state drivers on the bus-side data lanes.
        return 24 + data * _MUX // 2 + 2 * pointer * _FLOP
    return 100  # unknown user component: conservative default


def count_system_gates(system: GeneratedSystem) -> int:
    """Total NAND2 estimate over the elaborated hierarchy."""
    from ..hdl.lint import elaborate

    design: Design = system.design()
    counts = elaborate(design)
    leaf_cost = {
        name: estimate_component(leaf.component, leaf.parameters)
        for name, leaf in system.leaves.items()
    }
    total = 0
    for module_name, instance_count in counts.items():
        total += leaf_cost.get(module_name, 0) * instance_count
    return total


def gate_report(system: GeneratedSystem) -> Dict[str, int]:
    """Per-leaf breakdown: module name -> total gates contributed."""
    from ..hdl.lint import elaborate

    counts = elaborate(system.design())
    report = {}
    for name, leaf in system.leaves.items():
        if name in counts:
            report[name] = estimate_component(leaf.component, leaf.parameters) * counts[name]
    return report
