"""SubSysGen: Bus Subsystem generation (Figure 20).

Instantiates the generated BANs according to the Bus Subsystem Property and
wires them together: Step 1 reads the subsystem's wire section (generated
for the BAN-name list, including Example 8's ``BAN[A,B,C,D]`` chain
entries), Step 2 reads each generated BAN's port list, Step 3 matches them,
and Step 4 writes the subsystem Verilog.  GBAVI additionally instantiates
the bus bridges that segment its global bus (BB_2/BB_4/... of Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hdl.ast import Module
from ..moduledb.library import GeneratedModule, ModuleLibrary
from ..options.schema import BusSubsystemSpec, OptionError
from ..wiredb.library import WireLibrary, expand_chain
from ..wiredb.model import Endpoint, WireSpec
from .bangen import BanPlan, GeneratedBan, generate_ban, plan_ban
from .netlist import EXT, NetlistBuilder

__all__ = ["GeneratedSubsystem", "subsystem_kind", "generate_subsystem"]


@dataclass
class GeneratedSubsystem:
    spec: BusSubsystemSpec
    module: Module
    bans: Dict[str, GeneratedBan]  # BAN-module name -> generated BAN
    leaves: Dict[str, GeneratedModule]  # leaf module name -> generated leaf
    ban_of_letter: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.module.name


def subsystem_kind(spec: BusSubsystemSpec) -> str:
    bus_types = {bus.bus_type for bus in spec.buses}
    mapping = {
        frozenset(["BFBA"]): "bfba",
        frozenset(["GBAVI"]): "gbavi",
        frozenset(["GBAVII"]): "gbavii",
        frozenset(["GBAVIII"]): "gbaviii",
        frozenset(["BFBA", "GBAVIII"]): "hybrid",
        frozenset(["SPLITBA"]): "splitba",
        frozenset(["GGBA"]): "ggba",
        frozenset(["CCBA"]): "ccba",
    }
    try:
        return mapping[frozenset(bus_types)]
    except KeyError:
        raise OptionError(
            "subsystem %s: unsupported bus combination %s" % (spec.name, sorted(bus_types))
        )


def _resolve_bit(value, member_index: int) -> int:
    return member_index if value == "@" else int(value)


def generate_subsystem(
    module_library: ModuleLibrary,
    wire_library: WireLibrary,
    spec: BusSubsystemSpec,
    ban_cache: Dict[str, GeneratedBan] = None,
) -> GeneratedSubsystem:
    kind = subsystem_kind(spec)
    ban_cache = ban_cache if ban_cache is not None else {}
    builder = NetlistBuilder("subsys_%s" % spec.name.lower())
    bans: Dict[str, GeneratedBan] = {}
    leaves: Dict[str, GeneratedModule] = {}
    ban_of_letter: Dict[str, str] = {}
    pe_letters = [ban.name for ban in spec.pe_bans]
    n_masters = len(pe_letters)
    data_width = spec.buses[0].data_width

    # Generate / reuse BANs and instantiate them (generated BANs repeat --
    # section IV.A's scalable structure).
    for ban_spec in spec.bans:
        plan: BanPlan = plan_ban(ban_spec, spec)
        if plan.module_name not in ban_cache:
            ban_cache[plan.module_name] = generate_ban(
                module_library, wire_library, plan, n_masters=n_masters
            )
        generated = ban_cache[plan.module_name]
        bans[generated.name] = generated
        leaves.update(generated.leaves)
        ban_of_letter[ban_spec.name] = generated.name
        builder.add_instance(
            "BAN_%s" % ban_spec.name, generated.module, "u_ban_%s" % ban_spec.name.lower()
        )

    # GBAVI: bus bridges between adjacent segments (ring when > 2 BANs).
    # GBAVII closes the ring through the global-memory BAN instead.
    if kind in ("gbavi", "gbavii"):
        if kind == "gbavi":
            bridge_count = n_masters if n_masters > 2 else max(1, n_masters - 1)
        else:
            bridge_count = (n_masters - 1) + (2 if n_masters > 1 else 1)
        bridge_name = "bb_gbavi" if data_width == 64 else "bb_gbavi_w%d" % data_width
        bridge = module_library.generate(
            "BB_GBAVI", bridge_name, DATA_WIDTH=data_width
        )
        leaves[bridge.name] = bridge
        for index in range(1, bridge_count + 1):
            builder.add_instance("BB_%d" % index, bridge.module, "u_bb_%d" % index)

    global_letters = [ban.name for ban in spec.global_bans]
    section = wire_library.subsystem_section(
        kind,
        pe_letters,
        global_letters[0] if global_letters else "G",
        data_width=data_width,
    )

    for wire_spec in section.specs:
        _apply_spec(builder, wire_spec)

    # Hardware-IP attachments: the dedicated wires of Example 8's BAN FFT
    # (w_fft_ad, w_fft_data, ... between the host BAN's IPIF pins and the
    # IP BAN's buffer port).
    for ip_ban in spec.ip_bans:
        host = "BAN_%s" % ip_ban.ip_attach
        ip_inst = "BAN_%s" % ip_ban.name
        tag = ip_ban.name.lower()
        buf_width = 12
        builder.connect(
            "w_%s_ad" % tag, buf_width,
            [(host, "addr_b", buf_width - 1, 0), (ip_inst, "addr_ip", buf_width - 1, 0)],
        )
        builder.connect(
            "w_%s_data" % tag, 64,
            [(host, "data_b", 63, 0), (ip_inst, "data_ip", 63, 0)],
        )
        for suffix in ("web", "reb", "srt", "ack"):
            builder.connect(
                "w_%s_%s" % (tag, suffix), 1,
                [
                    (host, "%s_b" % suffix, 0, 0),
                    (ip_inst, "%s_ip" % suffix, 0, 0),
                ],
            )

    module = builder.build()
    return GeneratedSubsystem(spec, module, bans, leaves, ban_of_letter)


def _apply_spec(builder: NetlistBuilder, spec: WireSpec) -> None:
    if (
        spec.end1.is_group
        and spec.end2.is_group
        and spec.end1.group_members == spec.end2.group_members
        and len(spec.end1.group_members) == 1
    ):
        # A chain with a single member has no neighbour to link to; the
        # BAN's link pins stay unconnected (a 1-PE BFBA system).
        return
    if spec.is_chain:
        for wire_name, upstream, downstream in expand_chain(spec):
            builder.connect(
                wire_name,
                spec.width,
                [
                    (upstream.module, upstream.port, int(upstream.wire_msb), int(upstream.wire_lsb)),
                    (
                        downstream.module,
                        downstream.port,
                        int(downstream.wire_msb),
                        int(downstream.wire_lsb),
                    ),
                ],
            )
        return
    if spec.end1.is_group or spec.end2.is_group:
        group_end = spec.end1 if spec.end1.is_group else spec.end2
        other_end = spec.end2 if spec.end1.is_group else spec.end1
        for index, member in enumerate(group_end.group_members):
            taps = [
                (
                    group_end.member_name(member),
                    group_end.port,
                    _resolve_bit(group_end.wire_msb, index),
                    _resolve_bit(group_end.wire_lsb, index),
                ),
                (
                    other_end.module,
                    other_end.port,
                    _resolve_bit(other_end.wire_msb, index),
                    _resolve_bit(other_end.wire_lsb, index),
                ),
            ]
            builder.connect(spec.name, spec.width, taps)
        return
    builder.connect(
        spec.name,
        spec.width,
        [
            (spec.end1.module, spec.end1.port, int(spec.end1.wire_msb), int(spec.end1.wire_lsb)),
            (spec.end2.module, spec.end2.port, int(spec.end2.wire_msb), int(spec.end2.wire_lsb)),
        ],
    )
