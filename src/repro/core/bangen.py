"""BANGen: Bus Access Node generation (Figure 19).

The five steps of the paper's pseudo code map onto this module as:

1. *extract or generate RTL for each module* -- :func:`plan_ban` decides
   the module list from the user options; the Module Library expands each
   into concrete Verilog;
2. *read wire information* -- the Wire Library section for the BAN kind;
3. *read port information from each module* -- the parsed templates carry
   their port lists;
4. *compare wire and port information* -- :class:`NetlistBuilder` matches
   endpoints against ports and determines the BAN's exact I/O ports;
5. *instantiate and write Verilog* -- the builder emits the BAN module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hdl.ast import Module
from ..moduledb.library import GeneratedModule, ModuleLibrary
from ..options.schema import BANSpec, BusSpec, BusSubsystemSpec, OptionError
from ..wiredb.library import WireLibrary
from ..wiredb.model import WireGroup
from .netlist import NetlistBuilder

__all__ = ["BanKind", "ModulePlan", "BanPlan", "GeneratedBan", "plan_ban", "generate_ban"]


class BanKind:
    BFBA = "bfba"
    GBAVI = "gbavi"
    GBAVIII = "gbaviii"
    HYBRID = "hybrid"
    SPLITBA = "splitba"
    GLOBAL = "global"
    IPCORE = "ipcore"


@dataclass
class ModulePlan:
    """One module to extract/generate: Step 1 inputs."""

    logical: str  # name the wire specs use (CPU, CBI, MBI0, ...)
    component: str  # Module Library component
    module_name: str  # emitted Verilog module name
    instance_name: str
    parameters: Dict[str, object] = field(default_factory=dict)


@dataclass
class BanPlan:
    kind: str
    module_name: str
    modules: List[ModulePlan]
    wire_section_kind: str
    mem_address_width: int
    with_ip_port: bool = False
    data_width: int = 64
    mem_data_width: int = 64


@dataclass
class GeneratedBan:
    plan: BanPlan
    module: Module  # the BAN's own module
    leaves: Dict[str, GeneratedModule]  # module name -> generated leaf

    @property
    def name(self) -> str:
        return self.module.name


def ban_kind(ban: BANSpec, subsystem: BusSubsystemSpec) -> str:
    """Classify a BAN by the subsystem's bus mix and its own resources."""
    if ban.is_global_resource:
        return BanKind.GLOBAL
    if ban.non_cpu_type != "NONE":
        return BanKind.IPCORE
    bus_types = {bus.bus_type for bus in subsystem.buses}
    if bus_types == {"BFBA"}:
        return BanKind.BFBA
    if bus_types == {"GBAVI"} or bus_types == {"GBAVII"}:
        return BanKind.GBAVI
    if bus_types == {"BFBA", "GBAVIII"}:
        return BanKind.HYBRID
    if bus_types & {"GBAVIII", "CCBA", "SPLITBA", "GGBA"}:
        return BanKind.GBAVIII if ban.memories else BanKind.SPLITBA
    raise OptionError(
        "cannot classify BAN %s under bus mix {%s}; supported mixes are "
        "{BFBA}, {GBAVI}, {GBAVII}, {BFBA, GBAVIII}, or any mix including "
        "one of GBAVIII/CCBA/SPLITBA/GGBA"
        % (ban.name, ", ".join(sorted(bus_types)) or "<empty>")
    )


def _memory_width(ban: BANSpec) -> int:
    return ban.memories[0].address_width if ban.memories else 20


def _memory_data_width(ban: BANSpec) -> int:
    return ban.memories[0].data_width if ban.memories else 64


def _wsuffix(data_width: int) -> str:
    """Module-name suffix distinguishing non-default data widths; empty at
    the paper's 64-bit default so those netlists stay byte-identical."""
    return "" if data_width == 64 else "_w%d" % data_width


def plan_ban(ban: BANSpec, subsystem: BusSubsystemSpec) -> BanPlan:
    """Decide the module list for one BAN (Step 1)."""
    kind = ban_kind(ban, subsystem)
    if kind == BanKind.GLOBAL:
        return _plan_global_ban(ban, subsystem)
    if kind == BanKind.IPCORE:
        component = "%s_IP" % ban.non_cpu_type
        return BanPlan(
            BanKind.IPCORE,
            "ban_ip_%s" % ban.non_cpu_type.lower(),
            [ModulePlan("IP", component, component.lower(), "u_ip")],
            BanKind.IPCORE,
            0,
        )
    hosts_ip = any(ip.ip_attach == ban.name for ip in subsystem.ip_bans)
    cpu = ban.cpu_type
    mem_aw = _memory_width(ban)
    mem_dw = _memory_data_width(ban)
    bus = subsystem.buses[0]
    data_width = bus.data_width
    ws = _wsuffix(data_width)
    mem_ws = _wsuffix(mem_dw)
    fifo_bus = subsystem.bus_of_type("BFBA")
    fifo_depth = fifo_bus.fifo_depth if fifo_bus else 1024
    cpu_lower = cpu.lower()

    modules: List[ModulePlan] = [
        ModulePlan("CPU", cpu, cpu_lower, "u_cpu"),
        ModulePlan(
            "CBI",
            "CBI_%s" % cpu,
            "cbi_%s%s" % (cpu_lower, ws),
            "u_cbi",
            {"DATA_WIDTH": data_width},
        ),
    ]
    mem_modules = [
        ModulePlan(
            "MBI0",
            "MBI_SRAM",
            "mbi_sram_aw%d%s%s" % (mem_aw, ws, mem_ws and "_m%d" % mem_dw),
            "u_mbi0",
            {
                "MEM_A_WIDTH": mem_aw,
                "MEM_D_WIDTH": mem_dw,
                "BIT_DIFFERENCE": max(0, data_width - mem_dw),
                "DATA_WIDTH": data_width,
            },
        ),
        ModulePlan(
            "MEM0",
            "SRAM_comp",
            "sram_aw%d%s" % (mem_aw, mem_ws),
            "u_mem0",
            {"MEM_A_WIDTH": mem_aw, "MEM_D_WIDTH": mem_dw},
        ),
    ]
    hs_fifo = [
        ModulePlan(
            "HS",
            "HS_REGS",
            "hs_regs_bfba%s" % ws,
            "u_hs",
            {"OP_RESET": "1'b1", "DATA_WIDTH": data_width},  # Example 4's initial conditions
        ),
        ModulePlan(
            "FIFO",
            "BIFIFO",
            "bififo_d%d%s" % (fifo_depth, ws),
            "u_fifo",
            {"FIFO_DEPTH": fifo_depth, "DATA_WIDTH": data_width},
        ),
    ]

    dw_params = {"DATA_WIDTH": data_width}
    if kind == BanKind.BFBA:
        modules += [ModulePlan("SB", "SB_BFBA", "sb_bfba%s" % ws, "u_sb", dict(dw_params))]
        modules += mem_modules + hs_fifo
        modules += [ModulePlan("GBI", "GBI_BFBA", "gbi_bfba%s" % ws, "u_gbi", dict(dw_params))]
        name = "ban_bfba_%s_aw%d_d%d%s" % (cpu_lower, mem_aw, fifo_depth, ws)
    elif kind == BanKind.GBAVI:
        modules += [
            ModulePlan("SBC", "SB_GBAVI", "sb_gbavi%s" % ws, "u_sbc", dict(dw_params)),
            ModulePlan("SBM", "SB_GBAVI", "sb_gbavi%s" % ws, "u_sbm", dict(dw_params)),
        ]
        modules += mem_modules
        modules += [
            ModulePlan("HS", "HS_REGS_GBAVI", "hs_regs_gbavi%s" % ws, "u_hs", dict(dw_params)),
            ModulePlan("BB", "BB_GBAVI", "bb_gbavi%s" % ws, "u_bb", dict(dw_params)),
            ModulePlan("GBI", "GBI_GBAVI", "gbi_gbavi%s" % ws, "u_gbi", dict(dw_params)),
        ]
        name = "ban_gbavi_%s_aw%d%s" % (cpu_lower, mem_aw, ws)
    elif kind == BanKind.GBAVIII:
        modules += [ModulePlan("SB", "SB_GBAVI", "sb_gbavi%s" % ws, "u_sb", dict(dw_params))]
        modules += mem_modules
        modules += [
            ModulePlan("GBI", "GBI_GBAVIII", "gbi_gbaviii%s" % ws, "u_gbi", dict(dw_params))
        ]
        name = "ban_gbaviii_%s_aw%d%s" % (cpu_lower, mem_aw, ws)
    elif kind == BanKind.HYBRID:
        modules += [ModulePlan("SB", "SB_BFBA", "sb_bfba%s" % ws, "u_sb", dict(dw_params))]
        modules += mem_modules + hs_fifo
        modules += [
            ModulePlan("GBI", "GBI_BFBA", "gbi_bfba%s" % ws, "u_gbi", dict(dw_params)),
            ModulePlan(
                "GGBI", "GBI_GBAVIII", "gbi_gbaviii%s" % ws, "u_ggbi", dict(dw_params)
            ),
        ]
        name = "ban_hybrid_%s_aw%d_d%d%s" % (cpu_lower, mem_aw, fifo_depth, ws)
    elif kind == BanKind.SPLITBA:
        # Figure 7: the PE's CBI sits directly on the shared bus; the thin
        # GBI_SHARED only adds the request line and the bus drivers.
        modules += [
            ModulePlan("SB", "SB_GBAVI", "sb_gbavi%s" % ws, "u_sb", dict(dw_params)),
            ModulePlan("GBI", "GBI_SHARED", "gbi_shared%s" % ws, "u_gbi", dict(dw_params)),
        ]
        name = "ban_shared_%s%s" % (cpu_lower, ws)
    else:  # pragma: no cover - classified above
        raise OptionError("unhandled BAN kind %r" % kind)
    plan = BanPlan(kind, name, modules, kind, mem_aw, data_width=data_width, mem_data_width=mem_dw)
    if hosts_ip:
        if kind == BanKind.GBAVI:
            raise OptionError(
                "BAN %s: IP attachments are not supported on GBAVI BANs" % ban.name
            )
        modules.append(
            ModulePlan("IPIF", "IPIF", "ipif%s" % ws, "u_ipif", dict(dw_params))
        )
        plan.module_name = name + "_ip"
        plan.with_ip_port = True
    return plan


def _plan_global_ban(ban: BANSpec, subsystem: BusSubsystemSpec) -> BanPlan:
    bus = subsystem.buses[-1]
    n_masters = len(subsystem.pe_bans)
    mem_aw = _memory_width(ban)
    mem_dw = _memory_data_width(ban)
    data_width = bus.data_width
    ws = _wsuffix(data_width)
    mem_ws = _wsuffix(mem_dw)
    policy = (bus.arbiter_policy or "fcfs").upper()
    arbiter_component = "ARBITER_%s" % ("ROUND_ROBIN" if policy == "ROUND_ROBIN" else policy)
    modules = [
        ModulePlan(
            "ARB",
            arbiter_component,
            "%s_n%d" % (arbiter_component.lower(), n_masters),
            "u_arb",
            {"N_MASTERS": n_masters},
        ),
        ModulePlan(
            "ABI0",
            "ABI",
            "abi_n%d_g%d" % (n_masters, bus.grant_cycles),
            "u_abi0",
            {"N_MASTERS": n_masters, "GRANT_CYCLES": bus.grant_cycles},
        ),
        ModulePlan(
            "MBI0",
            "MBI_SRAM",
            "mbi_sram_aw%d%s%s" % (mem_aw, ws, mem_ws and "_m%d" % mem_dw),
            "u_mbi0",
            {
                "MEM_A_WIDTH": mem_aw,
                "MEM_D_WIDTH": mem_dw,
                "BIT_DIFFERENCE": max(0, data_width - mem_dw),
                "DATA_WIDTH": data_width,
            },
        ),
        ModulePlan(
            "MEM0",
            "SRAM_comp",
            "sram_aw%d%s" % (mem_aw, mem_ws),
            "u_mem0",
            {"MEM_A_WIDTH": mem_aw, "MEM_D_WIDTH": mem_dw},
        ),
        ModulePlan(
            "SBG",
            "SB_GBAVIII",
            "sb_gbaviii_n%d%s" % (n_masters, ws),
            "u_sbg",
            {"N_MASTERS": n_masters, "DATA_WIDTH": data_width},
        ),
    ]
    name = "ban_global_n%d_aw%d_g%d%s" % (n_masters, mem_aw, bus.grant_cycles, ws)
    return BanPlan(
        BanKind.GLOBAL,
        name,
        modules,
        BanKind.GLOBAL,
        mem_aw,
        data_width=data_width,
        mem_data_width=mem_dw,
    )


def generate_ban(
    module_library: ModuleLibrary,
    wire_library: WireLibrary,
    plan: BanPlan,
    n_masters: int = 4,
) -> GeneratedBan:
    """Steps 2-5 of Figure 19: wires, ports, matching, Verilog."""
    leaves: Dict[str, GeneratedModule] = {}
    builder = NetlistBuilder(plan.module_name)
    for module_plan in plan.modules:
        generated = module_library.generate(
            module_plan.component, module_plan.module_name, **module_plan.parameters
        )
        leaves[generated.name] = generated
        builder.add_instance(module_plan.logical, generated.module, module_plan.instance_name)

    if plan.wire_section_kind == BanKind.IPCORE:
        # A hardware-IP BAN is a single IP core; all its pins surface as
        # BAN ports (Figure 17's BAN FFT).
        return GeneratedBan(plan, builder.build(), leaves)
    if plan.wire_section_kind == BanKind.GLOBAL:
        section: WireGroup = wire_library.global_ban_section(
            n_masters,
            plan.mem_address_width,
            data_width=plan.data_width,
            mem_data_width=plan.mem_data_width,
        )
    else:
        section = wire_library.ban_section(
            plan.wire_section_kind,
            plan.mem_address_width,
            plan.with_ip_port,
            data_width=plan.data_width,
            mem_data_width=plan.mem_data_width,
        )

    for spec in section.specs:
        taps: List[Tuple[str, str, int, int]] = []
        for endpoint in (spec.end1, spec.end2):
            taps.append(
                (endpoint.module, endpoint.port, int(endpoint.wire_msb), int(endpoint.wire_lsb))
            )
        builder.connect(spec.name, spec.width, taps)

    module = builder.build()
    return GeneratedBan(plan, module, leaves)
