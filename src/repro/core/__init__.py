"""BusSyn core: the paper's contribution (section V)."""

from .bangen import BanKind, BanPlan, GeneratedBan, ModulePlan, generate_ban, plan_ban
from .busyn import BusSyn, GeneratedBusSystem, GenerationReport
from .gatecount import count_system_gates, estimate_component, gate_report
from .netlist import EXT, NetlistBuilder, NetlistError
from .subsysgen import GeneratedSubsystem, generate_subsystem, subsystem_kind
from .sysgen import GeneratedSystem, generate_system

__all__ = [
    "BanKind",
    "BanPlan",
    "GeneratedBan",
    "ModulePlan",
    "generate_ban",
    "plan_ban",
    "BusSyn",
    "GeneratedBusSystem",
    "GenerationReport",
    "count_system_gates",
    "estimate_component",
    "gate_report",
    "EXT",
    "NetlistBuilder",
    "NetlistError",
    "GeneratedSubsystem",
    "generate_subsystem",
    "subsystem_kind",
    "GeneratedSystem",
    "generate_system",
]
