"""Netlist construction shared by BANGen and SubSysGen.

Both generation algorithms (Figures 19 and 20) do the same structural
work: take a set of instantiated modules and a list of wire specs, match
wire endpoints against module ports (Step 4), decide the enclosing
module's I/O ports, and emit the instantiation code.  The
:class:`NetlistBuilder` implements that matching:

* wire specs naming the same ``(instance, port)`` merge into one net
  (union-find), which is how a BAN's segment port joins the bridge on its
  left *and* the bridge on its right;
* endpoints on the pseudo-module ``EXT`` surface their net as a port of
  the module under construction;
* any instance port untouched by a wire is *promoted* to a port of the
  enclosing module, same-name promotions sharing one port -- this is how a
  BAN inherits its ``data_up``/``done_op_cs_dn`` pins from the GBI and
  HS_REGS inside it (Figure 17b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..hdl.ast import Instance, Module, Port, PortConnection, Range, Wire

__all__ = ["NetlistError", "NetlistBuilder"]

EXT = "EXT"


class NetlistError(ValueError):
    pass


def _did_you_mean(name: str, candidates) -> str:
    """`` (did you mean 'x'?)`` when a close match exists, else empty."""
    import difflib

    matches = difflib.get_close_matches(name, list(candidates), n=1)
    return " (did you mean %r?)" % matches[0] if matches else ""


@dataclass
class _Net:
    name: str
    width: int
    # (logical instance, port, net msb, net lsb)
    taps: List[Tuple[str, str, int, int]] = field(default_factory=list)
    external_port: Optional[str] = None


class NetlistBuilder:
    def __init__(self, module_name: str):
        self.module_name = module_name
        # logical name -> (module definition, instance name)
        self._instances: Dict[str, Tuple[Module, str]] = {}
        self._order: List[str] = []
        self._nets: Dict[str, _Net] = {}
        self._alias: Dict[str, str] = {}
        self._port_net: Dict[Tuple[str, str], str] = {}

    # -- construction inputs ----------------------------------------------
    def add_instance(self, logical: str, definition: Module, instance_name: str) -> None:
        if logical in self._instances:
            raise NetlistError("duplicate logical instance %r" % logical)
        self._instances[logical] = (definition, instance_name)
        self._order.append(logical)

    def has_instance(self, logical: str) -> bool:
        return logical in self._instances

    def _resolve(self, net_name: str) -> str:
        while net_name in self._alias:
            net_name = self._alias[net_name]
        return net_name

    def _merge(self, keep: str, absorb: str) -> None:
        keep = self._resolve(keep)
        absorb = self._resolve(absorb)
        if keep == absorb:
            return
        kept = self._nets[keep]
        absorbed = self._nets.pop(absorb)
        kept.width = max(kept.width, absorbed.width)
        kept.taps.extend(absorbed.taps)
        if absorbed.external_port:
            if kept.external_port and kept.external_port != absorbed.external_port:
                raise NetlistError(
                    "nets %s/%s both have external ports (%s, %s)"
                    % (keep, absorb, kept.external_port, absorbed.external_port)
                )
            kept.external_port = kept.external_port or absorbed.external_port
        self._alias[absorb] = keep
        for key, value in list(self._port_net.items()):
            if self._resolve(value) == keep:
                self._port_net[key] = keep

    def connect(
        self,
        wire_name: str,
        width: int,
        taps: List[Tuple[str, str, int, int]],
    ) -> None:
        """Attach endpoint taps ``(logical, port, msb, lsb)`` to a net."""
        net_name = self._resolve(wire_name)
        if net_name not in self._nets:
            self._nets[net_name] = _Net(net_name, width)
        net = self._nets[net_name]
        net.width = max(net.width, width)
        for logical, port, msb, lsb in taps:
            if logical == EXT:
                if (msb - lsb + 1) != net.width:
                    raise NetlistError(
                        "EXT port %s must span the whole wire %s" % (port, wire_name)
                    )
                if net.external_port and net.external_port != port:
                    raise NetlistError(
                        "wire %s exposed as both %s and %s"
                        % (wire_name, net.external_port, port)
                    )
                net.external_port = port
                continue
            if logical not in self._instances:
                raise NetlistError(
                    "wire %s references unknown module %r%s; known modules: %s"
                    % (
                        wire_name,
                        logical,
                        _did_you_mean(logical, self._order),
                        ", ".join(sorted(self._instances)) or "<none>",
                    )
                )
            definition, _instance = self._instances[logical]
            port_def = definition.port(port)
            if port_def is None:
                port_names = [p.name for p in definition.ports]
                raise NetlistError(
                    "wire %s: module %s (%s) has no port %r%s; its ports: %s"
                    % (
                        wire_name,
                        logical,
                        definition.name,
                        port,
                        _did_you_mean(port, port_names),
                        ", ".join(sorted(port_names)) or "<none>",
                    )
                )
            key = (logical, port)
            if key in self._port_net:
                # The pin already sits on a net: a repeat mention (the
                # multi-drop style of Example 7's shared bus wires) is a
                # no-op; a mention on a *different* wire merges the nets.
                existing = self._resolve(self._port_net[key])
                if existing != self._resolve(wire_name):
                    self._merge(existing, self._resolve(wire_name))
                    net = self._nets[self._resolve(existing)]
                continue
            tap_width = msb - lsb + 1
            if port_def.width != tap_width:
                raise NetlistError(
                    "wire %s: %s.%s is %d bits but tap selects %d"
                    % (wire_name, logical, port, port_def.width, tap_width)
                )
            self._port_net[key] = self._resolve(wire_name)
            net.taps.append((logical, port, msb, lsb))

    # -- finalization ----------------------------------------------------
    def build(self) -> Module:
        module = Module(self.module_name)
        promoted: Dict[str, Port] = {}
        promoted_taps: Dict[str, List[Tuple[str, str]]] = {}

        # Promote unmatched instance ports (Step 4: "obtain exact I/O
        # ports of the BAN to be generated").  Inputs and inouts sharing a
        # name fan out from one promoted port (clk, rst_n, the shared
        # data_dn lines of Figure 17b).  Two *outputs* cannot share a pin,
        # so colliding output names get instance-suffixed (the done_op
        # status pins of repeated BANs at subsystem level).
        unmatched: List[Tuple[str, Port]] = []
        output_name_counts: Dict[str, int] = {}
        for logical in self._order:
            definition, _instance = self._instances[logical]
            for port in definition.ports:
                if (logical, port.name) in self._port_net:
                    continue
                unmatched.append((logical, port))
                if port.direction == "output":
                    output_name_counts[port.name] = output_name_counts.get(port.name, 0) + 1
        promote_name_of: Dict[Tuple[str, str], str] = {}
        for logical, port in unmatched:
            if port.direction == "output" and output_name_counts.get(port.name, 0) > 1:
                promote_name = "%s_%s" % (port.name, logical.lower())
            else:
                promote_name = port.name
            promote_name_of[(logical, port.name)] = promote_name
            existing = promoted.get(promote_name)
            if existing is None:
                promoted[promote_name] = Port(promote_name, port.direction, port.range)
            else:
                if existing.width != port.width:
                    raise NetlistError(
                        "port %r promoted with widths %d and %d"
                        % (promote_name, existing.width, port.width)
                    )
                existing.direction = _merge_direction(
                    existing.direction, port.direction, promote_name
                )
            promoted_taps.setdefault(promote_name, []).append((logical, port.name))
        self._promote_name_of = promote_name_of

        # External (EXT) net ports, direction inferred from the taps.
        for net in self._nets.values():
            if net.external_port is None:
                continue
            directions = set()
            for logical, port, _msb, _lsb in net.taps:
                definition, _instance = self._instances[logical]
                directions.add(definition.port(port).direction)
            if directions <= {"input"}:
                direction = "input"
            elif directions <= {"output"}:
                direction = "output"
            else:
                direction = "inout"
            if net.external_port in promoted:
                raise NetlistError(
                    "EXT port %r collides with a promoted port" % net.external_port
                )
            module.ports.append(
                Port(
                    net.external_port,
                    direction,
                    Range(net.width - 1, 0) if net.width > 1 else None,
                )
            )

        module.ports.extend(promoted.values())

        # Wire declarations for internal nets.
        for net in sorted(self._nets.values(), key=lambda item: item.name):
            if net.external_port is not None:
                continue
            module.wires.append(
                Wire(net.name, Range(net.width - 1, 0) if net.width > 1 else None)
            )

        # Instances with named connections (Step 5).
        for logical in self._order:
            definition, instance_name = self._instances[logical]
            connections: List[PortConnection] = []
            for port in definition.ports:
                key = (logical, port.name)
                if key in self._port_net:
                    net = self._nets[self._resolve(self._port_net[key])]
                    net_ref = net.external_port or net.name
                    expression = _slice_expression(
                        net_ref, net.width, self._tap_bits(net, logical, port.name)
                    )
                    connections.append(PortConnection(port.name, expression))
                else:
                    promote_name = self._promote_name_of[(logical, port.name)]
                    connections.append(PortConnection(port.name, promote_name))
            module.instances.append(
                Instance(definition.name, instance_name, connections)
            )
        return module

    def _tap_bits(self, net: _Net, logical: str, port: str) -> Tuple[int, int]:
        for tap_logical, tap_port, msb, lsb in net.taps:
            if tap_logical == logical and tap_port == port:
                return msb, lsb
        raise NetlistError("lost tap for %s.%s" % (logical, port))


def _merge_direction(first: str, second: str, name: str) -> str:
    if first == second:
        return first
    if "inout" in (first, second):
        return "inout"
    if {first, second} == {"input", "output"}:
        # An output feeding same-named inputs of sibling modules would be a
        # real connection the wire library should have specified.
        raise NetlistError(
            "port %r promoted as both input and output; add a wire spec" % name
        )
    raise NetlistError(
        "port %r promoted with unsupported direction pair (%s, %s)"
        % (name, first, second)
    )


def _slice_expression(net_name: str, net_width: int, bits: Tuple[int, int]) -> str:
    msb, lsb = bits
    if lsb == 0 and msb == net_width - 1:
        return net_name
    if msb == lsb:
        if net_width == 1:
            return net_name
        return "%s[%d]" % (net_name, msb)
    return "%s[%d:%d]" % (net_name, msb, lsb)
