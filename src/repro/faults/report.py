"""Per-run resilience telemetry.

A :class:`ResilienceReport` snapshots one chaos run: how many faults the
plan held, how many actually fired, and how each episode ended.  The core
invariant -- checked by :meth:`ResilienceReport.check` and asserted by the
chaos harness -- is that **nothing is silent**::

    injected == recovered + residual + accounted        (unaccounted == 0)

``residual`` episodes are real data corruption (retries exhausted), but
they are *reported* corruption; a nonzero ``unaccounted`` means a fault
fired and the recovery machinery lost track of it, which is the failure
mode chaos testing exists to catch.

Reports are plain dicts underneath so they pickle across the parallel
runner and diff cleanly across scheduler backends (the heap/wheel parity
check compares entire ``outcomes`` lists, cycle numbers included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ResilienceReport", "LATENCY_BUCKETS"]

# Recovery-latency histogram bucket upper bounds (bus cycles); the final
# bucket is open-ended.
LATENCY_BUCKETS = (0, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _latency_histogram(latencies: List[int]) -> Dict[str, int]:
    counts = [0] * (len(LATENCY_BUCKETS) + 1)
    for value in latencies:
        for index, bound in enumerate(LATENCY_BUCKETS):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    histogram: Dict[str, int] = {}
    for index, bound in enumerate(LATENCY_BUCKETS):
        if counts[index]:
            histogram["<=%d" % bound] = counts[index]
    if counts[-1]:
        histogram[">%d" % LATENCY_BUCKETS[-1]] = counts[-1]
    return histogram


@dataclass
class ResilienceReport:
    """What the fault plan did to one run, and what recovery did about it."""

    name: str = ""
    scenario: str = ""
    seed: Any = None
    planned: int = 0
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    residual: int = 0
    accounted: int = 0
    dormant: int = 0
    retries: int = 0
    timeouts: int = 0
    grant_redeliveries: int = 0
    watchdog_reclaims: int = 0
    recovery_latency: Dict[str, int] = field(default_factory=dict)
    outcomes: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def unaccounted(self) -> int:
        return self.injected - self.recovered - self.residual - self.accounted

    @classmethod
    def from_injector(cls, injector, name: str = "") -> "ResilienceReport":
        plan = injector.plan
        return cls(
            name=name or injector.machine.name,
            scenario=plan.scenario or "",
            seed=plan.seed,
            planned=len(plan.faults),
            injected=injector.injected,
            detected=injector.detected,
            recovered=injector.recovered,
            residual=injector.residual,
            accounted=injector.accounted,
            dormant=len(plan.faults) - len(injector._fired_keys),
            retries=injector.retries,
            timeouts=injector.timeouts,
            grant_redeliveries=injector.grant_redeliveries,
            watchdog_reclaims=injector.watchdog_reclaims,
            recovery_latency=_latency_histogram(injector.recovery_latencies),
            outcomes=[dict(episode) for episode in injector.outcomes],
        )

    def check(self) -> List[str]:
        """Invariant violations (empty list == clean)."""
        failures: List[str] = []
        if self.unaccounted != 0:
            failures.append(
                "%s: %d injected fault(s) neither recovered, residual nor "
                "accounted" % (self.name, self.unaccounted)
            )
        for episode in self.outcomes:
            if episode.get("outcome") is None:
                failures.append(
                    "%s: open episode %s@%s (fired cycle %s)"
                    % (self.name, episode["kind"], episode["site"], episode["cycle"])
                )
        return failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "seed": self.seed,
            "planned": self.planned,
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "residual": self.residual,
            "accounted": self.accounted,
            "dormant": self.dormant,
            "unaccounted": self.unaccounted,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "grant_redeliveries": self.grant_redeliveries,
            "watchdog_reclaims": self.watchdog_reclaims,
            "recovery_latency": dict(self.recovery_latency),
            "outcomes": [dict(episode) for episode in self.outcomes],
        }

    def summary_line(self) -> str:
        return (
            "%-24s planned %2d  fired %2d  recovered %2d  residual %2d  "
            "accounted %2d  dormant %2d  unaccounted %d"
            % (
                self.name,
                self.planned,
                self.injected,
                self.recovered,
                self.residual,
                self.accounted,
                self.dormant,
                self.unaccounted,
            )
        )
