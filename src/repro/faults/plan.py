"""Fault plans: seeded, deterministic fault schedules for a machine.

A :class:`ChaosScenario` describes *how much* of each fault kind to throw
at a system; :func:`compile_plan` turns a scenario plus a seed into a
concrete :class:`FaultPlan` against one built machine -- every fault bound
to a real site (a bus segment, FIFO direction, arbiter, memory, bridge or
PE) and a deterministic trigger point.

Trigger points come in two flavours:

* **ordinal** -- "the N-th qualifying operation at this site" (the N-th
  checked transfer on a segment, the N-th push into a FIFO, the N-th
  queued grant dispatch, ...).  Ordinals are counted by the injector in
  simulation order, which both scheduler backends reproduce bit-identically
  (``tests/test_scheduler_parity.py``), so a plan injects at exactly the
  same logical point on the heap and wheel kernels.
* **cycle** -- an absolute simulation cycle (used by stuck-grant faults,
  which are injected by a scheduled timer rather than a data-path hook).

Compilation never touches the live simulation: the same ``(machine shape,
scenario, seed)`` triple always yields the same plan, and an empty plan
installs as a no-op (bit-identical run; enforced by tests/test_faults.py).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "ChaosScenario",
    "BusTimeoutError",
    "DEFAULT_SCENARIO",
    "SMOKE_SCENARIO",
    "HEAVY_SCENARIO",
    "SCENARIOS",
    "compile_plan",
    "empty_plan",
]


class BusTimeoutError(RuntimeError):
    """A CBI gave up on a bus grant after its bounded timeout escalation.

    Raised only when recovery (the arbiter watchdog) failed to free the
    bus within every escalated timeout window -- it converts a would-be
    simulation deadlock into a detected, attributable error.
    """


class FaultKind:
    """The fault taxonomy (see docs/robustness.md for the fault model)."""

    BUS_FLIP = "bus_flip"  # data corruption on a segment transfer
    FIFO_DROP = "fifo_drop"  # token(s) lost on a Bi-FIFO link
    FIFO_DUP = "fifo_dup"  # token duplicated on a Bi-FIFO link
    GRANT_LOST = "grant_lost"  # a dispatched grant pulse never reaches the master
    GRANT_STUCK = "grant_stuck"  # a (ghost) master seizes the arbiter and hangs
    MEM_JITTER = "mem_jitter"  # extra wait states on a memory burst
    BRIDGE_STALL = "bridge_stall"  # extra latency on a bridge crossing
    PE_CRASH = "pe_crash"  # PE crash + cold restart (caches lost)

    ALL = (
        BUS_FLIP,
        FIFO_DROP,
        FIFO_DUP,
        GRANT_LOST,
        GRANT_STUCK,
        MEM_JITTER,
        BRIDGE_STALL,
        PE_CRASH,
    )


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault: *kind* at *site*, triggering at *at*.

    ``at`` is an ordinal for data-path faults and an absolute cycle for
    :data:`FaultKind.GRANT_STUCK`.  ``param`` is kind-specific: the bit
    index for a flip, the word count for a drop, extra cycles for jitter/
    stall/restart, the hold window for a stuck grant.  ``persist`` widens
    the ordinal trigger window: a persist-``n`` fault re-fires on ``n``
    consecutive qualifying operations, so a flip that outlasts the bounded
    retry budget exercises the *residual* path deterministically.
    """

    kind: str
    site: str
    at: int
    param: int = 0
    persist: int = 1

    def key(self) -> Tuple[str, str, int]:
        return (self.kind, self.site, self.at)


@dataclass
class ChaosScenario:
    """How many faults of each kind to compile into a plan.

    ``ordinal_window`` bounds the ordinal draw: data-path faults land on
    one of the first ``ordinal_window`` qualifying operations at their
    site, so short (smoke) runs still reach them.  ``stuck_window`` is the
    absolute-cycle range for stuck-grant injection.
    """

    name: str = "default"
    bus_flips: int = 2
    fifo_drops: int = 1
    fifo_dups: int = 1
    grant_losses: int = 1
    grant_stucks: int = 1
    mem_jitters: int = 2
    bridge_stalls: int = 1
    pe_crashes: int = 1
    ordinal_window: int = 40
    stuck_window: Tuple[int, int] = (500, 4000)
    jitter_cycles: Tuple[int, int] = (4, 24)
    stall_cycles: Tuple[int, int] = (4, 16)
    restart_cycles: Tuple[int, int] = (50, 400)
    stuck_hold_cycles: Tuple[int, int] = (100, 600)
    drop_words: Tuple[int, int] = (1, 4)
    # Flip persistence draw: mostly one-shot (recovered on first retry),
    # occasionally sticky beyond the retry budget (deterministic residuals).
    flip_persist_choices: Tuple[int, ...] = (1, 1, 1, 1, 6)

    def scaled(self, factor: int) -> "ChaosScenario":
        """A scenario with every fault count multiplied by ``factor``."""
        return replace(
            self,
            name="%sx%d" % (self.name, factor),
            bus_flips=self.bus_flips * factor,
            fifo_drops=self.fifo_drops * factor,
            fifo_dups=self.fifo_dups * factor,
            grant_losses=self.grant_losses * factor,
            grant_stucks=self.grant_stucks * factor,
            mem_jitters=self.mem_jitters * factor,
            bridge_stalls=self.bridge_stalls * factor,
            pe_crashes=self.pe_crashes * factor,
        )


DEFAULT_SCENARIO = ChaosScenario()
SMOKE_SCENARIO = ChaosScenario(
    name="smoke",
    bus_flips=1,
    fifo_drops=1,
    fifo_dups=1,
    grant_losses=1,
    grant_stucks=1,
    mem_jitters=1,
    bridge_stalls=1,
    pe_crashes=1,
    ordinal_window=12,
    stuck_window=(200, 1500),
)
HEAVY_SCENARIO = ChaosScenario(
    name="heavy",
    bus_flips=6,
    fifo_drops=3,
    fifo_dups=3,
    grant_losses=3,
    grant_stucks=2,
    mem_jitters=6,
    bridge_stalls=3,
    pe_crashes=2,
    ordinal_window=120,
)

SCENARIOS: Dict[str, ChaosScenario] = {
    "default": DEFAULT_SCENARIO,
    "smoke": SMOKE_SCENARIO,
    "heavy": HEAVY_SCENARIO,
}


@dataclass
class FaultPlan:
    """A compiled, site-bound fault schedule for one machine."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None
    scenario: Optional[str] = None

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def by_kind(self) -> Dict[str, List[FaultSpec]]:
        grouped: Dict[str, List[FaultSpec]] = {}
        for spec in self.faults:
            grouped.setdefault(spec.kind, []).append(spec)
        return grouped

    def describe(self) -> List[str]:
        return [
            "%-12s %-24s at=%-6d param=%d" % (s.kind, s.site, s.at, s.param)
            for s in sorted(self.faults, key=lambda s: s.key())
        ]


def empty_plan() -> FaultPlan:
    return FaultPlan([], seed=None, scenario="empty")


def _sites(machine) -> Dict[str, List[str]]:
    """Name-sorted fault sites per category, derived from a built machine."""
    fifos: List[str] = []
    for _ban, block in sorted(machine.fifo_blocks.items()):
        fifos.extend([block.up.name, block.down.name])
    # A lost grant can only occur on the queued-dispatch path, which needs
    # contention: either several masters directly on the segment, or bridged
    # traffic arriving from a neighbour.  Single-master bridge-less segments
    # (BFBA local buses, GBAVIII local buses) never dispatch from the queue,
    # so a grant_lost planted there would be structurally dormant.
    master_count: Dict[str, int] = {name: 0 for name in machine.segments}
    for segments in machine.direct_segments.values():
        for segment in segments:
            master_count[segment.name] += 1
    for bridge in machine.bridges:
        master_count[bridge.side_a.name] += 1
        master_count[bridge.side_b.name] += 1
    contended = sorted(
        segment.arbiter.name
        for name, segment in machine.segments.items()
        if master_count[name] >= 2
    )
    return {
        "segments": sorted(machine.segments),
        "fifos": sorted(fifos),
        "arbiters": sorted(
            segment.arbiter.name for segment in machine.segments.values()
        ),
        "arbiters_contended": contended,
        "memories": sorted(
            name
            for name, device in machine.devices.items()
            if device.kind == "memory"
        ),
        "bridges": sorted(bridge.name for bridge in machine.bridges),
        "pes": sorted(machine.pes),
    }


def compile_plan(machine, scenario: ChaosScenario, seed: int) -> FaultPlan:
    """Compile ``scenario`` into a concrete plan for ``machine``.

    Deterministic: sites are drawn from name-sorted lists with a
    ``random.Random`` seeded from ``(seed, scenario.name)``.  Fault kinds
    whose site category is empty on this topology (no FIFOs on GBAVIII, no
    bridges on BFBA, ...) are skipped, so one scenario sweeps every
    architecture.  Duplicate ``(kind, site, at)`` draws collapse to one
    fault.
    """
    rng = random.Random("%s:%s" % (seed, scenario.name))
    sites = _sites(machine)
    chosen: Dict[Tuple[str, str, int], FaultSpec] = {}

    def draw(count: int, kind: str, category: str, param_of) -> None:
        pool = sites[category]
        if not pool:
            return
        for _ in range(count):
            spec = FaultSpec(
                kind=kind,
                site=rng.choice(pool),
                at=(
                    rng.randrange(*scenario.stuck_window)
                    if kind == FaultKind.GRANT_STUCK
                    else rng.randrange(scenario.ordinal_window)
                ),
                param=param_of(rng),
                persist=(
                    rng.choice(scenario.flip_persist_choices)
                    if kind == FaultKind.BUS_FLIP
                    else 1
                ),
            )
            chosen.setdefault(spec.key(), spec)

    draw(scenario.bus_flips, FaultKind.BUS_FLIP, "segments", lambda r: r.randrange(32))
    draw(
        scenario.fifo_drops,
        FaultKind.FIFO_DROP,
        "fifos",
        lambda r: r.randint(*scenario.drop_words),
    )
    draw(scenario.fifo_dups, FaultKind.FIFO_DUP, "fifos", lambda r: 1)
    draw(
        scenario.grant_losses, FaultKind.GRANT_LOST, "arbiters_contended", lambda r: 0
    )
    draw(
        scenario.grant_stucks,
        FaultKind.GRANT_STUCK,
        "arbiters",
        lambda r: r.randint(*scenario.stuck_hold_cycles),
    )
    draw(
        scenario.mem_jitters,
        FaultKind.MEM_JITTER,
        "memories",
        lambda r: r.randint(*scenario.jitter_cycles),
    )
    draw(
        scenario.bridge_stalls,
        FaultKind.BRIDGE_STALL,
        "bridges",
        lambda r: r.randint(*scenario.stall_cycles),
    )
    draw(
        scenario.pe_crashes,
        FaultKind.PE_CRASH,
        "pes",
        lambda r: r.randint(*scenario.restart_cycles),
    )

    faults = [chosen[key] for key in sorted(chosen)]
    return FaultPlan(faults, seed=seed, scenario=scenario.name)
