"""Deterministic fault injection and bus-level error recovery.

See docs/robustness.md for the user guide.  Layering (no cycles):
``plan`` is pure data, ``injector`` imports only the plan and is driven by
thin hooks inside ``repro.sim.*``, ``report`` summarizes an injector, and
``chaos`` sits on top of the fabric + experiment runner to sweep scenarios.
"""

from .injector import FaultInjector, RecoveryPolicy, install_faults
from .plan import (
    BusTimeoutError,
    ChaosScenario,
    DEFAULT_SCENARIO,
    FaultKind,
    FaultPlan,
    FaultSpec,
    HEAVY_SCENARIO,
    SCENARIOS,
    SMOKE_SCENARIO,
    compile_plan,
    empty_plan,
)
from .report import ResilienceReport

__all__ = [
    "BusTimeoutError",
    "ChaosScenario",
    "DEFAULT_SCENARIO",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HEAVY_SCENARIO",
    "RecoveryPolicy",
    "ResilienceReport",
    "SCENARIOS",
    "SMOKE_SCENARIO",
    "compile_plan",
    "empty_plan",
    "install_faults",
]
