"""Chaos harness: seeded fault sweeps across architectures and backends.

For every architecture under test the harness runs three modes on each
scheduler backend:

* ``baseline`` -- no fault machinery at all (the seed behaviour);
* ``empty``    -- an **empty** fault plan installed, which must be
  bit-identical to baseline (the hooks' zero-cost contract);
* ``faulted``  -- the seeded scenario compiled and installed.

and then asserts the chaos invariants:

1. no deadlock -- every case runs to completion (a stuck bus surfaces as a
   :class:`~repro.faults.plan.BusTimeoutError`, not a hang);
2. no silent data loss -- each faulted case's
   :class:`~repro.faults.report.ResilienceReport` accounts for 100% of its
   injected faults (``unaccounted == 0``);
3. empty-plan identity -- ``empty`` matches ``baseline`` cycle-for-cycle;
4. backend parity -- ``faulted`` outcomes (cycles, episode ledger, all
   counters) are identical on the heap and wheel kernels.

Every case additionally runs with a
:class:`~repro.obs.counters.CounterPlane` attached, so each row carries
per-segment transaction/grant/wait totals.  Those totals must match
:class:`BusStats` in the fault-free modes and be identical across
backends in *every* mode -- under injection a watchdog redelivery can
legitimately re-grant, so chaos gates grants by parity rather than by
the arbiter's own count.

Cases fan out over the parallel experiment runner, so ``repro chaos
--jobs N`` sweeps architectures concurrently with deterministic results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps.ofdm import OfdmParameters, run_ofdm
from ..options import presets
from ..sim.fabric import build_machine
from .injector import RecoveryPolicy, install_faults
from .plan import SCENARIOS, compile_plan, empty_plan

__all__ = [
    "CHAOS_ARCHITECTURES",
    "CHAOS_STYLES",
    "run_chaos_case",
    "run_chaos",
    "format_chaos_summary",
]

# The five generated architectures of the paper (Figures 3-7); baselines
# (GGBA/CCBA) are reachable via --arch but not swept by default.
CHAOS_ARCHITECTURES = ["BFBA", "GBAVI", "GBAVIII", "HYBRID", "SPLITBA"]

# Programming style per architecture (BFBA/GBAVI have no shared memory, so
# only PPA is defined for them -- same mapping as Table II).
CHAOS_STYLES = {
    "BFBA": "PPA",
    "GBAVI": "PPA",
    "GBAVII": "FPA",
    "GBAVIII": "FPA",
    "HYBRID": "FPA",
    "SPLITBA": "FPA",
    "GGBA": "FPA",
    "CCBA": "FPA",
}

MODES = ("baseline", "empty", "faulted")


def run_chaos_case(
    case: Tuple[str, str, str, str],
    packets: int = 4,
    seed: int = 0,
    scenario: str = "smoke",
    pe_count: int = 4,
) -> Dict[str, Any]:
    """Run one ``(arch, style, backend, mode)`` chaos case; picklable."""
    arch, style, backend, mode = case
    machine = build_machine(presets.preset(arch, pe_count), kernel=backend)
    plane = machine.attach_counters()
    injector = None
    monitor = None
    if mode != "baseline":
        if mode == "faulted":
            plan = compile_plan(machine, SCENARIOS[scenario], seed)
        else:
            plan = empty_plan()
            # The empty-plan case doubles as the protocol-assertion case:
            # monitors are free-when-off and observe-only, so this mode must
            # stay bit-identical to baseline *and* violation-free.  (The
            # faulted mode deliberately breaks protocol -- e.g. withdraws
            # grants -- so monitors only arm when no faults are planned.)
            monitor = machine.attach_monitors(fail_fast=False)
        injector = install_faults(machine, plan, RecoveryPolicy())
    result = run_ofdm(machine, style, OfdmParameters(packets=packets))
    # Run-to-quiescence swallows process failures (a dead PE is just a
    # failed, unwaited event), so an unfinished PE is the deadlock/crash
    # signal -- check it in every mode, baseline included.
    unfinished = [
        "%s: PE %s did not complete" % (arch, name)
        for name, pe in sorted(machine.pes.items())
        if pe.finished_at is None
    ]
    if monitor is not None:
        unfinished += [
            "%s: protocol %s" % (arch, finding)
            for finding in monitor.finalize()
        ]
    if mode != "faulted":
        # Fault-free counters must agree with BusStats exactly; faulted
        # runs are gated by cross-backend parity in run_chaos instead.
        unfinished += [
            "%s/%s counters: %s" % (arch, backend, text)
            for text in plane.check_against_stats(machine)
        ]
    out: Dict[str, Any] = {
        "arch": arch,
        "style": style,
        "backend": backend,
        "mode": mode,
        "cycles": result.cycles,
        "throughput_mbps": result.throughput_mbps,
        "counters": plane.totals(),
        "invariant_failures": unfinished,
    }
    if injector is not None:
        report = injector.resilience_report()
        report.name = "%s/%s %s" % (arch, style, backend)
        out["resilience"] = report.as_dict()
        out["invariant_failures"] = unfinished + report.check()
    return out


def run_chaos(
    seed: int = 0,
    scenario: str = "smoke",
    archs: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("heap", "wheel"),
    packets: int = 4,
    pe_count: int = 4,
    jobs: int = 1,
) -> Dict[str, Any]:
    """Sweep the chaos matrix; returns a JSON-able summary with failures."""
    from ..experiments.runner import run_cases

    if scenario not in SCENARIOS:
        raise ValueError(
            "unknown scenario %r (expected one of %s)"
            % (scenario, ", ".join(sorted(SCENARIOS)))
        )
    archs = [str(arch).upper() for arch in (archs or CHAOS_ARCHITECTURES)]
    for arch in archs:
        # OptionError (not KeyError at CHAOS_STYLES time): the CLI turns
        # it into exit 2 with the candidate list, matching every other
        # unknown-name path (core/netlist.py style).
        if arch not in presets.PRESETS or arch not in CHAOS_STYLES:
            from ..core.netlist import _did_you_mean
            from ..options.schema import OptionError

            known = sorted(set(presets.PRESETS) & set(CHAOS_STYLES))
            raise OptionError(
                "unknown architecture %r%s; known architectures: %s"
                % (arch, _did_you_mean(arch, known), ", ".join(known))
            )
    cases: List[Tuple[str, str, str, str]] = []
    for arch in archs:
        style = CHAOS_STYLES[arch]
        for backend in backends:
            for mode in MODES:
                cases.append((arch, style, backend, mode))
    results, _telemetry = run_cases(
        run_chaos_case,
        cases,
        jobs=jobs,
        kwargs={
            "packets": packets,
            "seed": seed,
            "scenario": scenario,
            "pe_count": pe_count,
        },
    )
    by_key = {
        (row["arch"], row["backend"], row["mode"]): row for row in results
    }
    failures: List[str] = []
    for arch in archs:
        for backend in backends:
            baseline = by_key[(arch, backend, "baseline")]
            empty = by_key[(arch, backend, "empty")]
            faulted = by_key[(arch, backend, "faulted")]
            failures.extend(baseline["invariant_failures"])
            failures.extend(empty["invariant_failures"])
            if empty["cycles"] != baseline["cycles"]:
                failures.append(
                    "%s/%s: empty fault plan changed cycles (%d != baseline %d)"
                    % (arch, backend, empty["cycles"], baseline["cycles"])
                )
            if empty["resilience"]["injected"] != 0:
                failures.append(
                    "%s/%s: empty plan injected %d fault(s)"
                    % (arch, backend, empty["resilience"]["injected"])
                )
            failures.extend(faulted["invariant_failures"])
            if faulted["resilience"]["injected"] == 0:
                failures.append(
                    "%s/%s: seeded scenario %r fired no faults (scenario too "
                    "small for this run?)" % (arch, backend, scenario)
                )
        # Backend parity: identical cycle counts and identical fault
        # episode ledgers (sites, cycles, outcomes) on every backend.
        reference_backend = backends[0]
        for mode in MODES:
            reference = by_key[(arch, reference_backend, mode)]
            for backend in backends[1:]:
                other = by_key[(arch, backend, mode)]
                if other["cycles"] != reference["cycles"]:
                    failures.append(
                        "%s/%s: cycles diverge across backends (%s=%d, %s=%d)"
                        % (
                            arch,
                            mode,
                            reference_backend,
                            reference["cycles"],
                            backend,
                            other["cycles"],
                        )
                    )
                if other["counters"] != reference["counters"]:
                    failures.append(
                        "%s/%s: counter totals diverge between %s and %s"
                        % (arch, mode, reference_backend, backend)
                    )
                if mode == "faulted":
                    ref_res = dict(reference["resilience"], name="")
                    other_res = dict(other["resilience"], name="")
                    if ref_res != other_res:
                        failures.append(
                            "%s: fault outcomes diverge between %s and %s"
                            % (arch, reference_backend, backend)
                        )
    return {
        "scenario": scenario,
        "seed": seed,
        "packets": packets,
        "pe_count": pe_count,
        "backends": list(backends),
        "architectures": archs,
        "cases": results,
        "failures": failures,
        "ok": not failures,
    }


def format_chaos_summary(summary: Dict[str, Any]) -> List[str]:
    """Human-readable digest of a :func:`run_chaos` summary."""
    lines = [
        "chaos sweep: scenario=%s seed=%s packets=%d backends=%s"
        % (
            summary["scenario"],
            summary["seed"],
            summary["packets"],
            "/".join(summary["backends"]),
        )
    ]
    for row in summary["cases"]:
        if row["mode"] != "faulted":
            continue
        resilience = row["resilience"]
        lines.append(
            "  %-8s %-4s %-5s  %8d cycles  planned %2d fired %2d "
            "recovered %2d residual %2d accounted %2d dormant %2d"
            % (
                row["arch"],
                row["style"],
                row["backend"],
                row["cycles"],
                resilience["planned"],
                resilience["injected"],
                resilience["recovered"],
                resilience["residual"],
                resilience["accounted"],
                resilience["dormant"],
            )
        )
    if summary["failures"]:
        lines.append("invariant FAILURES:")
        lines.extend("  - %s" % failure for failure in summary["failures"])
    else:
        lines.append(
            "all invariants hold: empty-plan bit-identity, zero silent data "
            "loss, backend parity"
        )
    return lines
