"""Fault injection + recovery machinery.

:func:`install_faults` wires a compiled :class:`~repro.faults.plan.FaultPlan`
into a built machine: every simulation model (segments, arbiters, FIFOs,
memories, bridges, PEs) gets a reference to one shared
:class:`FaultInjector`, and the thin hooks in ``repro.sim.*`` consult it.
The hooks follow the observability NULL-object contract -- a model whose
``faults`` attribute is ``None`` pays one attribute load and a branch, and
an installed-but-empty plan schedules no events, so the run stays
bit-identical to an uninstrumented one (tests/test_faults.py).

Recovery taxonomy (the ``ResilienceReport`` invariant is
``injected == recovered + residual + accounted``):

* **recovered** -- the fault was detected and undone: a corrupted transfer
  retried clean, a dropped FIFO chunk retransmitted, a lost grant pulse
  redelivered by the watchdog, a stuck master's grant reclaimed.
* **residual** -- detection worked but bounded retries ran out; the bit
  flip was really applied to the data.  Reported, never silent.
* **accounted** -- pure-latency faults (memory jitter, bridge stalls, PE
  crash/restart) that cost cycles but cannot lose data.

The injector's trigger bookkeeping is plain-Python counters keyed by site
name, advanced in simulation order -- which the heap and wheel scheduler
backends reproduce identically -- so a given plan produces the same fault
episodes, in the same order, at the same cycles on both backends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .plan import BusTimeoutError, FaultKind, FaultPlan, FaultSpec

__all__ = ["RecoveryPolicy", "FaultInjector", "install_faults"]


class RecoveryPolicy:
    """Knobs of the recovery machinery (docs/robustness.md lists them all).

    The timeout-escalation budget (``timeout_cycles * (2**max_escalations
    - 1)`` cycles, 65280 with the defaults) must comfortably exceed the
    longest *legitimate* bus wait -- the biggest single tenure (a whole
    buffer transfer, ~4k cycles for the OFDM workload's 4096-word hops)
    times the deepest FCFS queue -- because exhausting it declares the bus
    dead.  The recovery agents it backstops (grant redelivery, stuck-grant
    reclaim) all act within ``watchdog_cycles``, so a genuine hang is
    still detected ~65k cycles in rather than never.
    """

    __slots__ = (
        "max_retries",
        "backoff_base",
        "timeout_cycles",
        "max_escalations",
        "watchdog_cycles",
        "dup_penalty_cycles",
        "retransmit_penalty_cycles",
    )

    def __init__(
        self,
        max_retries: int = 3,
        backoff_base: int = 4,
        timeout_cycles: int = 256,
        max_escalations: int = 8,
        watchdog_cycles: int = 200,
        dup_penalty_cycles: int = 1,
        retransmit_penalty_cycles: int = 2,
    ):
        if max_retries < 0 or max_escalations < 1:
            raise ValueError("recovery policy needs retries >= 0, escalations >= 1")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.timeout_cycles = timeout_cycles
        self.max_escalations = max_escalations
        self.watchdog_cycles = watchdog_cycles
        self.dup_penalty_cycles = dup_penalty_cycles
        self.retransmit_penalty_cycles = retransmit_penalty_cycles

    def backoff(self, attempt: int) -> int:
        """Exponential backoff before retry ``attempt`` (0-based)."""
        return self.backoff_base << attempt


# (spec, first-ordinal, one-past-last-ordinal) trigger windows per site.
_Window = Tuple[FaultSpec, int, int]


def _windows(specs: List[FaultSpec]) -> Dict[str, List[_Window]]:
    table: Dict[str, List[_Window]] = {}
    for spec in specs:
        table.setdefault(spec.site, []).append(
            (spec, spec.at, spec.at + max(spec.persist, 1))
        )
    return table


class FaultInjector:
    """Shared per-machine fault state: triggers, recovery agents, ledger."""

    def __init__(self, machine, plan: FaultPlan, policy: Optional[RecoveryPolicy] = None):
        self.machine = machine
        self.sim = machine.sim
        self.plan = plan
        self.policy = policy or RecoveryPolicy()
        by_kind = plan.by_kind()
        self._flip_sites = _windows(by_kind.get(FaultKind.BUS_FLIP, []))
        self._fifo_sites = _windows(
            by_kind.get(FaultKind.FIFO_DROP, []) + by_kind.get(FaultKind.FIFO_DUP, [])
        )
        self._lost_sites = _windows(by_kind.get(FaultKind.GRANT_LOST, []))
        self._jitter_sites = _windows(by_kind.get(FaultKind.MEM_JITTER, []))
        self._bridge_sites = _windows(by_kind.get(FaultKind.BRIDGE_STALL, []))
        self._crash_sites = _windows(by_kind.get(FaultKind.PE_CRASH, []))
        self._stuck_specs = sorted(
            by_kind.get(FaultKind.GRANT_STUCK, []), key=FaultSpec.key
        )
        # Per-site ordinal counters, advanced in simulation order.
        self._seg_n: Dict[str, int] = {}
        self._fifo_n: Dict[str, int] = {}
        self._disp_n: Dict[str, int] = {}
        self._mem_n: Dict[str, int] = {}
        self._bridge_n: Dict[str, int] = {}
        self._pe_n: Dict[str, int] = {}
        # Segments whose arbiter is a grant-fault site run the guarded
        # (timeout-raced) acquisition path; everything else keeps the plain
        # path, so an arbiter-fault-free plan adds zero timer events.
        arbiter_sites: Set[str] = set(self._lost_sites)
        arbiter_sites.update(spec.site for spec in self._stuck_specs)
        self.guarded_segments: Set[str] = {
            segment.name
            for segment in machine.segments.values()
            if segment.arbiter.name in arbiter_sites
        }
        # FIFO link recovery ledgers.
        self._pending_drops: Dict[str, List[Tuple[dict, List[int]]]] = {}
        self._pending_dups: Dict[str, List[dict]] = {}
        self._due_crash: Optional[FaultSpec] = None
        # Outcome ledger + counters (the ResilienceReport raw material).
        self.outcomes: List[dict] = []
        self.injected = 0
        self.detected = 0
        self.recovered = 0
        self.residual = 0
        self.accounted = 0
        self.retries = 0
        self.timeouts = 0
        self.grant_redeliveries = 0
        self.watchdog_reclaims = 0
        self.recovery_latencies: List[int] = []
        self._fired_keys: Set[Tuple[str, str, int]] = set()

    # ------------------------------------------------------------------
    # Episode ledger
    # ------------------------------------------------------------------
    def _fire(self, spec: FaultSpec) -> dict:
        """Open one fault episode: the fault manifested and was detected."""
        now = self.sim.now
        episode = {
            "kind": spec.kind,
            "site": spec.site,
            "at": spec.at,
            "param": spec.param,
            "cycle": now,
            "outcome": None,
            "resolved": None,
            "latency": None,
        }
        self.outcomes.append(episode)
        self.injected += 1
        self.detected += 1
        self._fired_keys.add(spec.key())
        obs = self.machine._obs
        if obs is not None:
            tracer = obs.tracer
            if tracer.enabled:
                tracer.fault(now, spec.site, spec.kind, "inject")
            registry = obs.registry
            if registry is not None:
                registry.counter("faults.injected").inc()
                registry.counter("faults.injected.%s" % spec.kind).inc()
        return episode

    def _resolve(self, episode: dict, outcome: str) -> None:
        now = self.sim.now
        episode["outcome"] = outcome
        episode["resolved"] = now
        latency = now - episode["cycle"]
        episode["latency"] = latency
        if outcome == "recovered":
            self.recovered += 1
            self.recovery_latencies.append(latency)
        elif outcome == "residual":
            self.residual += 1
        else:
            self.accounted += 1
        obs = self.machine._obs
        if obs is not None:
            tracer = obs.tracer
            if tracer.enabled:
                tracer.fault(now, episode["site"], episode["kind"], outcome)
            registry = obs.registry
            if registry is not None:
                registry.counter("faults.%s" % outcome).inc()
                if outcome == "recovered":
                    registry.histogram("faults.recovery_latency").observe(latency)

    def resilience_report(self):
        from .report import ResilienceReport

        return ResilienceReport.from_injector(self)

    # ------------------------------------------------------------------
    # Bus bit-flips (checked by Machine.transaction's retry loop)
    # ------------------------------------------------------------------
    def check_flip(self, segments) -> List[FaultSpec]:
        """Advance each path segment's transfer ordinal; return fired flips."""
        fired: List[FaultSpec] = []
        seg_n = self._seg_n
        sites = self._flip_sites
        for segment in segments:
            name = segment.name
            ordinal = seg_n.get(name, 0)
            seg_n[name] = ordinal + 1
            windows = sites.get(name)
            if windows:
                for spec, lo, hi in windows:
                    if lo <= ordinal < hi:
                        fired.append(spec)
        return fired

    def open_flip_episode(self, specs: List[FaultSpec]) -> List[dict]:
        return [self._fire(spec) for spec in specs]

    def note_flip_repeat(self, count: int) -> None:
        """A retry hit the (persistent) fault again: more detections."""
        self.detected += count

    def resolve_flip_episode(self, episodes: List[dict], outcome: str) -> None:
        for episode in episodes:
            self._resolve(episode, outcome)

    @staticmethod
    def corrupt(values: List[int], spec: FaultSpec) -> List[int]:
        """Apply a residual bit flip to a copy of ``values``."""
        if not values:
            return values
        out = list(values)
        index = spec.at % len(out)
        out[index] = (out[index] ^ (1 << (spec.param & 31))) & 0xFFFFFFFF
        return out

    # ------------------------------------------------------------------
    # FIFO link faults (hook: HardwareFifo.push; recovery: Machine.fifo_push)
    # ------------------------------------------------------------------
    def filter_push(self, fifo, values: List[int]) -> List[int]:
        """Perturb one push: drop a tail chunk or mark a duplicate.

        Dropped words go on a retransmit ledger that
        :meth:`fifo_link_recovery` drains; duplicates are discarded by the
        receiving controller's sequence check (they never enter the FIFO,
        so they cannot overflow it) at a small penalty.
        """
        name = fifo.name
        ordinal = self._fifo_n.get(name, 0)
        self._fifo_n[name] = ordinal + 1
        windows = self._fifo_sites.get(name)
        if not windows:
            return values
        for spec, lo, hi in windows:
            if lo <= ordinal < hi:
                if spec.kind == FaultKind.FIFO_DROP:
                    lost = min(spec.param, len(values))
                    if lost:
                        episode = self._fire(spec)
                        self._pending_drops.setdefault(name, []).append(
                            (episode, list(values[-lost:]))
                        )
                        return list(values[:-lost])
                else:
                    episode = self._fire(spec)
                    self._pending_dups.setdefault(name, []).append(episode)
        return values

    def has_fifo_event(self, fifo) -> bool:
        name = fifo.name
        return name in self._pending_drops or name in self._pending_dups

    def fifo_link_recovery(self, pe, segment, fifo):
        """Drain the link's fault ledger: discard dups, retransmit drops.

        Retransmission re-sends exactly the lost tail words before the
        sender pushes anything further, so the receiver's word order is
        preserved; a retransmitted push can itself be hit by another drop
        fault, which simply loops.
        """
        policy = self.policy
        name = fifo.name
        dups = self._pending_dups.pop(name, None)
        if dups:
            for episode in dups:
                yield policy.dup_penalty_cycles
                self._resolve(episode, "recovered")
        while True:
            drops = self._pending_drops.pop(name, None)
            if not drops:
                return
            for episode, lost in drops:
                yield policy.retransmit_penalty_cycles
                while fifo.space < len(lost):
                    yield fifo.wait_space()
                yield from segment.occupy(pe.name, len(lost), write=True)
                fifo.push(lost)
                self._resolve(episode, "recovered")

    # ------------------------------------------------------------------
    # Arbiter grant faults
    # ------------------------------------------------------------------
    def intercept_grant(self, arbiter, master: str, grant) -> bool:
        """Queued-dispatch hook: swallow the grant pulse if a fault fires.

        The arbiter state (owner, busy accounting) is already updated --
        the grant was *issued*, its pulse just never reached the master.
        A watchdog timer redelivers it after ``watchdog_cycles``.
        """
        name = arbiter.name
        ordinal = self._disp_n.get(name, 0)
        self._disp_n[name] = ordinal + 1
        windows = self._lost_sites.get(name)
        if not windows:
            return False
        for spec, lo, hi in windows:
            if lo <= ordinal < hi:
                episode = self._fire(spec)
                self.sim.process(
                    self._redeliver(episode, grant, master),
                    "faults.redeliver.%s" % name,
                )
                return True
        return False

    def _redeliver(self, episode: dict, grant, master: str):
        yield self.policy.watchdog_cycles
        grant.succeed(master)
        self.grant_redeliveries += 1
        self._resolve(episode, "recovered")

    def spawn_stuck_masters(self) -> None:
        """One ghost process per GRANT_STUCK fault (zero for other plans)."""
        arbiters = {
            segment.arbiter.name: segment.arbiter
            for segment in self.machine.segments.values()
        }
        for spec in self._stuck_specs:
            arbiter = arbiters.get(spec.site)
            if arbiter is not None:
                self.sim.process(
                    self._stuck_master(spec, arbiter),
                    "faults.ghost.%s" % spec.site,
                )

    def _stuck_master(self, spec: FaultSpec, arbiter):
        ghost = "ghost@%s#%d" % (spec.site, spec.at)
        if spec.at > 0:
            yield spec.at
        if not arbiter.try_claim(ghost):
            yield arbiter.request(ghost)
        episode = self._fire(spec)
        # The ghost never releases on its own; the watchdog reclaims the
        # grant after its window (bounded by the fault's own hold).
        yield min(spec.param, self.policy.watchdog_cycles)
        arbiter.release(ghost)
        self.watchdog_reclaims += 1
        self._resolve(episode, "recovered")

    def acquire(self, segment, master: str):
        """Guarded arbitration: grant raced against an escalating timeout.

        A timeout expiry never cancels the request (the watchdog is the
        recovery agent; the grant usually arrives during a later window) --
        but exhausting ``max_escalations`` doublings with no grant declares
        the bus dead: the request is *withdrawn* from the arbiter before
        raising :class:`BusTimeoutError`, so a grant issued afterwards can
        never land on a master that stopped listening and wedge the
        segment for everyone else.
        """
        arbiter = segment.arbiter
        if arbiter.try_claim(master):
            return
        grant = arbiter.request(master)
        sim = self.sim
        wait = self.policy.timeout_cycles
        for _attempt in range(self.policy.max_escalations):
            yield sim.any_of((grant, sim.timeout(wait)))
            if grant.triggered:
                return
            self.timeouts += 1
            obs = self.machine._obs
            if obs is not None and obs.tracer.enabled:
                obs.tracer.fault(sim.now, segment.name, "bus_timeout", "detect")
            wait <<= 1
        arbiter.cancel(master, grant)
        raise BusTimeoutError(
            "%s: no grant for %s after %d timeout escalations (%d cycles)"
            % (segment.name, master, self.policy.max_escalations, wait)
        )

    # ------------------------------------------------------------------
    # Latency faults (accounted: detected wait states, no data at risk)
    # ------------------------------------------------------------------
    def memory_jitter(self, name: str) -> int:
        ordinal = self._mem_n.get(name, 0)
        self._mem_n[name] = ordinal + 1
        windows = self._jitter_sites.get(name)
        if not windows:
            return 0
        extra = 0
        for spec, lo, hi in windows:
            if lo <= ordinal < hi:
                episode = self._fire(spec)
                self._resolve(episode, "accounted")
                extra += spec.param
        return extra

    def bridge_delay(self, name: str) -> int:
        ordinal = self._bridge_n.get(name, 0)
        self._bridge_n[name] = ordinal + 1
        windows = self._bridge_sites.get(name)
        if not windows:
            return 0
        extra = 0
        for spec, lo, hi in windows:
            if lo <= ordinal < hi:
                episode = self._fire(spec)
                self._resolve(episode, "accounted")
                extra += spec.param
        return extra

    # ------------------------------------------------------------------
    # PE crash/restart
    # ------------------------------------------------------------------
    def crash_due(self, pe_name: str) -> bool:
        ordinal = self._pe_n.get(pe_name, 0)
        self._pe_n[pe_name] = ordinal + 1
        windows = self._crash_sites.get(pe_name)
        if not windows:
            return False
        for spec, lo, hi in windows:
            if lo <= ordinal < hi:
                self._due_crash = spec
                return True
        return False

    def crash_restart(self, pe):
        """Cold restart: caches invalidated, warm-fetch state reset."""
        spec = self._due_crash
        self._due_crash = None
        episode = self._fire(spec)
        pe.icache.flush()
        pe.dcache.flush()
        pe._fetch_warm = False
        pe._fetch_cursor = 0
        pe._cycle_carry = 0.0
        pe.stats.stall_cycles += spec.param
        yield spec.param
        self._resolve(episode, "accounted")


def install_faults(
    machine, plan: FaultPlan, policy: Optional[RecoveryPolicy] = None
) -> FaultInjector:
    """Wire ``plan`` into every model of ``machine``; returns the injector.

    Installing an empty plan is a supported no-op: every hook sees inert
    trigger tables and no recovery process is spawned, so the run stays
    bit-identical to an uninstrumented machine.
    """
    # Fault hooks live on the generic transaction paths; drop any
    # compiled-backend specialized dispatch first.
    machine._despecialize()
    injector = FaultInjector(machine, plan, policy)
    machine._faults = injector
    for segment in machine.segments.values():
        segment.faults = injector
        segment.arbiter.faults = injector
    for block in machine.fifo_blocks.values():
        block.up.faults = injector
        block.down.faults = injector
    for device in machine.devices.values():
        if device.kind == "memory":
            device.target.faults = injector
    for bridge in machine.bridges:
        bridge.faults = injector
    for pe in machine.pes.values():
        pe.faults = injector
    injector.spawn_stuck_masters()
    return injector
