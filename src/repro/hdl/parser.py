"""Structural Verilog parser (verification round-trip).

Parses the subset of Verilog that BusSyn emits and that the Module Library
templates use, back into the :mod:`repro.hdl.ast` structures, so the test
suite and the lint pass can check generated output without an external
simulator:

* module headers with port lists,
* ``parameter`` declarations,
* ``input``/``output``/``inout`` declarations with ranges,
* ``wire``/``reg`` declarations (regs are modelled as wires for structure),
* ``assign`` statements (LHS/RHS kept as opaque text),
* instances with named port connections and ``#(...)`` overrides,
* behavioural regions (``always``/``initial``/``function``/``task``),
  captured verbatim as raw blocks.

Anything outside this subset raises :class:`VerilogParseError` rather than
being silently skipped -- generated output must stay inside the subset.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    Assign,
    Design,
    Instance,
    Module,
    Parameter,
    Port,
    PortConnection,
    Range,
    RawBlock,
    Wire,
)

__all__ = ["VerilogParseError", "parse_modules", "parse_design"]

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_RANGE_RE = re.compile(r"\[\s*(-?\d+)\s*:\s*(-?\d+)\s*\]")
_KEYWORDS = {
    "module",
    "endmodule",
    "parameter",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "assign",
    "always",
    "initial",
    "function",
    "endfunction",
    "task",
    "endtask",
    "integer",
    "genvar",
    "generate",
    "endgenerate",
    "begin",
    "end",
    "case",
    "casez",
    "casex",
    "endcase",
    "if",
    "else",
    "fork",
    "join",
}


class VerilogParseError(ValueError):
    pass


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def _parse_range(text: str) -> Tuple[Optional[Range], str]:
    """Leading [msb:lsb] range, if any; returns (range, rest)."""
    text = text.strip()
    match = _RANGE_RE.match(text)
    if not match:
        return None, text
    return Range(int(match.group(1)), int(match.group(2))), text[match.end() :].strip()


def _split_decl_names(text: str) -> List[str]:
    names = []
    for part in text.split(","):
        name = part.strip().rstrip(";").strip()
        if name:
            if not re.fullmatch(_IDENT, name):
                raise VerilogParseError("bad declaration name %r" % name)
            names.append(name)
    return names


class _Scanner:
    """Token-ish cursor over comment-stripped source text."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def eof(self) -> bool:
        self._skip_space()
        return self.position >= len(self.text)

    def _skip_space(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def peek_word(self) -> str:
        self._skip_space()
        match = re.compile(_IDENT).match(self.text, self.position)
        return match.group(0) if match else ""

    def take_word(self) -> str:
        word = self.peek_word()
        if not word:
            raise VerilogParseError(
                "expected identifier near %r" % self.text[self.position : self.position + 40]
            )
        self.position += len(word)
        return word

    def expect(self, literal: str) -> None:
        self._skip_space()
        if not self.text.startswith(literal, self.position):
            raise VerilogParseError(
                "expected %r near %r"
                % (literal, self.text[self.position : self.position + 40])
            )
        self.position += len(literal)

    def take_until(self, terminator: str) -> str:
        """Consume up to (and including) ``terminator`` at nesting level 0."""
        depth = 0
        start = self.position
        index = self.position
        text = self.text
        while index < len(text):
            char = text[index]
            if char in "([{":
                depth += 1
            elif char in ")]}":
                depth -= 1
            elif text.startswith(terminator, index) and depth == 0:
                chunk = text[start:index]
                self.position = index + len(terminator)
                return chunk
            index += 1
        raise VerilogParseError("unterminated statement: missing %r" % terminator)

    def take_balanced_parens(self) -> str:
        """Consume a '(' ... ')' group, returning the inner text."""
        self.expect("(")
        depth = 1
        start = self.position
        text = self.text
        index = self.position
        while index < len(text):
            char = text[index]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    self.position = index + 1
                    return text[start:index]
            index += 1
        raise VerilogParseError("unbalanced parentheses")

    def take_behavioural(self, opener: str) -> str:
        """Capture an always/initial/function/task region verbatim."""
        start = self.position - len(opener)
        if opener in ("function", "task"):
            closer = "end" + opener
            end = self.text.find(closer, self.position)
            if end < 0:
                raise VerilogParseError("missing %s" % closer)
            self.position = end + len(closer)
            return self.text[start : self.position]
        # always/initial: either a begin...end block (with nesting, where
        # case/fork blocks also close with end-words) or a single statement.
        self._skip_space()
        probe = re.compile(r"@\s*", re.S).match(self.text, self.position)
        if probe:
            self.position = probe.end()
            self.take_balanced_parens()
        self._skip_space()
        if self.peek_word() == "begin":
            depth = 0
            word_re = re.compile(
                r"\b(begin|case|casez|casex|fork|end|endcase|join)\b"
            )
            index = self.position
            while True:
                match = word_re.search(self.text, index)
                if not match:
                    raise VerilogParseError("unterminated begin block")
                if match.group(0) in ("begin", "case", "casez", "casex", "fork"):
                    depth += 1
                else:
                    depth -= 1
                index = match.end()
                if depth == 0:
                    self.position = index
                    return self.text[start : self.position]
        else:
            self.take_until(";")
            return self.text[start : self.position]


def parse_modules(source: str) -> List[Module]:
    """Parse every module in ``source``."""
    scanner = _Scanner(_strip_comments(source))
    modules: List[Module] = []
    while not scanner.eof():
        word = scanner.take_word()
        if word != "module":
            raise VerilogParseError("expected 'module', found %r" % word)
        modules.append(_parse_module_body(scanner))
    return modules


def _parse_module_body(scanner: _Scanner) -> Module:
    name = scanner.take_word()
    module = Module(name)
    scanner._skip_space()
    if scanner.text.startswith("(", scanner.position):
        header = scanner.take_balanced_parens()
        header_ports = [p.strip() for p in header.split(",") if p.strip()]
    else:
        header_ports = []
    scanner.expect(";")
    declared_order = {port_name: index for index, port_name in enumerate(header_ports)}
    port_map = {}

    while True:
        word = scanner.peek_word()
        if not word:
            raise VerilogParseError("unexpected end of module %s" % name)
        if word == "endmodule":
            scanner.take_word()
            break
        scanner.take_word()
        if word == "parameter":
            body = scanner.take_until(";")
            for piece in body.split(","):
                pname, _, value = piece.partition("=")
                module.parameters.append(Parameter(pname.strip(), value.strip()))
        elif word in ("input", "output", "inout"):
            body = scanner.take_until(";")
            rng, rest = _parse_range(body)
            for port_name in _split_decl_names(rest):
                port = Port(port_name, word, rng)
                port_map[port_name] = port
        elif word in ("wire", "reg", "integer", "genvar"):
            body = scanner.take_until(";")
            rng, rest = _parse_range(body)
            # Memories (reg [..] name [..]) carry a second, per-word range;
            # structurally we keep the name with its element range.
            if word in ("wire", "reg"):
                for piece in rest.split(","):
                    name_text = piece.strip().rstrip(";").strip()
                    if not name_text:
                        continue
                    name_text = re.sub(r"\[\s*-?\d+\s*:\s*-?\d+\s*\]$", "", name_text).strip()
                    if not re.fullmatch(_IDENT, name_text):
                        raise VerilogParseError("bad declaration name %r" % name_text)
                    if port_map.get(name_text) is None and module.wire(name_text) is None:
                        module.wires.append(Wire(name_text, rng))
        elif word == "assign":
            body = scanner.take_until(";")
            target, _, expression = body.partition("=")
            if not expression:
                raise VerilogParseError("malformed assign %r" % body)
            module.assigns.append(Assign(target.strip(), expression.strip()))
        elif word in ("always", "initial", "function", "task"):
            module.raw_blocks.append(RawBlock(scanner.take_behavioural(word)))
        elif re.fullmatch(_IDENT, word) and word not in _KEYWORDS:
            module.instances.append(_parse_instance(scanner, word))
        else:
            raise VerilogParseError("unsupported construct %r in module %s" % (word, name))

    # Order ports per the header list.
    ports = sorted(
        port_map.values(), key=lambda p: declared_order.get(p.name, len(declared_order))
    )
    missing = [p for p in header_ports if p not in port_map]
    if missing:
        raise VerilogParseError(
            "module %s: header ports %r lack direction declarations" % (name, missing)
        )
    module.ports = ports
    return module


def _parse_instance(scanner: _Scanner, module_name: str) -> Instance:
    overrides: List[Parameter] = []
    scanner._skip_space()
    if scanner.text.startswith("#", scanner.position):
        scanner.position += 1
        body = scanner.take_balanced_parens()
        for piece in re.findall(r"\.(%s)\s*\(([^)]*)\)" % _IDENT, body):
            overrides.append(Parameter(piece[0], piece[1].strip()))
    instance_name = scanner.take_word()
    body = scanner.take_balanced_parens()
    scanner.expect(";")
    connections = [
        PortConnection(port, expression.strip())
        for port, expression in re.findall(
            r"\.(%s)\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)" % _IDENT, body
        )
    ]
    return Instance(module_name, instance_name, connections, overrides)


def parse_design(source: str, top: Optional[str] = None) -> Design:
    design = Design()
    for module in parse_modules(source):
        design.add(module)
    design.top = top
    return design
