"""Elaboration and lint checks over generated Verilog.

The paper verified generated bus systems by co-simulation in Seamless CVE;
our substitute static check elaborates the design hierarchy and verifies
the structural properties that make the output well-formed:

* every instantiated module is defined (or whitelisted as an external IP
  core, e.g. the MPC755 processor model);
* every named connection targets a real port of the instantiated module;
* no required port is left dangling;
* connected signal widths match the port widths (slices respected);
* every connection expression refers to declared wires/ports;
* no two outputs drive the same wire (multiple-driver check).

Findings are returned as :class:`LintMessage` lists; ``errors_only`` filters
severity.  The generator's tests require zero errors on every preset.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .ast import Design, Instance, Module, PortConnection, Range

__all__ = ["LintMessage", "lint_design", "elaborate"]

# IP cores referenced but not generated (definition G: a PE is an IP core,
# not a Module); their port lists are supplied by the Module Library stubs,
# but a design may also reference them as black boxes.
DEFAULT_BLACKBOXES: Set[str] = set()

_SLICE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_$]*)\s*\[\s*(\d+)\s*(?::\s*(\d+)\s*)?\]$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
# Sized/based literals: Verilog base letters are case-insensitive and may
# carry a signed marker (8'HFF, 4'sb1010); rejecting those made
# _expression_width return None and silently skip the width check.
_LITERAL_RE = re.compile(r"^(\d+)?'[sS]?([bdhoBDHO])[0-9a-fA-FxzXZ_]+$|^\d+$")


@dataclass
class LintMessage:
    severity: str  # 'error' | 'warning'
    where: str
    text: str

    def __str__(self) -> str:
        return "[%s] %s: %s" % (self.severity, self.where, self.text)


def _expression_width(module: Module, expression: str) -> Optional[int]:
    """Width of a connection expression, None when undecidable."""
    text = expression.strip()
    if not text:
        return 0
    if text.startswith("{") and text.endswith("}"):
        inner = _split_concat(text[1:-1])
        total = 0
        for piece in inner:
            width = _expression_width(module, piece)
            if width is None:
                return None
            total += width
        return total
    literal = _LITERAL_RE.match(text)
    if literal:
        if "'" in text:
            size = text.split("'")[0]
            return int(size) if size else None
        return None  # unsized decimal literal
    sliced = _SLICE_RE.match(text)
    if sliced:
        name, msb, lsb = sliced.group(1), int(sliced.group(2)), sliced.group(3)
        base = module.signal_width(name)
        if base is None:
            return None
        if lsb is None:
            return 1
        return abs(msb - int(lsb)) + 1
    if _IDENT_RE.match(text):
        return module.signal_width(text)
    return None  # complex expression: width not checked


def _split_concat(text: str) -> List[str]:
    pieces: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "," and depth == 0:
            pieces.append(current)
            current = ""
            continue
        if char in "({[":
            depth += 1
        elif char in ")}]":
            depth -= 1
        current += char
    if current.strip():
        pieces.append(current)
    return [p.strip() for p in pieces]


def _referenced_signals(expression: str) -> List[str]:
    """Identifiers appearing in a connection expression."""
    cleaned = re.sub(r"\d+'[sS]?[bdhoBDHO][0-9a-fA-FxzXZ_]+", " ", expression)
    return [
        match
        for match in re.findall(r"[A-Za-z_][A-Za-z0-9_$]*", cleaned)
        if match not in ("b", "d", "h", "o", "B", "D", "H", "O")
    ]


def lint_design(
    design: Design,
    blackboxes: Optional[Set[str]] = None,
) -> List[LintMessage]:
    """Run all structural checks; returns the full message list."""
    blackboxes = set(blackboxes or DEFAULT_BLACKBOXES)
    messages: List[LintMessage] = []
    for module in design.modules.values():
        messages.extend(_lint_module(design, module, blackboxes))
    if design.top and design.top not in design.modules:
        messages.append(
            LintMessage("error", "design", "top module %r is not defined" % design.top)
        )
    return messages


def _lint_module(design: Design, module: Module, blackboxes: Set[str]) -> List[LintMessage]:
    messages: List[LintMessage] = []
    where = "module %s" % module.name

    # Duplicate declarations.
    seen: Set[str] = set()
    for port in module.ports:
        if port.name in seen:
            messages.append(
                LintMessage("error", where, "duplicate port %r" % port.name)
            )
        seen.add(port.name)
    for wire in module.wires:
        if wire.name in seen:
            messages.append(
                LintMessage("error", where, "wire %r shadows another signal" % wire.name)
            )
        seen.add(wire.name)

    drivers: Dict[str, List[str]] = {}

    for assign in module.assigns:
        lhs = assign.target.strip()
        if lhs.startswith("{") and lhs.endswith("}"):
            pieces = _split_concat(lhs[1:-1])
        else:
            pieces = [lhs]
        for piece in pieces:
            target = piece.split("[")[0].strip()
            if target and module.signal_width(target) is None:
                messages.append(
                    LintMessage(
                        "error", where, "assign drives undeclared signal %r" % target
                    )
                )
        drivers.setdefault(lhs, []).append("assign")

    for instance in module.instances:
        messages.extend(
            _lint_instance(design, module, instance, blackboxes, drivers)
        )

    for target, sources in drivers.items():
        if len(sources) > 1 and target:
            messages.append(
                LintMessage(
                    "error",
                    where,
                    "signal %r has %d drivers (%s)"
                    % (target, len(sources), ", ".join(sources)),
                )
            )
    return messages


def _lint_instance(
    design: Design,
    parent: Module,
    instance: Instance,
    blackboxes: Set[str],
    drivers: Dict[str, List[str]],
) -> List[LintMessage]:
    messages: List[LintMessage] = []
    where = "module %s / instance %s" % (parent.name, instance.name)

    if instance.module in blackboxes:
        target: Optional[Module] = None
    elif instance.module in design.modules:
        target = design.modules[instance.module]
    else:
        return [
            LintMessage(
                "error",
                where,
                "instantiates undefined module %r" % instance.module,
            )
        ]

    connected: Set[str] = set()
    for connection in instance.connections:
        if connection.port in connected:
            messages.append(
                LintMessage("error", where, "port %r connected twice" % connection.port)
            )
        connected.add(connection.port)

        for signal in _referenced_signals(connection.expression):
            if parent.signal_width(signal) is None:
                messages.append(
                    LintMessage(
                        "error",
                        where,
                        "connection .%s(%s) references undeclared signal %r"
                        % (connection.port, connection.expression, signal),
                    )
                )

        if target is None:
            continue
        port = target.port(connection.port)
        if port is None:
            messages.append(
                LintMessage(
                    "error",
                    where,
                    "module %s has no port %r" % (instance.module, connection.port),
                )
            )
            continue
        width = _expression_width(parent, connection.expression)
        if width is not None and width != port.width and connection.expression.strip():
            messages.append(
                LintMessage(
                    "error",
                    where,
                    "width mismatch on .%s: port is %d bits, expression %r is %d"
                    % (connection.port, port.width, connection.expression, width),
                )
            )
        if port.direction == "output":
            expr = connection.expression.strip()
            if expr:
                drivers.setdefault(expr, []).append(
                    "%s.%s" % (instance.name, connection.port)
                )

    if target is not None:
        for port in target.ports:
            if port.name not in connected and port.direction != "inout":
                messages.append(
                    LintMessage(
                        "warning",
                        where,
                        "port %r of %s left dangling" % (port.name, instance.module),
                    )
                )
    return messages


def elaborate(design: Design, top: Optional[str] = None) -> Dict[str, int]:
    """Walk the hierarchy from ``top``; returns instance counts per module.

    Raises ``KeyError`` on undefined non-blackbox modules, which the tests
    use as a hard structural check.
    """
    top = top or design.top
    if top is None:
        raise ValueError("no top module given")
    counts: Dict[str, int] = {}

    def visit(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1
        module = design.modules.get(name)
        if module is None:
            return
        for instance in module.instances:
            visit(instance.module)

    visit(top)
    return counts
