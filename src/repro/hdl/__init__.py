"""Verilog substrate: structural AST, emitter, parser and lint."""

from .ast import (
    Assign,
    Design,
    Instance,
    Module,
    Parameter,
    Port,
    PortConnection,
    Range,
    RawBlock,
    Wire,
)
from .emitter import emit_design, emit_module
from .lint import LintMessage, elaborate, lint_design
from .parser import VerilogParseError, parse_design, parse_modules

__all__ = [
    "Assign",
    "Design",
    "Instance",
    "Module",
    "Parameter",
    "Port",
    "PortConnection",
    "Range",
    "RawBlock",
    "Wire",
    "emit_design",
    "emit_module",
    "LintMessage",
    "elaborate",
    "lint_design",
    "VerilogParseError",
    "parse_design",
    "parse_modules",
]
