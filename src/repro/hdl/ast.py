"""Structural Verilog AST.

BusSyn emits synthesizable Verilog HDL (Figure 18's output).  This module
defines the small structural subset the generator needs: modules with
parameters and ports, wire declarations, continuous assignments, instances
with named port connections, and opaque behavioural bodies (the Module
Library's leaf templates carry their ``always`` blocks as verbatim text --
the generator never needs to reason inside them).

The same AST is produced by the parser (:mod:`repro.hdl.parser`) when
reading generated output back for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Range",
    "Port",
    "Wire",
    "Parameter",
    "Assign",
    "PortConnection",
    "Instance",
    "RawBlock",
    "Module",
    "Design",
]


@dataclass(frozen=True)
class Range:
    """A bit range ``[msb:lsb]``; None-equivalent is width 1 (no range)."""

    msb: int
    lsb: int = 0

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1

    def __str__(self) -> str:
        return "[%d:%d]" % (self.msb, self.lsb)


@dataclass
class Port:
    name: str
    direction: str  # 'input' | 'output' | 'inout'
    range: Optional[Range] = None

    DIRECTIONS = ("input", "output", "inout")

    @property
    def width(self) -> int:
        return self.range.width if self.range else 1

    def __post_init__(self):
        if self.direction not in self.DIRECTIONS:
            raise ValueError("bad port direction %r" % self.direction)


@dataclass
class Wire:
    name: str
    range: Optional[Range] = None

    @property
    def width(self) -> int:
        return self.range.width if self.range else 1


@dataclass
class Parameter:
    name: str
    value: str  # kept textual: numbers or simple expressions


@dataclass
class Assign:
    target: str  # full LHS expression text
    expression: str  # RHS text (opaque)


@dataclass
class PortConnection:
    port: str
    expression: str  # usually a wire name or a slice "w[7:0]"

    @property
    def base_signal(self) -> str:
        """The identifier at the root of the expression ('' if literal)."""
        text = self.expression.strip()
        if not text or text.startswith(("{", "'", '"')) or text[0].isdigit():
            return ""
        for index, char in enumerate(text):
            if not (char.isalnum() or char == "_" or char == "$"):
                return text[:index]
        return text


@dataclass
class Instance:
    module: str
    name: str
    connections: List[PortConnection] = field(default_factory=list)
    parameter_overrides: List[Parameter] = field(default_factory=list)

    def connection(self, port: str) -> Optional[PortConnection]:
        for conn in self.connections:
            if conn.port == port:
                return conn
        return None


@dataclass
class RawBlock:
    """Verbatim behavioural text (always blocks, functions, ...)."""

    text: str


@dataclass
class Module:
    name: str
    ports: List[Port] = field(default_factory=list)
    parameters: List[Parameter] = field(default_factory=list)
    wires: List[Wire] = field(default_factory=list)
    assigns: List[Assign] = field(default_factory=list)
    instances: List[Instance] = field(default_factory=list)
    raw_blocks: List[RawBlock] = field(default_factory=list)

    def port(self, name: str) -> Optional[Port]:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def wire(self, name: str) -> Optional[Wire]:
        for wire in self.wires:
            if wire.name == name:
                return wire
        return None

    def signal_width(self, name: str) -> Optional[int]:
        """Width of a port or wire by name, None when undeclared."""
        port = self.port(name)
        if port is not None:
            return port.width
        wire = self.wire(name)
        if wire is not None:
            return wire.width
        return None

    def add_wire(self, name: str, width: int = 1) -> Wire:
        if self.wire(name) is not None:
            raise ValueError("duplicate wire %r in module %s" % (name, self.name))
        wire = Wire(name, Range(width - 1, 0) if width > 1 else None)
        self.wires.append(wire)
        return wire


@dataclass
class Design:
    """A set of modules; ``top`` names the root of the hierarchy."""

    modules: Dict[str, Module] = field(default_factory=dict)
    top: Optional[str] = None

    def add(self, module: Module) -> Module:
        if module.name in self.modules:
            raise ValueError("duplicate module %r" % module.name)
        self.modules[module.name] = module
        return module

    def module(self, name: str) -> Module:
        return self.modules[name]

    def __contains__(self, name: str) -> bool:
        return name in self.modules
