"""Verilog text emission from the structural AST.

Produces the synthesizable Verilog HDL files that are BusSyn's output
(Figure 18).  Formatting follows the Verilog-1995 style of the paper's
library listings (Figure 14): module header with a port list, parameter
declarations, port direction declarations, wires, assigns, instances with
named connections, then any verbatim behavioural blocks.
"""

from __future__ import annotations

from typing import List

from .ast import Design, Instance, Module

__all__ = ["emit_module", "emit_design"]

_INDENT = "  "


def _port_decl(port) -> str:
    range_text = (" %s" % port.range) if port.range else ""
    return "%s%s %s;" % (port.direction, range_text, port.name)


def _wire_decl(wire) -> str:
    range_text = (" %s" % wire.range) if wire.range else ""
    return "wire%s %s;" % (range_text, wire.name)


def _emit_instance(instance: Instance) -> List[str]:
    lines: List[str] = []
    header = instance.module
    if instance.parameter_overrides:
        overrides = ", ".join(
            ".%s(%s)" % (p.name, p.value) for p in instance.parameter_overrides
        )
        header += " #(%s)" % overrides
    lines.append("%s%s %s (" % (_INDENT, header, instance.name))
    for index, connection in enumerate(instance.connections):
        comma = "," if index < len(instance.connections) - 1 else ""
        lines.append(
            "%s.%s(%s)%s" % (_INDENT * 2, connection.port, connection.expression, comma)
        )
    lines.append("%s);" % _INDENT)
    return lines


def emit_module(module: Module) -> str:
    """Render one module as Verilog text."""
    lines: List[str] = []
    port_names = ", ".join(port.name for port in module.ports)
    lines.append("module %s(%s);" % (module.name, port_names))
    for parameter in module.parameters:
        lines.append("%sparameter %s = %s;" % (_INDENT, parameter.name, parameter.value))
    if module.parameters:
        lines.append("")
    for port in module.ports:
        lines.append(_INDENT + _port_decl(port))
    if module.ports:
        lines.append("")
    for wire in module.wires:
        lines.append(_INDENT + _wire_decl(wire))
    if module.wires:
        lines.append("")
    for assign in module.assigns:
        lines.append("%sassign %s = %s;" % (_INDENT, assign.target, assign.expression))
    if module.assigns:
        lines.append("")
    for instance in module.instances:
        lines.extend(_emit_instance(instance))
        lines.append("")
    for block in module.raw_blocks:
        for raw_line in block.text.strip("\n").split("\n"):
            lines.append(_INDENT + raw_line if raw_line.strip() else "")
        lines.append("")
    while lines and not lines[-1].strip():
        lines.pop()
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def emit_design(design: Design) -> str:
    """Render every module, top last (readable bottom-up order)."""
    names = [name for name in design.modules if name != design.top]
    ordered = sorted(names)
    if design.top:
        ordered.append(design.top)
    return "\n".join(emit_module(design.modules[name]) for name in ordered)
