"""The user-option input file: Figure 18's input sequence as text.

The paper's BusSyn takes its configuration as an ordered option list (the
right-hand box of Figure 18; Examples 9 and 10 walk it).  This module
parses that sequence from a small text format whose keys mirror the user
option numbers::

    # Example 9's BFBA system
    bus_system            1          # option 1: number of Bus Subsystems
    subsystem SUB1
      bans                4          # option 2.1
      bus BFBA                       # options 2.2/2.3 (repeat per bus)
        address_width     32         # option 3.1
        data_width        64         # option 3.2
        fifo_depth        1024       # option 3.3 (BFBA only)
      ban A                          # option 4 (repeat per BAN)
        cpu               MPC755     # option 4.1
        memories          1          # option 4.3
        memory SRAM 20 64            # option 5 (type, addr width, data width)
      ban B
        cpu MPC755
        memory SRAM 20 64
      ...

Conveniences: ``bans N`` with fewer explicit ``ban`` blocks fills the rest
by repeating the last BAN's shape with the next letters; ``ban G global``
marks the global-resource BAN; ``ban FFT ip DCT attach B`` declares a
hardware-IP BAN (Example 8).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .presets import ban_letters
from .schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
)

__all__ = ["parse_option_text", "parse_option_file", "render_option_text"]


def _tokens(text: str) -> List[Tuple[int, List[str]]]:
    """Comment-stripped, tokenized lines, each with its 1-based line number."""
    lines = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append((lineno, line.split()))
    return lines


def _arg(fields: List[str], pos: int, lineno: int, what: str) -> str:
    """The ``pos``-th token of a line, or an OptionError naming what's missing."""
    try:
        return fields[pos]
    except IndexError:
        raise OptionError(
            "line %d: %r expects %s after %r"
            % (lineno, fields[0], what, " ".join(fields))
        )


def _int_arg(fields: List[str], pos: int, lineno: int, what: str) -> int:
    token = _arg(fields, pos, lineno, what)
    try:
        return int(token)
    except ValueError:
        raise OptionError(
            "line %d: %r expects an integer %s, got %r"
            % (lineno, fields[0], what, token)
        )


def parse_option_text(text: str, name: str = "USER") -> BusSystemSpec:
    """Parse an option file into a validated BusSystemSpec.

    Malformed input raises :class:`OptionError` carrying the 1-based line
    number and the offending token, e.g. ``line 7: 'bans' expects an
    integer count, got 'four'`` -- the CLI relays it on stderr and exits
    non-zero.
    """
    lines = _tokens(text)
    index = 0
    subsystem_count: Optional[int] = None
    subsystems: List[BusSubsystemSpec] = []
    current_sub: Optional[BusSubsystemSpec] = None
    current_bus: Optional[BusSpec] = None
    current_ban: Optional[BANSpec] = None
    declared_bans: Optional[int] = None

    def finish_subsystem():
        nonlocal current_sub, current_bus, current_ban, declared_bans
        if current_sub is None:
            return
        if declared_bans is not None and len(current_sub.pe_bans) < declared_bans:
            # Fill the remaining BANs by repeating the last explicit shape.
            template = current_sub.pe_bans[-1] if current_sub.pe_bans else None
            if template is None:
                raise OptionError(
                    "subsystem %s declares %d bans but defines none"
                    % (current_sub.name, declared_bans)
                )
            taken = {ban.name for ban in current_sub.bans}
            for letter in ban_letters(declared_bans * 2):
                if len(current_sub.pe_bans) >= declared_bans:
                    break
                if letter in taken:
                    continue
                clone = BANSpec(
                    name=letter,
                    cpu_type=template.cpu_type,
                    memories=[
                        MemorySpec(m.memory_type, m.address_width, m.data_width,
                                   name="SRAM_%s" % letter)
                        for m in template.memories
                    ],
                )
                current_sub.bans.append(clone)
        subsystems.append(current_sub)
        current_sub = None
        current_bus = None
        current_ban = None
        declared_bans = None

    while index < len(lines):
        lineno, fields = lines[index]
        key = fields[0].lower()
        index += 1
        if key == "bus_system":
            subsystem_count = _int_arg(fields, 1, lineno, "subsystem count")
        elif key == "subsystem":
            finish_subsystem()
            current_sub = BusSubsystemSpec(
                name=_arg(fields, 1, lineno, "a subsystem name"), bans=[], buses=[]
            )
            current_ban = None
            current_bus = None
        elif key == "bans":
            declared_bans = _int_arg(fields, 1, lineno, "BAN count")
        elif key == "bus":
            if current_sub is None:
                raise OptionError(
                    "line %d: 'bus' outside a subsystem (declare 'subsystem "
                    "<name>' first)" % lineno
                )
            current_bus = BusSpec(bus_type=_arg(fields, 1, lineno, "a bus type").upper())
            current_sub.buses.append(current_bus)
            current_ban = None
        elif key in ("address_width", "data_width", "fifo_depth", "grant_cycles"):
            if current_bus is None:
                raise OptionError(
                    "line %d: %r outside a bus block (declare 'bus <type>' first)"
                    % (lineno, key)
                )
            setattr(current_bus, key, _int_arg(fields, 1, lineno, "value"))
        elif key == "arbiter":
            if current_bus is None:
                raise OptionError(
                    "line %d: 'arbiter' outside a bus block (declare 'bus "
                    "<type>' first)" % lineno
                )
            current_bus.arbiter_policy = _arg(fields, 1, lineno, "a policy name").lower()
        elif key == "ban":
            if current_sub is None:
                raise OptionError(
                    "line %d: 'ban' outside a subsystem (declare 'subsystem "
                    "<name>' first)" % lineno
                )
            current_ban = BANSpec(
                name=_arg(fields, 1, lineno, "a BAN name"), cpu_type="NONE", memories=[]
            )
            modifiers = [f.lower() for f in fields[2:]]
            if "global" in modifiers:
                current_ban.is_global_resource = True
            if "ip" in modifiers:
                ip_index = modifiers.index("ip")
                current_ban.non_cpu_type = _arg(
                    fields, 2 + ip_index + 1, lineno, "an IP type after 'ip'"
                ).upper()
                if "attach" in modifiers:
                    attach_index = modifiers.index("attach")
                    current_ban.ip_attach = _arg(
                        fields, 2 + attach_index + 1, lineno,
                        "a BAN name after 'attach'",
                    )
            current_sub.bans.append(current_ban)
        elif key == "cpu":
            if current_ban is None:
                raise OptionError(
                    "line %d: 'cpu' outside a ban block (declare 'ban <name>' "
                    "first)" % lineno
                )
            current_ban.cpu_type = _arg(fields, 1, lineno, "a CPU type").upper()
        elif key == "memories":
            pass  # informational count (user option 4.3); blocks follow
        elif key == "memory":
            if current_ban is None:
                raise OptionError(
                    "line %d: 'memory' outside a ban block (declare 'ban "
                    "<name>' first)" % lineno
                )
            memory = MemorySpec(
                memory_type=_arg(fields, 1, lineno, "a memory type").upper(),
                address_width=_int_arg(fields, 2, lineno, "address width"),
                data_width=_int_arg(fields, 3, lineno, "data width"),
            )
            prefix = "GLOBAL_SRAM" if current_ban.is_global_resource else "SRAM"
            memory.name = "%s_%s" % (prefix, current_ban.name)
            current_ban.memories.append(memory)
        else:
            raise OptionError(
                "line %d: unknown option %r (full line: %r)"
                % (lineno, fields[0], " ".join(fields))
            )
    finish_subsystem()

    if subsystem_count is not None and subsystem_count != len(subsystems):
        raise OptionError(
            "bus_system declares %d subsystems but %d are defined"
            % (subsystem_count, len(subsystems))
        )
    spec = BusSystemSpec(name=name, subsystems=subsystems)
    spec.validate()
    return spec


def parse_option_file(path: str, name: Optional[str] = None) -> BusSystemSpec:
    """Parse an option file; errors are re-raised with the path prefixed."""
    with open(path) as handle:
        text = handle.read()
    import os

    try:
        return parse_option_text(
            text, name or os.path.splitext(os.path.basename(path))[0].upper()
        )
    except OptionError as error:
        raise OptionError("%s: %s" % (path, error))


def render_option_text(spec: BusSystemSpec) -> str:
    """Inverse of :func:`parse_option_text` (round-trips in tests)."""
    lines = ["bus_system %d" % len(spec.subsystems)]
    for subsystem in spec.subsystems:
        lines.append("subsystem %s" % subsystem.name)
        lines.append("  bans %d" % len(subsystem.pe_bans))
        for bus in subsystem.buses:
            lines.append("  bus %s" % bus.bus_type)
            lines.append("    address_width %d" % bus.address_width)
            lines.append("    data_width %d" % bus.data_width)
            if bus.fifo_depth:
                lines.append("    fifo_depth %d" % bus.fifo_depth)
            if bus.grant_cycles != 3:
                lines.append("    grant_cycles %d" % bus.grant_cycles)
            if bus.arbiter_policy != "fcfs":
                lines.append("    arbiter %s" % bus.arbiter_policy)
        for ban in subsystem.bans:
            modifiers = ""
            if ban.is_global_resource:
                modifiers = " global"
            elif ban.non_cpu_type != "NONE":
                modifiers = " ip %s" % ban.non_cpu_type
                if ban.ip_attach:
                    modifiers += " attach %s" % ban.ip_attach
            lines.append("  ban %s%s" % (ban.name, modifiers))
            if ban.has_pe:
                lines.append("    cpu %s" % ban.cpu_type)
            for memory in ban.memories:
                lines.append(
                    "    memory %s %d %d"
                    % (memory.memory_type, memory.address_width, memory.data_width)
                )
    return "\n".join(lines) + "\n"
