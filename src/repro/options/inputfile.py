"""The user-option input file: Figure 18's input sequence as text.

The paper's BusSyn takes its configuration as an ordered option list (the
right-hand box of Figure 18; Examples 9 and 10 walk it).  This module
parses that sequence from a small text format whose keys mirror the user
option numbers::

    # Example 9's BFBA system
    bus_system            1          # option 1: number of Bus Subsystems
    subsystem SUB1
      bans                4          # option 2.1
      bus BFBA                       # options 2.2/2.3 (repeat per bus)
        address_width     32         # option 3.1
        data_width        64         # option 3.2
        fifo_depth        1024       # option 3.3 (BFBA only)
      ban A                          # option 4 (repeat per BAN)
        cpu               MPC755     # option 4.1
        memories          1          # option 4.3
        memory SRAM 20 64            # option 5 (type, addr width, data width)
      ban B
        cpu MPC755
        memory SRAM 20 64
      ...

Conveniences: ``bans N`` with fewer explicit ``ban`` blocks fills the rest
by repeating the last BAN's shape with the next letters; ``ban G global``
marks the global-resource BAN; ``ban FFT ip DCT attach B`` declares a
hardware-IP BAN (Example 8).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .presets import ban_letters
from .schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
)

__all__ = ["parse_option_text", "parse_option_file", "render_option_text"]


def _tokens(text: str) -> List[List[str]]:
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line.split())
    return lines


def parse_option_text(text: str, name: str = "USER") -> BusSystemSpec:
    """Parse an option file into a validated BusSystemSpec."""
    lines = _tokens(text)
    index = 0
    subsystem_count: Optional[int] = None
    subsystems: List[BusSubsystemSpec] = []
    current_sub: Optional[BusSubsystemSpec] = None
    current_bus: Optional[BusSpec] = None
    current_ban: Optional[BANSpec] = None
    declared_bans: Optional[int] = None

    def finish_subsystem():
        nonlocal current_sub, current_bus, current_ban, declared_bans
        if current_sub is None:
            return
        if declared_bans is not None and len(current_sub.pe_bans) < declared_bans:
            # Fill the remaining BANs by repeating the last explicit shape.
            template = current_sub.pe_bans[-1] if current_sub.pe_bans else None
            if template is None:
                raise OptionError(
                    "subsystem %s declares %d bans but defines none"
                    % (current_sub.name, declared_bans)
                )
            taken = {ban.name for ban in current_sub.bans}
            for letter in ban_letters(declared_bans * 2):
                if len(current_sub.pe_bans) >= declared_bans:
                    break
                if letter in taken:
                    continue
                clone = BANSpec(
                    name=letter,
                    cpu_type=template.cpu_type,
                    memories=[
                        MemorySpec(m.memory_type, m.address_width, m.data_width,
                                   name="SRAM_%s" % letter)
                        for m in template.memories
                    ],
                )
                current_sub.bans.append(clone)
        subsystems.append(current_sub)
        current_sub = None
        current_bus = None
        current_ban = None
        declared_bans = None

    while index < len(lines):
        fields = lines[index]
        key = fields[0].lower()
        index += 1
        if key == "bus_system":
            subsystem_count = int(fields[1])
        elif key == "subsystem":
            finish_subsystem()
            current_sub = BusSubsystemSpec(name=fields[1], bans=[], buses=[])
            current_ban = None
            current_bus = None
        elif key == "bans":
            declared_bans = int(fields[1])
        elif key == "bus":
            if current_sub is None:
                raise OptionError("'bus' outside a subsystem")
            current_bus = BusSpec(bus_type=fields[1].upper())
            current_sub.buses.append(current_bus)
            current_ban = None
        elif key in ("address_width", "data_width", "fifo_depth", "grant_cycles"):
            if current_bus is None:
                raise OptionError("'%s' outside a bus block" % key)
            setattr(current_bus, key, int(fields[1]))
        elif key == "arbiter":
            if current_bus is None:
                raise OptionError("'arbiter' outside a bus block")
            current_bus.arbiter_policy = fields[1].lower()
        elif key == "ban":
            if current_sub is None:
                raise OptionError("'ban' outside a subsystem")
            current_ban = BANSpec(name=fields[1], cpu_type="NONE", memories=[])
            modifiers = [f.lower() for f in fields[2:]]
            if "global" in modifiers:
                current_ban.is_global_resource = True
            if "ip" in modifiers:
                ip_index = modifiers.index("ip")
                current_ban.non_cpu_type = fields[2 + ip_index + 1].upper()
                if "attach" in modifiers:
                    attach_index = modifiers.index("attach")
                    current_ban.ip_attach = fields[2 + attach_index + 1]
            current_sub.bans.append(current_ban)
        elif key == "cpu":
            if current_ban is None:
                raise OptionError("'cpu' outside a ban block")
            current_ban.cpu_type = fields[1].upper()
        elif key == "memories":
            pass  # informational count (user option 4.3); blocks follow
        elif key == "memory":
            if current_ban is None:
                raise OptionError("'memory' outside a ban block")
            memory = MemorySpec(
                memory_type=fields[1].upper(),
                address_width=int(fields[2]),
                data_width=int(fields[3]),
            )
            prefix = "GLOBAL_SRAM" if current_ban.is_global_resource else "SRAM"
            memory.name = "%s_%s" % (prefix, current_ban.name)
            current_ban.memories.append(memory)
        else:
            raise OptionError("unknown option line: %s" % " ".join(fields))
    finish_subsystem()

    if subsystem_count is not None and subsystem_count != len(subsystems):
        raise OptionError(
            "bus_system declares %d subsystems but %d are defined"
            % (subsystem_count, len(subsystems))
        )
    spec = BusSystemSpec(name=name, subsystems=subsystems)
    spec.validate()
    return spec


def parse_option_file(path: str, name: Optional[str] = None) -> BusSystemSpec:
    with open(path) as handle:
        text = handle.read()
    import os

    return parse_option_text(
        text, name or os.path.splitext(os.path.basename(path))[0].upper()
    )


def render_option_text(spec: BusSystemSpec) -> str:
    """Inverse of :func:`parse_option_text` (round-trips in tests)."""
    lines = ["bus_system %d" % len(spec.subsystems)]
    for subsystem in spec.subsystems:
        lines.append("subsystem %s" % subsystem.name)
        lines.append("  bans %d" % len(subsystem.pe_bans))
        for bus in subsystem.buses:
            lines.append("  bus %s" % bus.bus_type)
            lines.append("    address_width %d" % bus.address_width)
            lines.append("    data_width %d" % bus.data_width)
            if bus.fifo_depth:
                lines.append("    fifo_depth %d" % bus.fifo_depth)
            if bus.grant_cycles != 3:
                lines.append("    grant_cycles %d" % bus.grant_cycles)
            if bus.arbiter_policy != "fcfs":
                lines.append("    arbiter %s" % bus.arbiter_policy)
        for ban in subsystem.bans:
            modifiers = ""
            if ban.is_global_resource:
                modifiers = " global"
            elif ban.non_cpu_type != "NONE":
                modifiers = " ip %s" % ban.non_cpu_type
                if ban.ip_attach:
                    modifiers += " attach %s" % ban.ip_attach
            lines.append("  ban %s%s" % (ban.name, modifiers))
            if ban.has_pe:
                lines.append("    cpu %s" % ban.cpu_type)
            for memory in ban.memories:
                lines.append(
                    "    memory %s %d %d"
                    % (memory.memory_type, memory.address_width, memory.data_width)
                )
    return "\n".join(lines) + "\n"
