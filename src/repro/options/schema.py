"""User-option schema: the input constraints of Figure 18.

BusSyn is configured by a small hierarchy of options:

1. *Bus System Property* -- number of Bus Subsystems;
2. *Bus Subsystem Property* -- number of BANs, number of buses, bus type;
3. *Bus Property* -- address width, data width, Bi-FIFO depth (BFBA only);
4. *BAN Property* -- CPU type / Non-CPU type, number of memories;
5. *Memory Property* -- memory type, address width, data width.

These map onto the dataclasses below.  ``validate()`` enforces the legality
rules spelled out in section V.B (e.g. a Bi-FIFO depth is only meaningful
for BFBA buses; a BAN holds at most one PE -- definition F).

The same spec object drives both halves of the reproduction: Verilog
generation (:mod:`repro.core`) and simulation (:mod:`repro.sim.fabric`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "OptionError",
    "MemorySpec",
    "BANSpec",
    "BusSpec",
    "BusSubsystemSpec",
    "BusSystemSpec",
    "BUS_TYPES",
    "CPU_TYPES",
    "NON_CPU_TYPES",
    "MEMORY_TYPES",
]

# Vocabulary from Figure 18's user input list (extended with the two
# hand-designed baselines so that one spec language covers every system
# in the evaluation).
BUS_TYPES = ("GBAVI", "GBAVII", "GBAVIII", "BFBA", "SPLITBA", "GGBA", "CCBA")
CPU_TYPES = ("NONE", "MPC750", "MPC755", "MPC7410", "ARM9TDMI")
NON_CPU_TYPES = ("NONE", "DCT", "MPEG2")
MEMORY_TYPES = ("NONE", "SRAM", "DRAM", "DPRAM", "FIFO")


class OptionError(ValueError):
    """An illegal combination of user options."""


@dataclass
class MemorySpec:
    """User option 5: one memory block inside a BAN."""

    memory_type: str = "SRAM"
    address_width: int = 20
    data_width: int = 64
    name: str = ""

    @property
    def size_bytes(self) -> int:
        """Physical capacity: 2^address_width locations of data_width bits."""
        return (1 << self.address_width) * (self.data_width // 8)

    @property
    def size_words(self) -> int:
        """Capacity in 32-bit words (the software-visible unit)."""
        return self.size_bytes // 4

    def validate(self, where: str) -> None:
        if self.memory_type not in MEMORY_TYPES:
            raise OptionError(
                "%s: memory type %r not in %s" % (where, self.memory_type, MEMORY_TYPES)
            )
        if self.memory_type == "NONE":
            return
        if not 8 <= self.address_width <= 32:
            raise OptionError(
                "%s: memory address width %d outside [8, 32]" % (where, self.address_width)
            )
        if self.data_width not in (8, 16, 32, 64, 128):
            raise OptionError(
                "%s: memory data width %d not a supported bus width" % (where, self.data_width)
            )


@dataclass
class BANSpec:
    """User option 4: one Bus Access Node."""

    name: str
    cpu_type: str = "MPC755"
    non_cpu_type: str = "NONE"
    memories: List[MemorySpec] = field(default_factory=list)
    is_global_resource: bool = False
    # For hardware-IP BANs (non_cpu_type != NONE): the PE BAN this IP hangs
    # off through dedicated wires, like BAN FFT off BAN B in Example 8.
    ip_attach: Optional[str] = None

    @property
    def has_pe(self) -> bool:
        return self.cpu_type != "NONE"

    def validate(self) -> None:
        where = "BAN %s" % self.name
        if self.cpu_type not in CPU_TYPES:
            raise OptionError("%s: CPU type %r not in %s" % (where, self.cpu_type, CPU_TYPES))
        if self.non_cpu_type not in NON_CPU_TYPES:
            raise OptionError(
                "%s: Non-CPU type %r not in %s" % (where, self.non_cpu_type, NON_CPU_TYPES)
            )
        if self.cpu_type != "NONE" and self.non_cpu_type != "NONE":
            raise OptionError(
                "%s: a BAN holds at most one processing element "
                "(definition F): CPU %r and non-CPU %r both requested"
                % (where, self.cpu_type, self.non_cpu_type)
            )
        if self.is_global_resource and not self.memories:
            raise OptionError("%s: a global-resource BAN must carry a memory" % where)
        if self.ip_attach is not None and self.non_cpu_type == "NONE":
            raise OptionError(
                "%s: ip_attach is only meaningful for hardware-IP BANs" % where
            )
        for memory in self.memories:
            memory.validate(where)


@dataclass
class BusSpec:
    """User option 3: one bus inside a subsystem."""

    bus_type: str = "GBAVIII"
    address_width: int = 32
    data_width: int = 64
    fifo_depth: int = 0
    arbiter_policy: str = "fcfs"
    grant_cycles: int = 3
    write_grant_cycles: Optional[int] = None

    def validate(self, where: str) -> None:
        if self.bus_type not in BUS_TYPES:
            raise OptionError("%s: bus type %r not in %s" % (where, self.bus_type, BUS_TYPES))
        if not 16 <= self.address_width <= 64:
            raise OptionError("%s: address width %d outside [16, 64]" % (where, self.address_width))
        if self.data_width not in (32, 64, 128):
            raise OptionError("%s: data width %d not in (32, 64, 128)" % (where, self.data_width))
        if self.bus_type == "BFBA":
            if self.fifo_depth <= 0:
                raise OptionError("%s: BFBA requires a positive Bi-FIFO depth" % where)
        elif self.fifo_depth:
            raise OptionError(
                "%s: Bi-FIFO depth is only available for BFBA (got bus type %r)"
                % (where, self.bus_type)
            )
        if self.grant_cycles < 1:
            raise OptionError("%s: grant cycles must be >= 1" % where)

    @property
    def effective_write_grant(self) -> int:
        return self.grant_cycles if self.write_grant_cycles is None else self.write_grant_cycles


@dataclass
class BusSubsystemSpec:
    """User option 2: one Bus Subsystem (definition H)."""

    name: str
    bans: List[BANSpec] = field(default_factory=list)
    buses: List[BusSpec] = field(default_factory=list)

    @property
    def pe_bans(self) -> List[BANSpec]:
        return [ban for ban in self.bans if ban.has_pe]

    @property
    def ip_bans(self) -> List[BANSpec]:
        return [ban for ban in self.bans if ban.non_cpu_type != "NONE"]

    @property
    def global_bans(self) -> List[BANSpec]:
        return [ban for ban in self.bans if ban.is_global_resource]

    def bus_of_type(self, bus_type: str) -> Optional[BusSpec]:
        for bus in self.buses:
            if bus.bus_type == bus_type:
                return bus
        return None

    def validate(self) -> None:
        where = "subsystem %s" % self.name
        if not self.bans:
            raise OptionError("%s: at least one BAN is required" % where)
        if not self.buses:
            raise OptionError("%s: at least one bus is required" % where)
        names = [ban.name for ban in self.bans]
        if len(set(names)) != len(names):
            raise OptionError("%s: duplicate BAN names %r" % (where, names))
        seen_types = set()
        for bus in self.buses:
            bus.validate(where)
            if bus.bus_type in seen_types:
                raise OptionError("%s: duplicate bus type %r" % (where, bus.bus_type))
            seen_types.add(bus.bus_type)
        for ban in self.bans:
            ban.validate()
        global_bus_types = {"GBAVII", "GBAVIII", "SPLITBA", "GGBA", "CCBA"}
        if seen_types & global_bus_types and not self.global_bans:
            raise OptionError(
                "%s: a global-bus type (%s) requires a global-resource BAN"
                % (where, ", ".join(sorted(seen_types & global_bus_types)))
            )
        pe_names = {ban.name for ban in self.pe_bans}
        for ip_ban in self.ip_bans:
            if ip_ban.ip_attach is None:
                raise OptionError(
                    "%s: hardware-IP BAN %s needs ip_attach (its host PE BAN)"
                    % (where, ip_ban.name)
                )
            if ip_ban.ip_attach not in pe_names:
                raise OptionError(
                    "%s: IP BAN %s attaches to unknown PE BAN %r"
                    % (where, ip_ban.name, ip_ban.ip_attach)
                )


@dataclass
class BusSystemSpec:
    """User option 1: the whole Bus System (definition I)."""

    name: str
    subsystems: List[BusSubsystemSpec] = field(default_factory=list)
    # Bridges between subsystems, as (subsystem_name, subsystem_name) pairs.
    # When empty and there are >= 2 subsystems, a chain is implied.
    bridges: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def all_bans(self) -> List[BANSpec]:
        return [ban for subsystem in self.subsystems for ban in subsystem.bans]

    @property
    def pe_count(self) -> int:
        return sum(1 for ban in self.all_bans if ban.has_pe)

    @property
    def total_memory_bytes(self) -> int:
        return sum(
            memory.size_bytes
            for ban in self.all_bans
            for memory in ban.memories
            if memory.memory_type != "NONE"
        )

    def effective_bridges(self) -> List[Tuple[str, str]]:
        if self.bridges:
            return list(self.bridges)
        names = [subsystem.name for subsystem in self.subsystems]
        return list(zip(names, names[1:]))

    def subsystem(self, name: str) -> BusSubsystemSpec:
        for subsystem in self.subsystems:
            if subsystem.name == name:
                return subsystem
        raise KeyError("no subsystem named %r" % name)

    def validate(self) -> None:
        if not self.subsystems:
            raise OptionError("bus system %s: at least one subsystem required" % self.name)
        names = [subsystem.name for subsystem in self.subsystems]
        if len(set(names)) != len(names):
            raise OptionError("bus system %s: duplicate subsystem names" % self.name)
        for subsystem in self.subsystems:
            subsystem.validate()
        valid = set(names)
        for left, right in self.effective_bridges():
            if left not in valid or right not in valid:
                raise OptionError(
                    "bus system %s: bridge (%s, %s) references unknown subsystem"
                    % (self.name, left, right)
                )
            if left == right:
                raise OptionError(
                    "bus system %s: bridge may not loop a subsystem to itself" % self.name
                )
        ban_names = [ban.name for ban in self.all_bans]
        if len(set(ban_names)) != len(ban_names):
            raise OptionError("bus system %s: duplicate BAN names across subsystems" % self.name)
