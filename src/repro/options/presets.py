"""Preset Bus System specifications.

Builders for the five generated architectures of section IV.B (BFBA, GBAVI,
GBAVIII, Hybrid, SplitBA) and the two hand-designed baselines (GGBA,
Figure 9; CCBA, Figure 8), each parameterized by processor count.

Defaults follow the paper's experiments: 4 PEs, 8 MB SRAM per BAN
(address width 20, data width 64 -- Example 9), 32-bit address / 64-bit
data buses, 1024-word Bi-FIFOs, for 32 MB total memory.
"""

from __future__ import annotations

from typing import List, Optional

from .schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
)

__all__ = [
    "ban_letters",
    "bfba",
    "gbavi",
    "gbavii",
    "gbaviii",
    "hybrid",
    "splitba",
    "ggba",
    "ccba",
    "preset",
    "PRESETS",
]


def ban_letters(count: int) -> List[str]:
    """BAN names A, B, C, ... skipping G (reserved for global-resource BANs)."""
    letters = []
    code = ord("A")
    while len(letters) < count:
        letter = chr(code)
        if letter != "G":
            letters.append(letter)
        code += 1
        if code > ord("Z"):
            # Beyond 25 PEs, switch to A1, B1, ... (BusSyn supports any count).
            break
    index = 1
    while len(letters) < count:
        for base in "ABCDEFHIJKLMNOPQRSTUVWXYZ":
            letters.append("%s%d" % (base, index))
            if len(letters) == count:
                break
        index += 1
    return letters


def _sram(name: str, address_width: int = 20, data_width: int = 64) -> MemorySpec:
    return MemorySpec("SRAM", address_width, data_width, name=name)


def _pe_ban(letter: str, cpu_type: str, local_memory: bool, mem_aw: int) -> BANSpec:
    memories = [_sram("SRAM_%s" % letter, mem_aw)] if local_memory else []
    return BANSpec(name=letter, cpu_type=cpu_type, memories=memories)


def _global_ban(name: str, mem_aw: int) -> BANSpec:
    return BANSpec(
        name=name,
        cpu_type="NONE",
        memories=[_sram("GLOBAL_SRAM_%s" % name, mem_aw)],
        is_global_resource=True,
    )


def bfba(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    fifo_depth: int = 1024,
    mem_address_width: int = 20,
) -> BusSystemSpec:
    """Bi-FIFO Bus Architecture (Figure 4): FIFOs between adjacent BANs."""
    letters = ban_letters(pe_count)
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=[_pe_ban(l, cpu_type, True, mem_address_width) for l in letters],
        buses=[BusSpec("BFBA", fifo_depth=fifo_depth)],
    )
    spec = BusSystemSpec(name="BFBA", subsystems=[subsystem])
    spec.validate()
    return spec


def gbavi(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    mem_address_width: int = 20,
) -> BusSystemSpec:
    """Global Bus Architecture Version I (Figure 3): bridge-segmented bus."""
    letters = ban_letters(pe_count)
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=[_pe_ban(l, cpu_type, True, mem_address_width) for l in letters],
        buses=[BusSpec("GBAVI")],
    )
    spec = BusSystemSpec(name="GBAVI", subsystems=[subsystem])
    spec.validate()
    return spec


def gbavii(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    mem_address_width: int = 20,
    global_address_width: int = 20,
) -> BusSystemSpec:
    """Global Bus Architecture Version II (extension).

    The paper presents GBAVII in [1] but omits it from automated generation
    "due to space constraints; however, if desired, the GBAVII bus could
    easily be added to our tool" (section IV.B).  We add it with the
    natural interpolation between versions I and III: the bridge-segmented
    global bus of GBAVI *plus* a global-memory BAN on the ring, reachable
    through the bus bridges (no dedicated global arbiter -- each segment's
    own arbitration serializes access on the way).
    """
    letters = ban_letters(pe_count)
    bans = [_pe_ban(l, cpu_type, True, mem_address_width) for l in letters]
    bans.append(_global_ban("G", global_address_width))
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=bans,
        buses=[BusSpec("GBAVII")],
    )
    spec = BusSystemSpec(name="GBAVII", subsystems=[subsystem])
    spec.validate()
    return spec


def gbaviii(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    mem_address_width: int = 20,
    global_address_width: int = 20,
    grant_cycles: int = 3,
    name: str = "GBAVIII",
) -> BusSystemSpec:
    """Global Bus Architecture Version III (Figure 5): global arbiter+memory."""
    letters = ban_letters(pe_count)
    bans = [_pe_ban(l, cpu_type, True, mem_address_width) for l in letters]
    bans.append(_global_ban("G", global_address_width))
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=bans,
        buses=[BusSpec("GBAVIII", grant_cycles=grant_cycles)],
    )
    spec = BusSystemSpec(name=name, subsystems=[subsystem])
    spec.validate()
    return spec


def hybrid(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    fifo_depth: int = 1024,
    mem_address_width: int = 20,
    global_address_width: int = 20,
) -> BusSystemSpec:
    """Hybrid (Figure 6): BFBA Bi-FIFOs plus a GBAVIII global bus."""
    letters = ban_letters(pe_count)
    bans = [_pe_ban(l, cpu_type, True, mem_address_width) for l in letters]
    bans.append(_global_ban("G", global_address_width))
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=bans,
        buses=[
            BusSpec("BFBA", fifo_depth=fifo_depth),
            BusSpec("GBAVIII"),
        ],
    )
    spec = BusSystemSpec(name="HYBRID", subsystems=[subsystem])
    spec.validate()
    return spec


def splitba(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    mem_address_width: int = 20,
    global_address_width: int = 20,
) -> BusSystemSpec:
    """Split Bus Architecture (Figure 7): two bridged global-bus subsystems.

    Each subsystem carries half the PEs plus its own shared memory and
    arbiter; a Bus Bridge joins the two halves.
    """
    if pe_count < 2:
        raise OptionError("SplitBA needs at least 2 PEs (one per subsystem)")
    letters = ban_letters(pe_count)
    half = (pe_count + 1) // 2
    subsystems = []
    for index, chunk in enumerate((letters[:half], letters[half:]), start=1):
        bans = [_pe_ban(l, cpu_type, False, mem_address_width) for l in chunk]
        bans.append(_global_ban("G%d" % index, global_address_width))
        subsystems.append(
            BusSubsystemSpec(
                name="SUB%d" % index,
                bans=bans,
                buses=[BusSpec("SPLITBA")],
            )
        )
    spec = BusSystemSpec(name="SPLITBA", subsystems=subsystems)
    spec.validate()
    return spec


def ggba(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    global_address_width: int = 22,
) -> BusSystemSpec:
    """General Global Bus Architecture (Figure 9, hand-design baseline).

    One global bus, one arbiter, one shared memory; the PEs have *no* local
    memories -- program and local data live in the shared memory, which is
    the source of the extra arbitration traffic in observation (B).
    """
    letters = ban_letters(pe_count)
    bans = [_pe_ban(l, cpu_type, False, 20) for l in letters]
    bans.append(_global_ban("G", global_address_width))
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=bans,
        buses=[BusSpec("GGBA")],
    )
    spec = BusSystemSpec(name="GGBA", subsystems=[subsystem])
    spec.validate()
    return spec


def ccba(
    pe_count: int = 4,
    cpu_type: str = "MPC755",
    mem_address_width: int = 20,
    global_address_width: int = 20,
) -> BusSystemSpec:
    """CoreConnect-style baseline (Figure 8, hand design).

    Modelled as a PLB: a single arbitrated bus with a 5-cycle read grant
    (versus 3 for the generated buses -- the margin called out under
    Table III); per-PE SRAMs and the shared memory all sit behind the PLB.
    """
    letters = ban_letters(pe_count)
    bans = [_pe_ban(l, cpu_type, True, mem_address_width) for l in letters]
    bans.append(_global_ban("G", global_address_width))
    subsystem = BusSubsystemSpec(
        name="SUB1",
        bans=bans,
        buses=[BusSpec("CCBA", grant_cycles=5, write_grant_cycles=3)],
    )
    spec = BusSystemSpec(name="CCBA", subsystems=[subsystem])
    spec.validate()
    return spec


PRESETS = {
    "BFBA": bfba,
    "GBAVI": gbavi,
    "GBAVII": gbavii,
    "GBAVIII": gbaviii,
    "HYBRID": hybrid,
    "SPLITBA": splitba,
    "GGBA": ggba,
    "CCBA": ccba,
}


def preset(name: str, pe_count: int = 4, **kwargs) -> BusSystemSpec:
    """Build a preset Bus System by name (case-insensitive)."""
    try:
        builder = PRESETS[name.upper()]
    except KeyError:
        raise OptionError(
            "unknown preset %r (expected one of %s)" % (name, ", ".join(sorted(PRESETS)))
        )
    return builder(pe_count, **kwargs)
