"""User options for BusSyn (Figure 18 of the paper)."""

from .schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
    BUS_TYPES,
    CPU_TYPES,
    NON_CPU_TYPES,
    MEMORY_TYPES,
)
from . import presets
from .inputfile import parse_option_file, parse_option_text, render_option_text

__all__ = [
    "BANSpec",
    "BusSpec",
    "BusSubsystemSpec",
    "BusSystemSpec",
    "MemorySpec",
    "OptionError",
    "BUS_TYPES",
    "CPU_TYPES",
    "NON_CPU_TYPES",
    "MEMORY_TYPES",
    "presets",
    "parse_option_file",
    "parse_option_text",
    "render_option_text",
]
