"""Command-line interface: ``python -m repro``.

The user-facing face of BusSyn -- Figure 18's flow from the shell::

    python -m repro generate --preset GBAVIII --pes 4 --out ./generated
    python -m repro generate --options my_system.txt --out ./generated
    python -m repro simulate --preset SPLITBA --app ofdm --style FPA
    python -m repro table 2          # reprint a table of the paper
    python -m repro list             # available presets / components

``generate`` writes one ``.v`` per module plus ``<top>_all.v`` and a
``report.txt`` (generation time, gate count, lint result).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.busyn import BusSyn
from .options import presets
from .options.inputfile import parse_option_file

__all__ = ["main"]


def _load_spec(args):
    if args.options:
        return parse_option_file(args.options)
    return presets.preset(args.preset, args.pes)


def _cmd_generate(args) -> int:
    spec = _load_spec(args)
    generated = BusSyn().generate(spec)
    report = generated.report
    errors = generated.lint_errors()
    os.makedirs(args.out, exist_ok=True)
    files = generated.files()
    for file_name, text in files.items():
        with open(os.path.join(args.out, file_name), "w") as handle:
            handle.write(text)
    with open(os.path.join(args.out, "%s_all.v" % generated.top_name), "w") as handle:
        handle.write(generated.verilog())
    with open(os.path.join(args.out, "report.txt"), "w") as handle:
        handle.write(report.row() + "\n")
        handle.write("lint errors: %d\n" % len(errors))
        for name, gates in sorted(report.gate_breakdown.items()):
            handle.write("  %-30s %8d gates\n" % (name, gates))
    print(report.row())
    print("lint: %s" % ("clean" if not errors else "%d errors" % len(errors)))
    print("wrote %d Verilog files to %s" % (len(files) + 1, args.out))
    return 1 if errors else 0


def _cmd_simulate(args) -> int:
    from .sim.fabric import build_machine

    spec = _load_spec(args)
    machine = build_machine(spec)
    if args.app == "ofdm":
        from .apps.ofdm import OfdmParameters, run_ofdm

        result = run_ofdm(machine, args.style, OfdmParameters(packets=args.packets))
        print(
            "%s OFDM %s: %.4f Mbps (%d cycles, %.2f ms)"
            % (spec.name, args.style, result.throughput_mbps, result.cycles,
               result.seconds * 1e3)
        )
    elif args.app == "mpeg2":
        from .apps.mpeg2.codec import synthetic_video
        from .apps.mpeg2.parallel import run_mpeg2

        result = run_mpeg2(machine, synthetic_video(args.frames))
        print(
            "%s MPEG2: %.4f Mbps (%d GOPs, %d frames decoded)"
            % (spec.name, result.throughput_mbps, result.gops, len(result.frames))
        )
    elif args.app == "database":
        from .apps.database import run_database

        result = run_database(machine)
        print(
            "%s database: %.0f ns (%d tasks)"
            % (spec.name, result.execution_time_ns, result.tasks_completed)
        )
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit("unknown app %r" % args.app)
    return 0


def _cmd_table(args) -> int:
    from .experiments import table2, table3, table4, table5

    module = {2: table2, 3: table3, 4: table4, 5: table5}[args.number]
    module.main(jobs=args.jobs)
    return 0


# One representative (worker, case, kwargs) per table for ``repro profile``.
_PROFILE_CASES = {
    2: ("repro.experiments.table2", "run_table2_case", (7, "SPLITBA", "FPA")),
    3: ("repro.experiments.table3", "run_table3_case", (10, "BFBA")),
    4: ("repro.experiments.table4", "run_table4_case", (15, "GGBA")),
    5: ("repro.experiments.table5", "run_table5_case", ("HYBRID", 24)),
}


def _cmd_profile(args) -> int:
    """Run one representative case of a table under cProfile and print the
    top cumulative-time hotspots (the workflow behind the kernel fast
    paths; see benchmarks/perf_harness.py for the regression side)."""
    import cProfile
    import importlib
    import pstats

    module_name, worker_name, case = _PROFILE_CASES[args.number]
    worker = getattr(importlib.import_module(module_name), worker_name)
    profiler = cProfile.Profile()
    profiler.enable()
    result = worker(case)
    profiler.disable()
    print("profiled %s.%s(%r)" % (module_name, worker_name, case))
    print("result: %r" % (result,))
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_list(_args) -> int:
    from .moduledb import default_library

    print("presets:", ", ".join(sorted(presets.PRESETS)))
    print("library components:")
    for component in default_library().components():
        print("  %s" % component)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BusSyn: automated bus generation for multiprocessor SoC design",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec_arguments(p):
        p.add_argument("--preset", default="GBAVIII", help="bus architecture preset")
        p.add_argument("--pes", type=int, default=4, help="processor count")
        p.add_argument("--options", help="user-option input file (Figure 18 format)")

    generate = sub.add_parser("generate", help="generate synthesizable Verilog")
    add_spec_arguments(generate)
    generate.add_argument("--out", default="./generated", help="output directory")
    generate.set_defaults(func=_cmd_generate)

    simulate = sub.add_parser("simulate", help="run an application on the bus system")
    add_spec_arguments(simulate)
    simulate.add_argument("--app", choices=["ofdm", "mpeg2", "database"], default="ofdm")
    simulate.add_argument("--style", choices=["PPA", "FPA"], default="FPA")
    simulate.add_argument("--packets", type=int, default=4)
    simulate.add_argument("--frames", type=int, default=16)
    simulate.set_defaults(func=_cmd_simulate)

    table = sub.add_parser("table", help="reprint a table of the paper")
    table.add_argument("number", type=int, choices=[2, 3, 4, 5])
    table.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cases (1 = run inline)",
    )
    table.set_defaults(func=_cmd_table)

    profile = sub.add_parser(
        "profile", help="profile one representative case of a table (cProfile)"
    )
    profile.add_argument("number", type=int, choices=[2, 3, 4, 5])
    profile.add_argument(
        "--top", type=int, default=20, help="hotspot lines to print"
    )
    profile.set_defaults(func=_cmd_profile)

    listing = sub.add_parser("list", help="list presets and library components")
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
