"""Command-line interface: ``python -m repro``.

The user-facing face of BusSyn -- Figure 18's flow from the shell::

    python -m repro generate --preset GBAVIII --pes 4 --out ./generated
    python -m repro generate --options my_system.txt --out ./generated
    python -m repro simulate --preset SPLITBA --app ofdm --style FPA
    python -m repro table 2          # reprint a table of the paper
    python -m repro list             # available presets / components

``generate`` writes one ``.v`` per module plus ``<top>_all.v`` and a
``report.txt`` (generation time, gate count, lint result).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.busyn import BusSyn
from .options import presets
from .options.inputfile import parse_option_file
from .options.schema import OptionError

__all__ = ["main"]


def _load_spec(args):
    if args.options:
        return parse_option_file(args.options)
    return presets.preset(args.preset, args.pes)


def _ledger_for(args):
    """The run ledger selected by ``--ledger``/``--no-ledger``, or None.

    Default directory: ``$REPRO_LEDGER`` or ``.repro/ledger`` under the
    current directory.  Every ledger-aware verb appends one RunRecord;
    ``repro report`` reads them back (docs/observability.md).
    """
    if getattr(args, "no_ledger", False):
        return None
    from .obs.ledger import DEFAULT_LEDGER_DIR, Ledger

    root = (
        getattr(args, "ledger", None)
        or os.environ.get("REPRO_LEDGER")
        or DEFAULT_LEDGER_DIR
    )
    return Ledger(root)


def _spec_options(args, spec, **extra):
    """The option surface that identifies a run (hashed into the ledger)."""
    options = {"arch": spec.name, "pes": spec.pe_count}
    if getattr(args, "options", None):
        options["options_file"] = args.options
    options.update(extra)
    return options


def _cmd_generate(args) -> int:
    spec = _load_spec(args)
    generated = BusSyn().generate(spec)
    report = generated.report
    messages = generated.lint()
    errors = [m for m in messages if m.severity == "error"]
    warnings = [m for m in messages if m.severity == "warning"]
    os.makedirs(args.out, exist_ok=True)
    files = generated.files()
    for file_name, text in files.items():
        with open(os.path.join(args.out, file_name), "w") as handle:
            handle.write(text)
    with open(os.path.join(args.out, "%s_all.v" % generated.top_name), "w") as handle:
        handle.write(generated.verilog())
    with open(os.path.join(args.out, "report.txt"), "w") as handle:
        handle.write(report.row() + "\n")
        handle.write("lint errors: %d\n" % len(errors))
        handle.write("lint warnings: %d\n" % len(warnings))
        for message in errors + warnings:
            handle.write("  %s\n" % message)
        for name, gates in sorted(report.gate_breakdown.items()):
            handle.write("  %-30s %8d gates\n" % (name, gates))
    print(report.row())
    if errors:
        lint_line = "%d errors, %d warnings" % (len(errors), len(warnings))
    elif warnings:
        lint_line = "clean, %d warnings" % len(warnings)
    else:
        lint_line = "clean"
    print("lint: %s" % lint_line)
    print("wrote %d Verilog files to %s" % (len(files) + 1, args.out))
    if errors or (args.strict and warnings):
        return 1
    return 0


def _run_app(machine, spec, args) -> dict:
    """Run the selected --app on ``machine``; print its headline line and
    return the run's summary dict (ledger payload)."""
    if args.app == "ofdm":
        from .apps.ofdm import OfdmParameters, run_ofdm

        result = run_ofdm(machine, args.style, OfdmParameters(packets=args.packets))
        print(
            "%s OFDM %s: %.4f Mbps (%d cycles, %.2f ms)"
            % (spec.name, args.style, result.throughput_mbps, result.cycles,
               result.seconds * 1e3)
        )
        return {
            "app": "ofdm",
            "style": args.style,
            "packets": args.packets,
            "cycles": result.cycles,
            "throughput_mbps": result.throughput_mbps,
        }
    elif args.app == "mpeg2":
        from .apps.mpeg2.codec import synthetic_video
        from .apps.mpeg2.parallel import run_mpeg2

        result = run_mpeg2(machine, synthetic_video(args.frames))
        print(
            "%s MPEG2: %.4f Mbps (%d GOPs, %d frames decoded)"
            % (spec.name, result.throughput_mbps, result.gops, len(result.frames))
        )
        return {
            "app": "mpeg2",
            "frames": args.frames,
            "gops": result.gops,
            "frames_decoded": len(result.frames),
            "throughput_mbps": result.throughput_mbps,
        }
    elif args.app == "database":
        from .apps.database import run_database

        result = run_database(machine)
        print(
            "%s database: %.0f ns (%d tasks)"
            % (spec.name, result.execution_time_ns, result.tasks_completed)
        )
        return {
            "app": "database",
            "execution_time_ns": result.execution_time_ns,
            "tasks_completed": result.tasks_completed,
        }
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit("unknown app %r" % args.app)


def _cmd_simulate(args) -> int:
    import time

    from .sim.fabric import build_machine

    spec = _load_spec(args)
    machine = build_machine(spec, kernel=args.kernel)
    start = time.perf_counter()
    summary = _run_app(machine, spec, args)
    wall = time.perf_counter() - start
    ledger = _ledger_for(args)
    if ledger is not None:
        backend = machine.sim.kernel_name
        ledger.write(
            "simulate",
            options=_spec_options(args, spec, kernel=backend, app=args.app),
            backend=backend,
            arch=spec.name,
            summary=summary,
            sim_cycles=machine.sim.now,
            wall_seconds=wall,
        )
    return 0


def _cmd_trace(args) -> int:
    """Run one app with the observability layer on; export the transaction
    trace (Chrome trace_event and/or JSONL) and the RunReport."""
    import time

    from .obs import Observability
    from .obs.tracer import write_chrome_trace, write_jsonl
    from .sim.fabric import build_machine

    spec = _load_spec(args)
    machine = build_machine(spec, kernel=args.kernel)
    obs = Observability()
    machine.attach_observability(obs)
    start = time.perf_counter()
    _run_app(machine, spec, args)
    wall = time.perf_counter() - start
    report = machine.run_report(
        wall_seconds=wall, name="%s %s" % (spec.name, args.app)
    )
    out = args.out
    if args.format in ("chrome", "both"):
        # The registry turns per-segment occupancy into Perfetto counter
        # tracks alongside the span lanes.
        write_chrome_trace(obs.tracer, out, registry=obs.registry)
        print("wrote Chrome trace %s (%d transactions) -- open in Perfetto"
              % (out, len(obs.tracer.transactions)))
    if args.format in ("jsonl", "both"):
        jsonl_out = out if args.format == "jsonl" else out + "l"
        write_jsonl(obs.tracer, jsonl_out)
        print("wrote JSONL trace %s" % jsonl_out)
    if args.report:
        report.to_json(args.report)
        print("wrote run report %s" % args.report)
    for line in report.summary_lines():
        print(line)
    return 0


# ``repro stats N``: scale knobs per table (full vs --quick sizing).
_STATS_SCALES = {
    2: ({"packets": 8}, {"packets": 2}),
    3: ({"frame_count": 16}, {"frame_count": 4}),
    4: ({"client_count": 40}, {"client_count": 10}),
    5: ({}, {"pe_counts": [1, 8]}),
}


def _cmd_stats(args) -> int:
    """Re-run one table with telemetry on; print per-case RunReports and the
    deterministic cross-case aggregate (optionally saved as JSON)."""
    import json

    from .experiments import table2, table3, table4, table5
    from .obs.report import RunReport, aggregate_run_reports

    runners = {
        2: table2.run_table2_telemetry,
        3: table3.run_table3_telemetry,
        4: table4.run_table4_telemetry,
        5: table5.run_table5_telemetry,
    }
    full, quick = _STATS_SCALES[args.number]
    scale = quick if args.quick else full
    rows, telemetry = runners[args.number](jobs=args.jobs, kernel=args.kernel, **scale)
    reports = [report for entry in telemetry for report in entry.run_reports]
    print("Table %d telemetry (%d cases, jobs=%d)" % (args.number, len(rows), args.jobs))
    for report_dict in reports:
        report = RunReport(**{
            key: report_dict[key]
            for key in (
                "name", "wall_seconds", "simulated_cycles", "events_processed",
                "peak_queue_depth", "segments", "pes", "fifos", "bridges", "extras",
            )
            if key in report_dict
        })
        for line in report.summary_lines():
            print(line)
    aggregate = aggregate_run_reports(reports)
    print(
        "aggregate: %d runs, %d cycles, %d events, overall utilization %.1f%%, "
        "peak queue depth %d"
        % (
            aggregate["runs"],
            aggregate["simulated_cycles"],
            aggregate["events_processed"],
            100.0 * aggregate["overall_utilization"],
            aggregate["peak_queue_depth"],
        )
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"table": args.number, "cases": reports, "aggregate": aggregate},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print("wrote %s" % args.out)
    return 0


def _cmd_table(args) -> int:
    import time

    from .experiments import table2, table3, table4, table5
    from .sim.kernel import default_kernel

    module = {2: table2, 3: table3, 4: table4, 5: table5}[args.number]
    start = time.perf_counter()
    rows = module.main(jobs=args.jobs, kernel=args.kernel)
    wall = time.perf_counter() - start
    ledger = _ledger_for(args)
    if ledger is not None:
        backend = args.kernel or default_kernel()
        ledger.write(
            "table",
            options={
                "table": args.number,
                "jobs": args.jobs,
                "kernel": backend,
            },
            backend=backend,
            arch=sorted({row.bus_system for row in rows}),
            summary={
                "table": args.number,
                "rows": [vars(row) for row in rows],
            },
            wall_seconds=wall,
        )
    return 0


def _cmd_bench(args) -> int:
    """Run the perf harness (repro.bench.harness) and ledger the report."""
    import json
    import time

    from .bench.harness import _print_summary, run_harness
    from .sim.kernel import KERNEL_BACKENDS

    kernels = (args.kernel,) if args.kernel else KERNEL_BACKENDS
    start = time.perf_counter()
    report, failures = run_harness(
        kernels=kernels,
        smoke=args.smoke,
        jobs=args.jobs,
        rounds=args.rounds,
        enforce_floor=args.enforce_floor,
        baselines_path=args.baselines,
    )
    wall = time.perf_counter() - start
    _print_summary(report)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    ledger = _ledger_for(args)
    if ledger is not None:
        # The frozen baselines ride along in the artifact but would bloat
        # every record; the provenance section identifies them instead.
        summary = {key: value for key, value in report.items() if key != "baselines"}
        ledger.write(
            "bench",
            options={
                "kernels": list(kernels),
                "smoke": args.smoke,
                "jobs": args.jobs,
                "rounds": args.rounds,
                "enforce_floor": args.enforce_floor,
            },
            backend=list(kernels),
            summary=summary,
            wall_seconds=wall,
        )
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    return 0


# One representative (worker, case, kwargs) per table for ``repro profile``.
_PROFILE_CASES = {
    2: ("repro.experiments.table2", "run_table2_case", (7, "SPLITBA", "FPA")),
    3: ("repro.experiments.table3", "run_table3_case", (10, "BFBA")),
    4: ("repro.experiments.table4", "run_table4_case", (15, "GGBA")),
    5: ("repro.experiments.table5", "run_table5_case", ("HYBRID", 24)),
}


def _cmd_profile(args) -> int:
    """Run one representative case of a table under cProfile and print the
    top cumulative-time hotspots (the workflow behind the kernel fast
    paths; see benchmarks/perf_harness.py for the regression side)."""
    import cProfile
    import importlib
    import json
    import pstats

    from .obs.ledger import git_revision, options_hash
    from .sim.kernel import default_kernel

    module_name, worker_name, case = _PROFILE_CASES[args.number]
    worker = getattr(importlib.import_module(module_name), worker_name)
    profiler = cProfile.Profile()
    profiler.enable()
    result = worker(case)
    profiler.disable()
    backend = default_kernel()
    provenance = {
        "backend": backend,
        "options_hash": options_hash(
            {"table": args.number, "case": list(case), "kernel": backend}
        ),
        "git_rev": git_revision(),
        "case": "%s.%s%r" % (module_name, worker_name, case),
    }
    print("profiled %s.%s(%r)" % (module_name, worker_name, case))
    print(
        "provenance: backend=%s options=%s rev=%s"
        % (backend, provenance["options_hash"], provenance["git_rev"])
    )
    print("result: %r" % (result,))
    if args.out:
        profiler.dump_stats(args.out)
        # pstats dumps are opaque binaries; the sidecar makes the artifact
        # self-describing and ledger-correlatable.
        with open(args.out + ".provenance.json", "w") as handle:
            json.dump(provenance, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            "wrote pstats dump %s (+ %s.provenance.json; load with "
            "pstats.Stats(%r))" % (args.out, args.out, args.out)
        )
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_compile(args) -> int:
    """Dump the compiled backend's generated sources for inspection.

    Writes one ``kernel_<variant>.py`` per run-loop variant plus
    ``fabric_<arch>.py``, the per-(master, device) transaction functions
    the specializer installs for the selected architecture (exactly what
    ``exec`` compiles at ``MachineBuilder.build()`` time).
    """
    from .sim.compiled import KERNEL_VARIANTS, generated_kernel_sources
    from .sim.compiled.specializer import specialized_fabric_source
    from .sim.fabric import MachineBuilder

    spec = _load_spec(args)
    machine = MachineBuilder(spec).with_kernel("compiled").build()
    os.makedirs(args.out, exist_ok=True)
    for variant, source in sorted(generated_kernel_sources().items()):
        path = os.path.join(args.out, "kernel_%s.py" % variant)
        with open(path, "w") as handle:
            handle.write(source)
    # Re-render rather than reading machine._specialized_source so the dump
    # also works for architectures with no eligible pairs (header only).
    fabric_source, entries = specialized_fabric_source(machine)
    fabric_path = os.path.join(
        args.out, "fabric_%s.py" % spec.name.lower().replace("-", "_")
    )
    with open(fabric_path, "w") as handle:
        handle.write(fabric_source)
    print(
        "wrote %d kernel variant(s) (%s) and %s"
        % (len(KERNEL_VARIANTS), ", ".join(KERNEL_VARIANTS), fabric_path)
    )
    print(
        "%s: %d specialized (master, device) pair(s)%s"
        % (
            spec.name,
            len(entries),
            "" if machine._specialized else " (dispatch not installed)",
        )
    )
    ledger = _ledger_for(args)
    if ledger is not None:
        ledger.write(
            "compile",
            options=_spec_options(args, spec, kernel="compiled"),
            backend="compiled",
            arch=spec.name,
            summary={
                "kernel_variants": list(KERNEL_VARIANTS),
                "specialized_pairs": len(entries),
                "dispatch_installed": machine._specialized,
            },
        )
    return 0


def _cmd_chaos(args) -> int:
    """Run the seeded fault-injection sweep (docs/robustness.md)."""
    import json
    import time

    from .faults.chaos import CHAOS_ARCHITECTURES, format_chaos_summary, run_chaos

    backends = tuple(args.backend) if args.backend else ("heap", "wheel")
    start = time.perf_counter()
    summary = run_chaos(
        seed=args.seed,
        scenario="smoke" if args.smoke else args.scenario,
        archs=args.arch or CHAOS_ARCHITECTURES,
        backends=backends,
        packets=args.packets,
        pe_count=args.pes,
        jobs=args.jobs,
    )
    wall = time.perf_counter() - start
    for line in format_chaos_summary(summary):
        print(line)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    ledger = _ledger_for(args)
    if ledger is not None:
        ledger.write(
            "chaos",
            options={
                "seed": args.seed,
                "scenario": summary["scenario"],
                "architectures": list(summary["architectures"]),
                "backends": list(backends),
                "packets": args.packets,
                "pes": args.pes,
            },
            backend=list(backends),
            arch=list(summary["architectures"]),
            summary=summary,
            wall_seconds=wall,
        )
    return 0 if summary["ok"] else 1


def _cmd_verify(args) -> int:
    """Run the cross-layer verification sweep (docs/verification.md)."""
    import json

    from .verify import SMOKE_ARCHITECTURES, format_verify_summary, run_verify

    import time

    archs = args.arch
    if not archs:
        archs = SMOKE_ARCHITECTURES if args.smoke else None
    backends = tuple(args.backend) if args.backend else ("heap", "wheel")
    start = time.perf_counter()
    summary = run_verify(
        archs=archs,
        backends=backends,
        packets=args.packets,
        pe_count=args.pes,
        jobs=args.jobs,
        data_width=args.data_width,
    )
    wall = time.perf_counter() - start
    for line in format_verify_summary(summary):
        print(line)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    ledger = _ledger_for(args)
    if ledger is not None:
        ledger.write(
            "verify",
            options={
                "architectures": list(summary["architectures"]),
                "backends": list(backends),
                "packets": args.packets,
                "pes": args.pes,
                "data_width": args.data_width,
            },
            backend=list(backends),
            arch=list(summary["architectures"]),
            summary=summary,
            wall_seconds=wall,
        )
    return 0 if summary["ok"] else 1


def _cmd_report(args) -> int:
    """Query the run ledger: aggregate, diff two runs, or gate regressions."""
    import json

    from .obs.ledger import DEFAULT_LEDGER_DIR, Ledger
    from .obs.query import (
        aggregate_records,
        check_regressions,
        coverage_rows,
        diff_bodies,
        filter_records,
        find_record,
        load_baselines,
    )

    root = args.ledger or os.environ.get("REPRO_LEDGER") or DEFAULT_LEDGER_DIR
    ledger = Ledger(root)
    if not ledger.exists:
        print("repro report: no ledger at %s" % ledger.records_path, file=sys.stderr)
        return 2

    if args.diff:
        left = find_record(ledger, args.diff[0])
        right = find_record(ledger, args.diff[1])
        diffs = diff_bodies(left, right)
        if args.json:
            print(
                json.dumps(
                    {
                        "left": left["hash"],
                        "right": right["hash"],
                        "diffs": [
                            {"field": field, "left": a, "right": b}
                            for field, a, b in diffs
                        ],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print("diff %s .. %s" % (left["hash"][:12], right["hash"][:12]))
            if not diffs:
                print("  identical hashed bodies")
            for field, a, b in diffs:
                print("  %-40s %r -> %r" % (field, a, b))
        return 1 if diffs and args.check else 0

    records = filter_records(
        ledger.records(), verb=args.verb, backend=args.backend, arch=args.arch
    )
    if args.check:
        baselines = load_baselines(args.baselines)
        findings = check_regressions(records, baselines)
        if args.json:
            print(json.dumps({"findings": findings}, indent=2, sort_keys=True))
        else:
            print(
                "checked %d record(s) against %s: %d regression(s)"
                % (len(records), args.baselines, len(findings))
            )
            for finding in findings:
                print(
                    "  REGRESSION %s [%s] %s"
                    % (finding["hash"], finding["verb"], finding["message"])
                )
        return 1 if findings else 0

    rows = aggregate_records(records)
    coverage = coverage_rows(records)
    if args.json:
        print(
            json.dumps(
                {"groups": rows, "coverage": coverage}, indent=2, sort_keys=True
            )
        )
        return 0
    print(
        "%-10s %-28s %-14s %5s %-14s %-8s %s"
        % ("verb", "arch", "backend", "runs", "last_hash", "rev", "options")
    )
    for row in rows:
        print(
            "%-10s %-28s %-14s %5d %-14s %-8s %s"
            % (
                row["verb"],
                row["arch"][:28],
                row["backend"][:14],
                row["runs"],
                row["last_hash"],
                row["last_rev"] or "-",
                row["options_hash"] or "-",
            )
        )
    print("%d record(s), %d group(s)" % (len(records), len(rows)))
    for row in coverage:
        print(
            "coverage %s: %d run(s), %d config(s) evaluated, cache %d hit(s) / "
            "%d miss(es) (%.0f%%)"
            % (
                row["verb"],
                row["runs"],
                row["evaluated"],
                row["cache_hits"],
                row["cache_misses"],
                row["cache_hit_ratio"] * 100,
            )
        )
        if row["skipped"]:
            print(
                "  skipped: "
                + ", ".join(
                    "%s=%d" % (reason, count)
                    for reason, count in row["skipped"].items()
                )
            )
    return 0


def _cmd_dse(args) -> int:
    """Run a design-space-exploration sweep (docs/dse.md)."""
    import json
    import time

    from .dse.engine import format_sweep_lines, run_sweep
    from .dse.pareto import format_frontier_lines, format_markdown_report
    from .dse.spec import SweepSpec, smoke_spec

    if args.spec:
        sweep = SweepSpec.from_file(args.spec)
    else:
        sweep = smoke_spec()
    start = time.perf_counter()
    summary = run_sweep(
        sweep,
        jobs=args.jobs,
        kernel=args.kernel,
        budget=args.budget,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=print,
    )
    wall = time.perf_counter() - start
    for line in format_sweep_lines(summary, top=args.top):
        print(line)
    for line in format_frontier_lines(summary["frontier"]):
        print(line)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(format_markdown_report(summary))
        print("wrote %s" % args.markdown)
    ledger = _ledger_for(args)
    if ledger is not None:
        # --jobs and cache state are scheduling facts, not design facts:
        # they stay out of the hashed options so cold/warm and 1-vs-N-job
        # sweeps of one spec land on the same options hash.
        ledger.write(
            "dse",
            options={
                "spec": summary["spec"],
                "spec_hash": summary["spec_hash"],
                "kernel": summary["kernel"],
                "budget": args.budget,
            },
            backend=summary["kernel"],
            arch=sorted({row["options"]["bus"] for row in summary["results"]}),
            summary=summary,
            wall_seconds=wall,
        )
    return 1 if summary["errors"] else 0


def _cmd_fuzz(args) -> int:
    """Fuzz the architecture space with the composed oracle (docs/fuzzing.md)."""
    import json
    import time

    from .dse.engine import resolve_kernel
    from .fuzz import format_fuzz_lines, fuzz_fingerprint, run_fuzz

    kernel = resolve_kernel(args.kernel)
    start = time.perf_counter()
    summary = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        jobs=args.jobs,
        kernel=kernel,
        corpus_dir=args.corpus,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        write_findings=not args.no_write,
        progress=print,
    )
    wall = time.perf_counter() - start
    for line in format_fuzz_lines(summary):
        print(line)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    ledger = _ledger_for(args)
    if ledger is not None:
        # --jobs and cache state are scheduling facts (same discipline as
        # repro dse); seed, budget and profile are the identity.
        ledger.write(
            "fuzz",
            options={
                "seed": args.seed,
                "budget": args.budget,
                "profile_hash": summary["profile_hash"],
                "oracle_version": summary["oracle_version"],
                "corpus": args.corpus,
                "kernel": kernel,
            },
            backend=kernel,
            arch=sorted(summary["profile"]["buses"]),
            summary={"fingerprint": fuzz_fingerprint(summary), **summary},
            wall_seconds=wall,
        )
    replay = summary["replay"]
    unstable = replay["regressions"] + replay["now_fixed"]
    if unstable:
        print(
            "corpus replay unstable: %d regression(s), %d entr(ies) now fixed "
            "(update corpus statuses)" % (replay["regressions"], replay["now_fixed"]),
            file=sys.stderr,
        )
    if summary["new_findings"]:
        print(
            "%d new finding(s)%s" % (
                summary["new_findings"],
                "" if args.no_write else " written to %s" % args.corpus,
            ),
            file=sys.stderr,
        )
    return 1 if (unstable or summary["new_findings"]) else 0


def _cmd_list(_args) -> int:
    from .moduledb import default_library

    print("presets:", ", ".join(sorted(presets.PRESETS)))
    print("library components:")
    for component in default_library().components():
        print("  %s" % component)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BusSyn: automated bus generation for multiprocessor SoC design",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec_arguments(p):
        p.add_argument("--preset", default="GBAVIII", help="bus architecture preset")
        p.add_argument("--pes", type=int, default=4, help="processor count")
        p.add_argument("--options", help="user-option input file (Figure 18 format)")

    def add_kernel_argument(p):
        from .sim.kernel import KERNEL_BACKENDS

        p.add_argument(
            "--kernel",
            choices=list(KERNEL_BACKENDS),
            help="scheduler backend (default: $REPRO_SIM_KERNEL or heap); "
            "see docs/performance.md",
        )

    def add_ledger_arguments(p):
        p.add_argument(
            "--ledger",
            metavar="DIR",
            help="run-ledger directory (default: $REPRO_LEDGER or .repro/ledger)",
        )
        p.add_argument(
            "--no-ledger",
            action="store_true",
            help="do not append a RunRecord to the run ledger",
        )

    generate = sub.add_parser("generate", help="generate synthesizable Verilog")
    add_spec_arguments(generate)
    generate.add_argument("--out", default="./generated", help="output directory")
    generate.add_argument(
        "--strict",
        action="store_true",
        help="treat lint warnings as errors (non-zero exit)",
    )
    generate.set_defaults(func=_cmd_generate)

    simulate = sub.add_parser("simulate", help="run an application on the bus system")
    add_spec_arguments(simulate)
    simulate.add_argument("--app", choices=["ofdm", "mpeg2", "database"], default="ofdm")
    simulate.add_argument("--style", choices=["PPA", "FPA"], default="FPA")
    simulate.add_argument("--packets", type=int, default=4)
    simulate.add_argument("--frames", type=int, default=16)
    add_kernel_argument(simulate)
    add_ledger_arguments(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    trace = sub.add_parser(
        "trace", help="run an app with tracing on and export the transaction trace"
    )
    add_spec_arguments(trace)
    trace.add_argument("--app", choices=["ofdm", "mpeg2", "database"], default="ofdm")
    trace.add_argument("--style", choices=["PPA", "FPA"], default="FPA")
    trace.add_argument("--packets", type=int, default=4)
    trace.add_argument("--frames", type=int, default=16)
    trace.add_argument(
        "-o", "--out", default="trace.json", help="trace output path"
    )
    trace.add_argument(
        "--format",
        choices=["chrome", "jsonl", "both"],
        default="chrome",
        help="chrome = trace_event JSON (Perfetto-loadable), jsonl = one record per line",
    )
    trace.add_argument("--report", help="also write the RunReport JSON here")
    add_kernel_argument(trace)
    trace.set_defaults(func=_cmd_trace)

    stats = sub.add_parser(
        "stats", help="re-run a table with telemetry and print RunReport summaries"
    )
    stats.add_argument("number", type=int, choices=[2, 3, 4, 5])
    stats.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cases (1 = run inline)",
    )
    stats.add_argument(
        "--quick", action="store_true", help="reduced workload sizes (CI-friendly)"
    )
    stats.add_argument("-o", "--out", help="write case reports + aggregate as JSON")
    add_kernel_argument(stats)
    stats.set_defaults(func=_cmd_stats)

    table = sub.add_parser("table", help="reprint a table of the paper")
    table.add_argument("number", type=int, choices=[2, 3, 4, 5])
    table.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cases (1 = run inline)",
    )
    add_kernel_argument(table)
    add_ledger_arguments(table)
    table.set_defaults(func=_cmd_table)

    bench = sub.add_parser(
        "bench",
        help="run the perf-regression harness (kernel + tables, per backend)",
    )
    bench.add_argument("--rounds", type=int, default=3, help="timing repeats (best-of)")
    bench.add_argument("--jobs", type=int, default=4, help="parallel runner workers")
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads, no perf gating (CI functional check)",
    )
    bench.add_argument(
        "--enforce-floor",
        action="store_true",
        help="fail on an events/sec regression vs benchmarks/baselines.json",
    )
    add_kernel_argument(bench)
    from .bench.harness import DEFAULT_BASELINES, DEFAULT_OUT

    bench.add_argument(
        "--baselines",
        default=DEFAULT_BASELINES,
        help="baselines JSON path (default: benchmarks/baselines.json)",
    )
    bench.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_kernel.json)",
    )
    add_ledger_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile", help="profile one representative case of a table (cProfile)"
    )
    profile.add_argument("number", type=int, choices=[2, 3, 4, 5])
    profile.add_argument(
        "--top", type=int, default=20, help="hotspot lines to print"
    )
    profile.add_argument(
        "-o", "--out", help="dump raw cProfile stats here (pstats format)"
    )
    profile.set_defaults(func=_cmd_profile)

    compile_parser = sub.add_parser(
        "compile",
        help="dump the compiled backend's generated kernel + fabric sources",
    )
    add_spec_arguments(compile_parser)
    compile_parser.add_argument(
        "-o",
        "--out",
        default="./compiled",
        help="output directory for the generated .py sources",
    )
    add_ledger_arguments(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection sweep with recovery invariants "
        "(docs/robustness.md)",
    )
    chaos.add_argument(
        "--scenario",
        choices=["smoke", "default", "heavy"],
        default="default",
        help="fault scenario to compile (counts per fault kind)",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="shortcut for --scenario smoke (one fault per kind; CI gate)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    chaos.add_argument(
        "--arch",
        action="append",
        help="architecture to sweep (repeatable; default: the paper's five)",
    )
    from .sim.kernel import KERNEL_BACKENDS

    chaos.add_argument(
        "--backend",
        action="append",
        choices=list(KERNEL_BACKENDS),
        help="scheduler backend (repeatable; default: heap+wheel, with "
        "parity check; compiled despecializes under faults, so adding it "
        "re-proves the generic-path fallback)",
    )
    chaos.add_argument("--packets", type=int, default=4, help="OFDM packets per run")
    chaos.add_argument("--pes", type=int, default=4, help="processor count")
    chaos.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cases (1 = run inline)",
    )
    chaos.add_argument("-o", "--out", help="write the full sweep summary as JSON")
    add_ledger_arguments(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    verify = sub.add_parser(
        "verify",
        help="netlist<->machine equivalence + protocol assertion sweep "
        "(docs/verification.md)",
    )
    verify.add_argument(
        "--smoke",
        action="store_true",
        help="verify only the CI smoke subset (BFBA + SPLITBA)",
    )
    verify.add_argument(
        "--arch",
        action="append",
        help="architecture to verify (repeatable; default: all supported "
        "presets; CCBA is excluded by design, see docs/verification.md)",
    )
    verify.add_argument(
        "--backend",
        action="append",
        choices=list(KERNEL_BACKENDS),
        help="scheduler backend (repeatable; default: heap+wheel, with "
        "parity check; monitors despecialize the compiled backend, so "
        "adding it re-proves the generic-path fallback)",
    )
    verify.add_argument("--packets", type=int, default=2, help="OFDM packets per run")
    verify.add_argument("--pes", type=int, default=4, help="processor count")
    verify.add_argument(
        "--data-width",
        type=int,
        default=None,
        help="bus/memory data width in bits applied to every bus and memory "
        "(default: the presets' 64); non-default widths exercise the "
        "width-parameterized generation path",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cases (1 = run inline)",
    )
    verify.add_argument("-o", "--out", help="write the full sweep summary as JSON")
    add_ledger_arguments(verify)
    verify.set_defaults(func=_cmd_verify)

    report = sub.add_parser(
        "report",
        help="query the run ledger: aggregate, diff two runs, CI regression gate",
    )
    report.add_argument(
        "--ledger",
        metavar="DIR",
        help="run-ledger directory (default: $REPRO_LEDGER or .repro/ledger)",
    )
    report.add_argument("--verb", help="only records written by this verb")
    report.add_argument("--backend", help="only records for this scheduler backend")
    report.add_argument("--arch", help="only records touching this architecture")
    report.add_argument(
        "--diff",
        nargs=2,
        metavar=("HASH_A", "HASH_B"),
        help="field-by-field diff of two records (content-hash prefixes)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="flag regressions vs baselines; exit 1 when any are found "
        "(with --diff: exit 1 when the bodies differ)",
    )
    from .bench.harness import DEFAULT_BASELINES as _REPORT_BASELINES

    report.add_argument(
        "--baselines",
        default=_REPORT_BASELINES,
        help="baselines JSON for --check (default: benchmarks/baselines.json)",
    )
    report.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    report.set_defaults(func=_cmd_report)

    dse = sub.add_parser(
        "dse",
        help="design-space exploration: sharded sweep + Pareto report "
        "(docs/dse.md)",
    )
    dse.add_argument(
        "--spec",
        help="sweep specification JSON (axes/cases/score/seed; docs/dse.md); "
        "default: the built-in smoke sweep",
    )
    dse.add_argument(
        "--smoke",
        action="store_true",
        help="run the built-in smoke sweep (the default when --spec is absent)",
    )
    dse.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; shards are assigned by config hash, so the "
        "frontier is identical at any --jobs value",
    )
    dse.add_argument(
        "--budget",
        type=int,
        help="cap the queue at the first N configs (canonical order)",
    )
    dse.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the artifact cache (re-simulate every config)",
    )
    from .dse.cache import DEFAULT_CACHE_DIR

    dse.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="artifact-cache directory (default: .repro/dse)",
    )
    dse.add_argument("--top", type=int, default=10, help="ranked rows to print")
    dse.add_argument("-o", "--out", help="write the full sweep summary as JSON")
    dse.add_argument("--markdown", help="write the ranked report as markdown")
    add_kernel_argument(dse)
    add_ledger_arguments(dse)
    dse.set_defaults(func=_cmd_dse)

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz random legal architectures through the composed oracle, "
        "auto-shrinking findings into the corpus (docs/fuzzing.md)",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=100,
        help="unique legal cases to sample and judge (default: 100)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="generator seed; the same seed reproduces the same cases, "
        "findings and shrink traces (0 is a real seed)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; cases are sharded by content hash, so the "
        "summary fingerprint is identical at any --jobs value",
    )
    from .fuzz.corpus import DEFAULT_CORPUS_DIR

    fuzz.add_argument(
        "--corpus",
        default=DEFAULT_CORPUS_DIR,
        metavar="DIR",
        help="corpus directory replayed on start and extended with new "
        "findings (default: corpus/)",
    )
    fuzz.add_argument(
        "--no-write",
        action="store_true",
        help="report findings without writing corpus entries (triage dry-run)",
    )
    fuzz.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the artifact cache (re-judge every case)",
    )
    fuzz.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="artifact-cache directory shared with repro dse (default: .repro/dse)",
    )
    fuzz.add_argument("-o", "--out", help="write the full fuzz summary as JSON")
    add_kernel_argument(fuzz)
    add_ledger_arguments(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    listing = sub.add_parser("list", help="list presets and library components")
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except OptionError as error:
        print("repro: option error: %s" % error, file=sys.stderr)
        return 2
    except OSError as error:
        print("repro: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
