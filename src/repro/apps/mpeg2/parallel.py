"""Functional-parallel MPEG2 decoding on a simulated bus system.

Section VI.A.3 / Figure 27: the video stream is a sequence of SH+GOP
chunks; GOP *i* is decoded by BAN ``i mod n`` (round-robin), BAN A performs
raw-stream input, and every decoded frame is handed over to BAN D (the last
BAN) for output.

Two drivers, selected by topology:

* **shared-memory machines** (GBAVIII, Hybrid, SplitBA, GGBA, CCBA): BAN A
  writes each chunk to a shared input buffer and raises a per-GOP ready
  flag (Example 5); workers decode their GOPs and post decoded frames to a
  shared collection area read by the last BAN.  On Hybrid, workers adjacent
  to the last BAN hand their frames over the Bi-FIFO instead, trimming
  global-bus traffic -- the feature mix the paper credits for Hybrid's win
  in Table III.
* **neighbour-only machines** (BFBA, GBAVI): there is no shared memory, so
  BAN A relays each chunk BAN-to-BAN to its destination, and decoded frames
  relay back to the last BAN the same way -- "the data to be processed in
  each BAN has to be passed from BAN A to each BAN sequentially", which is
  exactly why these two architectures trail in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...sim.fabric import Machine
from ...soc import pack
from ...soc.api import SocAPI
from ...soc.handshake import make_channel
from . import cost
from .codec import Frame, encode_sequence, iter_decode_chunk, split_stream, synthetic_video

__all__ = ["Mpeg2Result", "run_mpeg2", "gop_assignment"]

# Minimum relay-message size (words); grows to fit the largest SH+GOP
# chunk or packed 4:2:0 frame of the run, like a DMA descriptor slot.
MSG_WORDS = 192
_KIND_CHUNK = 1
_KIND_FRAME = 2


def _frame_payload_bytes(width: int, height: int) -> int:
    return 5 + width * height + 2 * (width // 2) * (height // 2)


def _message_words(chunks, width: int, height: int) -> int:
    largest = max(
        [len(chunk) for chunk in chunks] + [_frame_payload_bytes(width, height)]
    )
    return max(MSG_WORDS, 3 + (largest + 3) // 4)


@dataclass
class Mpeg2Result:
    machine_name: str
    cycles: int
    stream_bits: int
    gops: int
    frame_payload_bytes: int = _frame_payload_bytes(16, 16)
    frames: Dict[Tuple[int, int], Frame] = field(default_factory=dict)
    gop_to_ban: Dict[int, str] = field(default_factory=dict)
    # (ban, gop_index, start_cycle, end_cycle) decode intervals.
    schedule: List[Tuple[str, int, int, int]] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.cycles / 100e6

    @property
    def throughput_mbps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.stream_bits / self.seconds / 1e6


def gop_assignment(gop_count: int, bans: List[str]) -> Dict[int, str]:
    """Figure 27b: GOP i -> BAN (i mod n)."""
    return {index: bans[index % len(bans)] for index in range(gop_count)}


# ----------------------------------------------------------------------
# Message packing for the relay driver
# ----------------------------------------------------------------------


def _pack_message(kind: int, tag: int, payload: bytes, msg_words: int = MSG_WORDS) -> List[int]:
    words = [kind, tag, len(payload)]
    words.extend(pack.bytes_to_words(payload))
    if len(words) > msg_words:
        raise ValueError("payload of %d bytes overflows a relay message" % len(payload))
    words.extend([0] * (msg_words - len(words)))
    return words


def _unpack_message(words: List[int]) -> Tuple[int, int, bytes]:
    kind, tag, length = words[0], words[1], words[2]
    payload = pack.words_to_bytes(words[3:], length)
    return kind, tag, payload


def _pack_frame(frame: Frame) -> bytes:
    planes = [
        np.clip(np.round(np.asarray(p)), 0, 255).astype(np.uint8).tobytes()
        for p in frame.planes()
    ]
    height, width = frame.y.shape
    header = bytes(
        [1 if frame.picture_type == "I" else 0, width >> 8, width & 0xFF,
         height >> 8, height & 0xFF]
    )
    return header + planes[0] + planes[1] + planes[2]


def _unpack_frame(payload: bytes) -> Frame:
    picture_type = "I" if payload[0] else "P"
    width = (payload[1] << 8) | payload[2]
    height = (payload[3] << 8) | payload[4]
    body = payload[5:]
    y_size = width * height
    c_size = (width // 2) * (height // 2)
    y = np.frombuffer(body[:y_size], np.uint8).reshape(height, width).astype(float)
    cb = (
        np.frombuffer(body[y_size : y_size + c_size], np.uint8)
        .reshape(height // 2, width // 2)
        .astype(float)
    )
    cr = (
        np.frombuffer(body[y_size + c_size : y_size + 2 * c_size], np.uint8)
        .reshape(height // 2, width // 2)
        .astype(float)
    )
    return Frame(y, cb, cr, picture_type)


# ----------------------------------------------------------------------
# Shared decode body
# ----------------------------------------------------------------------


def _decode_chunk_sim(api: SocAPI, chunk: bytes, buffers, result: Mpeg2Result):
    """Decode one SH+GOP chunk on a PE, charging modelled costs."""
    start = api.machine.sim.now
    yield from api.compute(cost.sh_gop_parse_instructions())
    frames: List[Tuple[int, int, Frame]] = []
    gop_index = -1
    for frame_number, (gop_index, frame, stats) in enumerate(iter_decode_chunk(chunk)):
        touches = [
            api.touch(buffers["frame"], 128, write=True),
            api.touch(buffers["stream"], len(chunk) // 4 + 1),
        ]
        yield from api.compute(cost.picture_instructions(stats), touches)
        yield from api.scattered_access(
            buffers["frame"], cost.UNCACHED_WORD_OPS_PER_PICTURE
        )
        frames.append((gop_index, frame_number, frame))
    result.schedule.append((api.ban, gop_index, start, api.machine.sim.now))
    return frames


def _worker_buffers(api: SocAPI, msg_words: int) -> Dict[str, Tuple[str, int]]:
    return {"frame": api.alloc(max(128, msg_words)), "stream": api.alloc(msg_words)}


# ----------------------------------------------------------------------
# Driver for shared-memory machines
# ----------------------------------------------------------------------


def _run_shared(
    machine: Machine, chunks: List[bytes], result: Mpeg2Result, msg_words: int
) -> None:
    bans = machine.pe_order
    apis = {ban: SocAPI(machine, ban) for ban in bans}
    assignment = gop_assignment(len(chunks), bans)
    result.gop_to_ban.update(assignment)
    first, last = bans[0], bans[-1]
    frame_words = 3 + (result.frame_payload_bytes + 3) // 4

    # Input chunk buffers live in each worker's shared memory (SplitBA has
    # one per subsystem; BAN A reaches the far one across the bus bridge).
    chunk_buffers: Dict[int, Tuple[str, int]] = {}
    for index, ban in assignment.items():
        memory = apis[ban].shared_memory()
        chunk_buffers[index] = (memory, machine.reserve(memory, msg_words))
    # Decoded frames are collected in the *last* BAN's shared memory.
    collect_memory = apis[last].shared_memory()
    frame_slots: Dict[Tuple[int, int], Tuple[str, int]] = {}
    for index in assignment:
        for frame_number in range(2):
            frame_slots[(index, frame_number)] = (
                collect_memory,
                machine.reserve(collect_memory, frame_words),
            )
    buffers = {ban: _worker_buffers(apis[ban], msg_words) for ban in bans}

    # Hybrid feature: workers adjacent to the last BAN hand frames over the
    # Bi-FIFO instead of the global bus.
    fifo_channels = {}
    if machine.fifo_blocks and machine.global_memory:
        for ban in bans:
            if ban == last:
                continue
            try:
                machine.fifo_for(ban, last)
            except LookupError:
                continue
            fifo_channels[ban] = make_channel(
                apis[ban], apis[last], msg_words, prefer="BFBA"
            )

    def input_and_work():
        api = apis[first]
        stream_words = sum(len(chunk) for chunk in chunks) // 4 + len(chunks)
        yield from api.compute(stream_words * cost.INPUT_IO_PER_WORD)
        for index, chunk in enumerate(chunks):
            words = _pack_message(_KIND_CHUNK, index, chunk, msg_words)
            yield from api.mem_write(words, chunk_buffers[index])
            memory = chunk_buffers[index][0]
            yield from api.var_write("GOP_RDY_%d" % index, 1, memory)
        yield from work(first)

    def work(ban: str):
        api = apis[ban]
        decoded: List[Tuple[int, int, Frame]] = []
        for index in sorted(i for i, b in assignment.items() if b == ban):
            memory = chunk_buffers[index][0]
            yield from api.var_wait("GOP_RDY_%d" % index, 1, memory)
            words = yield from api.read(chunk_buffers[index], msg_words)
            _kind, _tag, chunk = _unpack_message(list(words))
            frames = yield from _decode_chunk_sim(api, chunk, buffers[ban], result)
            decoded.extend(frames)
        # "Each decoded frame is handed over to BAN D at the end."
        for gop_index, frame_number, frame in decoded:
            message = _pack_message(
                _KIND_FRAME, gop_index * 16 + frame_number, _pack_frame(frame), msg_words
            )
            if ban == last:
                result.frames[(gop_index, frame_number)] = _unpack_frame(
                    _pack_frame(frame)
                )
            elif ban in fifo_channels:
                yield from fifo_channels[ban].send(message[:msg_words])
            else:
                yield from api.mem_write(
                    message[:frame_words], frame_slots[(gop_index, frame_number)]
                )
                yield from api.var_write(
                    "FRAME_%d_%d" % (gop_index, frame_number), 1, collect_memory
                )

    def collect_and_output():
        api = apis[last]
        yield from work(last)
        expected_fifo = sum(
            2
            for index, ban in assignment.items()
            if ban in fifo_channels
        )
        for _ in range(expected_fifo):
            channel = fifo_channels_by_order.pop(0)
            words = yield from channel.recv()
            yield from channel.release()
            yield from _accept(api, list(words))
        for (gop_index, frame_number), slot in sorted(frame_slots.items()):
            ban = assignment[gop_index]
            if ban == last or ban in fifo_channels:
                continue
            yield from api.var_wait(
                "FRAME_%d_%d" % (gop_index, frame_number), 1, collect_memory
            )
            words = yield from api.read(slot, frame_words)
            yield from _accept(api, list(words))
        total_words = len(result.frames) * frame_words
        yield from api.compute(total_words * cost.OUTPUT_PER_WORD)

    def _accept(api: SocAPI, words: List[int]):
        kind, tag, payload = _unpack_message(words)
        frame = _unpack_frame(payload)
        result.frames[(tag // 16, tag % 16)] = frame
        yield from api.compute(200)

    # Receive order for FIFO-delivered frames: GOP order of the sending BANs.
    fifo_channels_by_order = []
    for index in sorted(assignment):
        ban = assignment[index]
        if ban in fifo_channels:
            fifo_channels_by_order.extend([fifo_channels[ban]] * 2)

    for ban in bans:
        if ban == first and ban == last:
            raise ValueError("MPEG2 driver needs at least two PEs")
    machine.pe(first).run(input_and_work())
    for ban in bans[1:-1]:
        machine.pe(ban).run(work(ban))
    machine.pe(last).run(collect_and_output())


# ----------------------------------------------------------------------
# Driver for neighbour-only machines (BFBA / GBAVI): sequential relay
# ----------------------------------------------------------------------


def _run_relay(
    machine: Machine, chunks: List[bytes], result: Mpeg2Result, msg_words: int
) -> None:
    """Relay-based distribution with picture-granular service points.

    Forwarding PEs only service their incoming channel *between picture
    decodes* (a simple decoder main loop has no other preemption point), so
    a chunk bound two hops away waits for the BANs in between -- this is
    the "passed from BAN A to each BAN sequentially" penalty that puts BFBA
    and GBAVI at the bottom of Table III.
    """
    bans = machine.pe_order
    if len(bans) != 4:
        raise ValueError("the relay driver implements the paper's 4-PE layout")
    a, b, c, d = bans
    apis = {ban: SocAPI(machine, ban) for ban in bans}
    assignment = gop_assignment(len(chunks), bans)
    result.gop_to_ban.update(assignment)
    buffers = {ban: _worker_buffers(apis[ban], msg_words) for ban in bans}

    # Channels along the chain, plus the ring link A->D (Figure 17a).
    ch_ab = make_channel(apis[a], apis[b], msg_words)
    ch_bc = make_channel(apis[b], apis[c], msg_words)
    ch_cd = make_channel(apis[c], apis[d], msg_words)
    ch_ad = make_channel(apis[a], apis[d], msg_words)

    def own(ban: str) -> List[int]:
        return sorted(index for index, owner in assignment.items() if owner == ban)

    class PictureQueue:
        """Pending pictures of received chunks, decoded one at a time."""

        def __init__(self, ban: str):
            self.ban = ban
            self.iterators: List = []
            self.current = None
            self.frames: List[Tuple[int, int, Frame]] = []
            self._frame_number = 0
            self._start = None

        def add_chunk(self, chunk: bytes):
            self.iterators.append(iter_decode_chunk(chunk))

        def decode_one(self):
            """Decode the next pending picture (generator); False if none."""
            api = apis[self.ban]
            while True:
                if self.current is None:
                    if not self.iterators:
                        return False
                    self.current = self.iterators.pop(0)
                    self._frame_number = 0
                    self._start = machine.sim.now
                    yield from api.compute(cost.sh_gop_parse_instructions())
                try:
                    gop_index, frame, stats = next(self.current)
                except StopIteration:
                    result.schedule.append(
                        (self.ban, self.frames[-1][0], self._start, machine.sim.now)
                    )
                    self.current = None
                    continue
                touches = [
                    api.touch(buffers[self.ban]["frame"], 128, write=True),
                    api.touch(buffers[self.ban]["stream"], 64),
                ]
                yield from api.compute(cost.picture_instructions(stats), touches)
                yield from api.scattered_access(
                    buffers[self.ban]["frame"], cost.UNCACHED_WORD_OPS_PER_PICTURE
                )
                self.frames.append((gop_index, self._frame_number, frame))
                self._frame_number += 1
                return True

        def drain(self):
            while True:
                more = yield from self.decode_one()
                if not more:
                    return

    def send_frames(channel, frames):
        for gop_index, frame_number, frame in frames:
            message = _pack_message(
                _KIND_FRAME, gop_index * 16 + frame_number, _pack_frame(frame), msg_words
            )
            yield from channel.send(message)

    def ban_a():
        api = apis[a]
        queue = PictureQueue(a)
        stream_words = sum(len(chunk) for chunk in chunks) // 4 + len(chunks)
        # The stream arrives GOP by GOP from the input source; BAN A keeps
        # its own GOPs and pushes the rest toward their owners, decoding
        # one of its own pending pictures whenever a send is not ready.
        for index in sorted(assignment):
            yield from api.compute(
                (len(chunks[index]) // 4 + 1) * cost.INPUT_IO_PER_WORD
            )
            owner = assignment[index]
            if owner == a:
                queue.add_chunk(chunks[index])
                yield from queue.decode_one()
                continue
            message = _pack_message(_KIND_CHUNK, index, chunks[index], msg_words)
            channel = ch_ad if owner == d else ch_ab
            yield from channel.send(message)
        yield from queue.drain()
        yield from send_frames(ch_ad, queue.frames)

    def middle(ban: str, ch_in, ch_out):
        """BANs B and C: alternate chunk service and picture decodes."""

        def program():
            queue = PictureQueue(ban)
            incoming = [i for i in sorted(assignment) if _routes_through(i, ban)]
            for _index in incoming:
                words = yield from ch_in.recv()
                yield from ch_in.release()
                _kind, tag, payload = _unpack_message(list(words))
                if assignment[tag] == ban:
                    queue.add_chunk(payload)
                else:
                    yield from ch_out.send(list(words))
                # Service point honoured; resume decoding one picture.
                yield from queue.decode_one()
            yield from queue.drain()
            yield from send_frames(ch_out, queue.frames)
            if ban == c:
                # Forward B's decoded frames toward D.
                for _ in range(2 * len(own(b))):
                    words = yield from ch_bc.recv()
                    yield from ch_bc.release()
                    yield from ch_cd.send(list(words))

        return program

    def _routes_through(index: int, ban: str) -> bool:
        owner = assignment[index]
        if owner == d or owner == a:
            return False  # A->D uses the ring link
        if ban == b:
            return owner in (b, c)
        return owner == c

    def ban_d():
        api = apis[d]
        queue = PictureQueue(d)
        for _index in own(d):
            words = yield from ch_ad.recv()
            yield from ch_ad.release()
            _kind, _tag, payload = _unpack_message(list(words))
            queue.add_chunk(payload)
            yield from queue.decode_one()
        yield from queue.drain()
        for gop_index, frame_number, frame in queue.frames:
            result.frames[(gop_index, frame_number)] = _unpack_frame(
                _pack_frame(frame)
            )
        # Collect: C's own frames then B's forwarded frames on ch_cd, then
        # A's frames on the ring link.
        for _ in range(2 * (len(own(c)) + len(own(b)))):
            words = yield from ch_cd.recv()
            yield from ch_cd.release()
            _k, tag, payload = _unpack_message(list(words))
            result.frames[(tag // 16, tag % 16)] = _unpack_frame(payload)
        for _ in range(2 * len(own(a))):
            words = yield from ch_ad.recv()
            yield from ch_ad.release()
            _k, tag, payload = _unpack_message(list(words))
            result.frames[(tag // 16, tag % 16)] = _unpack_frame(payload)
        frame_words = 100
        yield from api.compute(len(result.frames) * frame_words * cost.OUTPUT_PER_WORD)

    machine.pe(a).run(ban_a())
    machine.pe(b).run(middle(b, ch_ab, ch_bc)())
    machine.pe(c).run(middle(c, ch_bc, ch_cd)())
    machine.pe(d).run(ban_d())


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_mpeg2(
    machine: Machine,
    video: Optional[List[Frame]] = None,
    frame_count: int = 16,
) -> Mpeg2Result:
    """Decode an MPEG2 stream functionally parallel on ``machine``.

    The stream is encoded outside the simulation (it is the external input
    source); ``frame_count`` frames make ``frame_count // 2`` I+P GOPs.
    """
    video = video if video is not None else synthetic_video(frame_count)
    stream = encode_sequence(video)
    chunks = split_stream(stream)
    height, width = video[0].y.shape
    msg_words = _message_words(chunks, width, height)
    result = Mpeg2Result(
        machine_name=machine.name,
        cycles=0,
        stream_bits=len(stream) * 8,
        gops=len(chunks),
        frame_payload_bytes=_frame_payload_bytes(width, height),
    )
    if machine.global_memory is not None:
        _run_shared(machine, chunks, result, msg_words)
    else:
        _run_relay(machine, chunks, result, msg_words)
    machine.sim.run()
    result.cycles = max((pe.finished_at or 0) for pe in machine.pes.values())
    return result
