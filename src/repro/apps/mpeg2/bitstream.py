"""Bit-level stream I/O for the MPEG2 codec.

MPEG2 is a bit-oriented format: headers start on byte-aligned start codes
(``00 00 01 xx``) and entropy-coded coefficients are variable-length.  The
writer and reader here provide exactly what the compact codec needs:

* raw fixed-width bit fields,
* unsigned and signed Exp-Golomb codes (the codec's VLC family),
* byte-aligned start codes with scan-forward search.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "START_CODE_PREFIX",
    "SEQUENCE_START",
    "GOP_START",
    "PICTURE_START",
    "END_CODE",
    "BitWriter",
    "BitReader",
]

START_CODE_PREFIX = 0x000001
SEQUENCE_START = 0xB3
GOP_START = 0xB8
PICTURE_START = 0x00
END_CODE = 0xB7


class BitWriter:
    """Accumulates bits MSB-first into a byte string."""

    def __init__(self):
        self._bytes = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or (width and value < 0):
            raise ValueError("negative width or value")
        if width and value >= (1 << width):
            raise ValueError("value %d does not fit in %d bits" % (value, width))
        for shift in range(width - 1, -1, -1):
            self._accumulator = (self._accumulator << 1) | ((value >> shift) & 1)
            self._bit_count += 1
            if self._bit_count == 8:
                self._bytes.append(self._accumulator)
                self._accumulator = 0
                self._bit_count = 0

    def write_ue(self, value: int) -> None:
        """Unsigned Exp-Golomb."""
        if value < 0:
            raise ValueError("write_ue takes non-negative values")
        stem = value + 1
        width = stem.bit_length()
        self.write_bits(0, width - 1)
        self.write_bits(stem, width)

    def write_se(self, value: int) -> None:
        """Signed Exp-Golomb: 0, 1, -1, 2, -2, ... -> 0, 1, 2, 3, 4, ..."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def byte_align(self) -> None:
        if self._bit_count:
            self.write_bits(0, 8 - self._bit_count)

    def start_code(self, code: int) -> None:
        self.byte_align()
        self._bytes.extend((0x00, 0x00, 0x01, code & 0xFF))

    def getvalue(self) -> bytes:
        self.byte_align()
        return bytes(self._bytes)

    def __len__(self) -> int:
        return len(self._bytes) * 8 + self._bit_count


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes):
        self.data = data
        self.position = 0  # in bits

    @property
    def bits_left(self) -> int:
        return len(self.data) * 8 - self.position

    def read_bits(self, width: int) -> int:
        if width > self.bits_left:
            raise EOFError("bitstream exhausted")
        value = 0
        position = self.position
        for _ in range(width):
            byte = self.data[position >> 3]
            bit = (byte >> (7 - (position & 7))) & 1
            value = (value << 1) | bit
            position += 1
        self.position = position
        return value

    def read_ue(self) -> int:
        zeros = 0
        while self.read_bits(1) == 0:
            zeros += 1
            if zeros > 64:
                raise ValueError("malformed Exp-Golomb code")
        value = 1
        if zeros:
            value = (1 << zeros) | self.read_bits(zeros)
        return value - 1

    def read_se(self) -> int:
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)

    def byte_align(self) -> None:
        remainder = self.position & 7
        if remainder:
            self.position += 8 - remainder

    def next_start_code(self) -> Optional[int]:
        """Scan forward to the next start code; returns its code byte."""
        self.byte_align()
        data = self.data
        index = self.position >> 3
        while index + 3 < len(data):
            if data[index] == 0 and data[index + 1] == 0 and data[index + 2] == 1:
                self.position = (index + 4) * 8
                return data[index + 3]
            index += 1
        self.position = len(data) * 8
        return None

    def expect_start_code(self, code: int) -> None:
        found = self.next_start_code()
        if found != code:
            raise ValueError(
                "expected start code 0x%02X, found %s"
                % (code, "end of stream" if found is None else "0x%02X" % found)
            )
