"""8x8 forward/inverse DCT and zig-zag scan for the MPEG2 codec.

The type-II DCT over 8x8 blocks is the transform MPEG2 specifies; the
decoder applies the type-III inverse.  Both are implemented as separable
matrix products against a precomputed orthonormal basis, which the tests
check for orthogonality and perfect round-trip.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BLOCK",
    "dct_matrix",
    "dct2",
    "idct2",
    "ZIGZAG_ORDER",
    "zigzag",
    "dezigzag",
]

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal type-II DCT basis matrix C with X = C x C^T."""
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    matrix = np.sqrt(2.0 / n) * np.cos((2 * i + 1) * k * np.pi / (2 * n))
    matrix[0, :] = 1.0 / np.sqrt(n)
    return matrix


_C = dct_matrix()


def dct2(block: np.ndarray) -> np.ndarray:
    """Forward 8x8 DCT (type II, orthonormal)."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError("dct2 expects an 8x8 block, got %r" % (block.shape,))
    return _C @ block @ _C.T


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 8x8 DCT (type III, orthonormal)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape != (BLOCK, BLOCK):
        raise ValueError("idct2 expects an 8x8 block, got %r" % (coefficients.shape,))
    return _C.T @ coefficients @ _C


def _build_zigzag(n: int = BLOCK) -> np.ndarray:
    """Classic zig-zag scan order over an n x n block."""
    order = []
    for diagonal in range(2 * n - 1):
        cells = [
            (row, diagonal - row)
            for row in range(n)
            if 0 <= diagonal - row < n
        ]
        if diagonal % 2 == 0:
            cells.reverse()  # even diagonals run bottom-left to top-right
        order.extend(cells)
    flat = np.array([row * n + column for row, column in order], dtype=np.int64)
    return flat


ZIGZAG_ORDER = _build_zigzag()
_INVERSE_ZIGZAG = np.argsort(ZIGZAG_ORDER)


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block in zig-zag order (DC first)."""
    return np.asarray(block).reshape(-1)[ZIGZAG_ORDER]


def dezigzag(scan: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    scan = np.asarray(scan)
    if scan.shape != (BLOCK * BLOCK,):
        raise ValueError("dezigzag expects 64 coefficients")
    return scan[_INVERSE_ZIGZAG].reshape(BLOCK, BLOCK)
