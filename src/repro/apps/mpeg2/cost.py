"""Instruction-cost constants for the MPEG2 decoder.

The paper ran the MSSG reference decoder (8788 lines of C); for 16x16
pictures its fixed per-picture machinery (header parsing, slice and
macroblock state, buffer management) dwarfs the per-coefficient work, which
is why the constants below put most of the weight on the picture layer.
Calibrated so one GOP (I+P, 16x16, 4:2:0) decodes in roughly 400-500 k
bus-clock cycles, landing system throughput near Table III's ~1 Mbps scale.
"""

from __future__ import annotations

from .codec import DecodeStats

__all__ = [
    "PARSE_SH_INSTR",
    "PARSE_GOP_INSTR",
    "PARSE_PICTURE_INSTR",
    "VLC_PER_COEFF",
    "DEQUANT_PER_BLOCK",
    "IDCT_PER_BLOCK",
    "RECON_PER_BLOCK",
    "MC_PER_BLOCK",
    "OUTPUT_PER_WORD",
    "INPUT_IO_PER_WORD",
    "UNCACHED_WORD_OPS_PER_PICTURE",
    "picture_instructions",
    "sh_gop_parse_instructions",
]

PARSE_SH_INSTR = 30_000
PARSE_GOP_INSTR = 20_000
PARSE_PICTURE_INSTR = 400_000
VLC_PER_COEFF = 150
DEQUANT_PER_BLOCK = 2_500
IDCT_PER_BLOCK = 14_000
RECON_PER_BLOCK = 3_000
MC_PER_BLOCK = 5_000
OUTPUT_PER_WORD = 60  # BAN D's decoded-data output loop
INPUT_IO_PER_WORD = 40  # BAN A's raw stream input loop
# Word-granular accesses per picture to the decoder's (cache-inhibited)
# working buffers: bitstream window, block staging, reconstruction stores.
# Each one re-arbitrates for the bus holding the buffer, which is the local
# SRAM on GBAVIII/Hybrid but the shared PLB on CCBA (5-cycle read grant).
UNCACHED_WORD_OPS_PER_PICTURE = 1_400


def sh_gop_parse_instructions() -> int:
    """Cost of parsing one sequence header + GOP header."""
    return PARSE_SH_INSTR + PARSE_GOP_INSTR


def picture_instructions(stats: DecodeStats) -> int:
    """Cost of decoding one picture, from its operation counts."""
    return (
        PARSE_PICTURE_INSTR * stats.pictures
        + VLC_PER_COEFF * stats.coefficients
        + (DEQUANT_PER_BLOCK + IDCT_PER_BLOCK + RECON_PER_BLOCK) * stats.blocks
        + MC_PER_BLOCK * stats.motion_blocks
    )
