"""Compact MPEG2-profile encoder and decoder.

This is the substitute for the 8788-line MSSG reference decoder the paper
used (DESIGN.md section 3): a real block-transform video codec with the
same stream structure the experiment depends on --

* a **sequence header** (picture size, frame-rate code, quantizer scale),
* **GOPs** of one Intra frame followed by one Predictive frame
  (Figure 27a: "each I frame is followed by a P frame, and a GOP is
  composed of two frames"),
* per-picture 4:2:0 macroblocks: 4 luma + 2 chroma 8x8 blocks,
* zig-zag scanned, quantized DCT coefficients with run-length/Exp-Golomb
  entropy coding; P-frames carry per-macroblock motion vectors found by a
  real +/-2-pixel search and code the motion-compensated residual.

GOPs are *closed* (the P frame predicts only from the I frame of its own
GOP), which is what makes the functional-parallel distribution of Figure 27
legal: any BAN can decode any GOP independently.

Pictures are 16x16 by default ("because of the limitation of simulation
speed" -- section VI.A.3), i.e. exactly one macroblock per picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .bitstream import (
    BitReader,
    BitWriter,
    END_CODE,
    GOP_START,
    PICTURE_START,
    SEQUENCE_START,
)
from .dct import BLOCK, dct2, dezigzag, idct2, zigzag
from .quant import dequantize, quantize

__all__ = [
    "SequenceHeader",
    "Frame",
    "Gop",
    "encode_sequence",
    "decode_sequence",
    "decode_gop_payloads",
    "split_stream",
    "synthetic_video",
    "psnr",
    "DecodeStats",
]

MV_RANGE = 4  # motion search range in pixels


@dataclass
class SequenceHeader:
    width: int = 16
    height: int = 16
    frame_rate_code: int = 3  # 25 fps in MPEG2's table
    quantizer_scale: int = 4

    def validate(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError("picture size must be a multiple of 16")
        if not 1 <= self.quantizer_scale <= 31:
            raise ValueError("quantizer_scale outside [1, 31]")


@dataclass
class Frame:
    """One decoded 4:2:0 picture."""

    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray
    picture_type: str = "I"

    def planes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.y, self.cb, self.cr


@dataclass
class Gop:
    index: int
    frames: List[Frame] = field(default_factory=list)


@dataclass
class DecodeStats:
    """Operation counts the simulation drivers turn into instruction costs."""

    pictures: int = 0
    blocks: int = 0
    coefficients: int = 0
    motion_blocks: int = 0

    def merge(self, other: "DecodeStats") -> None:
        self.pictures += other.pictures
        self.blocks += other.blocks
        self.coefficients += other.coefficients
        self.motion_blocks += other.motion_blocks


# ----------------------------------------------------------------------
# Synthetic input video
# ----------------------------------------------------------------------


def synthetic_video(
    frames: int,
    width: int = 16,
    height: int = 16,
    seed: int = 0x2B,
) -> List[Frame]:
    """Deterministic moving-gradient video with mild noise."""
    rng = np.random.default_rng(seed)
    out: List[Frame] = []
    yy, xx = np.mgrid[0:height, 0:width]
    for t in range(frames):
        y = (
            128
            + 64 * np.sin(2 * np.pi * (xx + 3 * t) / width)
            + 32 * np.cos(2 * np.pi * (yy + 2 * t) / height)
            + rng.normal(0, 1, (height, width))
        )
        cb = 128 + 32 * np.sin(2 * np.pi * (xx[::2, ::2] + t) / width)
        cr = 128 - 32 * np.cos(2 * np.pi * (yy[::2, ::2] + t) / height)
        out.append(
            Frame(
                np.clip(y, 0, 255).round(),
                np.clip(cb, 0, 255).round(),
                np.clip(cr, 0, 255).round(),
            )
        )
    return out


def psnr(reference: np.ndarray, decoded: np.ndarray) -> float:
    mse = float(np.mean((np.asarray(reference, float) - np.asarray(decoded, float)) ** 2))
    if mse == 0:
        return float("inf")
    return 10 * np.log10(255.0 * 255.0 / mse)


# ----------------------------------------------------------------------
# Block-layer coding
# ----------------------------------------------------------------------


def _encode_block(
    writer: BitWriter, pixels: np.ndarray, intra: bool, quantizer_scale: int
) -> None:
    source = np.asarray(pixels, dtype=np.float64)
    if intra:
        source = source - 128.0
    levels = quantize(dct2(source), intra, quantizer_scale)
    scan = zigzag(levels)
    # Run-length code: (run of zeros, level), end-of-block marker run=63.
    position = 0
    nonzero = np.nonzero(scan)[0]
    for index in nonzero:
        run = int(index) - position
        writer.write_ue(run)
        writer.write_se(int(scan[index]))
        position = int(index) + 1
    writer.write_ue(63)  # EOB (a run that cannot occur mid-block)
    writer.write_se(0)


def _decode_block(
    reader: BitReader, intra: bool, quantizer_scale: int, stats: DecodeStats
) -> np.ndarray:
    scan = np.zeros(BLOCK * BLOCK, dtype=np.int64)
    position = 0
    while True:
        run = reader.read_ue()
        level = reader.read_se()
        if run == 63 and level == 0:
            break
        position += run
        if position >= BLOCK * BLOCK:
            raise ValueError("run-length overruns the block")
        scan[position] = level
        position += 1
        stats.coefficients += 1
    block = idct2(dequantize(dezigzag(scan), intra, quantizer_scale))
    stats.blocks += 1
    if intra:
        block = block + 128.0
    return block


def _iter_blocks(plane: np.ndarray):
    height, width = plane.shape
    for row in range(0, height, BLOCK):
        for column in range(0, width, BLOCK):
            yield row, column


def _motion_search(
    reference: np.ndarray, target: np.ndarray, row: int, column: int
) -> Tuple[int, int]:
    """Full search +/-MV_RANGE around (row, column) on the luma plane."""
    height, width = reference.shape
    block = target[row : row + BLOCK, column : column + BLOCK]
    best = (0, 0)
    best_sad = None
    for dy in range(-MV_RANGE, MV_RANGE + 1):
        for dx in range(-MV_RANGE, MV_RANGE + 1):
            r0, c0 = row + dy, column + dx
            if r0 < 0 or c0 < 0 or r0 + BLOCK > height or c0 + BLOCK > width:
                continue
            candidate = reference[r0 : r0 + BLOCK, c0 : c0 + BLOCK]
            sad = float(np.abs(candidate - block).sum())
            if best_sad is None or sad < best_sad:
                best_sad = sad
                best = (dy, dx)
    return best


# ----------------------------------------------------------------------
# Picture / GOP / sequence layers
# ----------------------------------------------------------------------


def _encode_picture(
    writer: BitWriter,
    header: SequenceHeader,
    frame: Frame,
    reference: Optional[Frame],
) -> None:
    intra = reference is None
    writer.start_code(PICTURE_START)
    writer.write_bits(0 if intra else 1, 2)  # picture_coding_type: I=0, P=1
    for plane_index, (plane, ref_plane) in enumerate(
        zip(frame.planes(), reference.planes() if reference else (None, None, None))
    ):
        for row, column in _iter_blocks(plane):
            target = plane[row : row + BLOCK, column : column + BLOCK]
            if intra:
                _encode_block(writer, target, True, header.quantizer_scale)
            else:
                if plane_index == 0:
                    dy, dx = _motion_search(ref_plane, plane, row, column)
                else:
                    dy, dx = 0, 0  # chroma reuses zero MV in this profile
                writer.write_se(dy)
                writer.write_se(dx)
                predicted = ref_plane[row + dy : row + dy + BLOCK, column + dx : column + dx + BLOCK]
                _encode_block(writer, target - predicted, False, header.quantizer_scale)


def _decode_picture(
    reader: BitReader,
    header: SequenceHeader,
    reference: Optional[Frame],
    stats: DecodeStats,
) -> Frame:
    reader.expect_start_code(PICTURE_START)
    coding_type = reader.read_bits(2)
    intra = coding_type == 0
    if not intra and reference is None:
        raise ValueError("P picture without a reference frame")
    shapes = [
        (header.height, header.width),
        (header.height // 2, header.width // 2),
        (header.height // 2, header.width // 2),
    ]
    planes = []
    for plane_index, shape in enumerate(shapes):
        plane = np.zeros(shape)
        ref_plane = None if intra else reference.planes()[plane_index]
        for row, column in _iter_blocks(plane):
            if intra:
                block = _decode_block(reader, True, header.quantizer_scale, stats)
            else:
                dy = reader.read_se()
                dx = reader.read_se()
                residual = _decode_block(reader, False, header.quantizer_scale, stats)
                predicted = ref_plane[
                    row + dy : row + dy + BLOCK, column + dx : column + dx + BLOCK
                ]
                block = predicted + residual
                stats.motion_blocks += 1
            plane[row : row + BLOCK, column : column + BLOCK] = block
        planes.append(np.clip(plane, 0, 255))
    stats.pictures += 1
    return Frame(planes[0], planes[1], planes[2], "I" if intra else "P")


def encode_sequence(
    video: List[Frame],
    header: Optional[SequenceHeader] = None,
    frames_per_gop: int = 2,
) -> bytes:
    """Encode frames as SH + GOPs of (I, P, ...) pictures (Figure 27a)."""
    if not video:
        raise ValueError("no frames to encode")
    header = header or SequenceHeader(
        width=video[0].y.shape[1], height=video[0].y.shape[0]
    )
    header.validate()
    writer = BitWriter()
    gop_count = (len(video) + frames_per_gop - 1) // frames_per_gop
    for gop_index in range(gop_count):
        # The paper's stream interleaves a Sequence Header before every GOP
        # ("composed of Sequence Headers (SHs) and Group Of Pictures").
        writer.start_code(SEQUENCE_START)
        writer.write_bits(header.width, 12)
        writer.write_bits(header.height, 12)
        writer.write_bits(header.frame_rate_code, 4)
        writer.write_bits(header.quantizer_scale, 5)
        writer.start_code(GOP_START)
        writer.write_bits(gop_index, 10)
        chunk = video[gop_index * frames_per_gop : (gop_index + 1) * frames_per_gop]
        writer.write_bits(len(chunk), 4)
        reference: Optional[Frame] = None
        for frame in chunk:
            _encode_picture(writer, header, frame, reference)
            reference = frame  # closed GOP: P predicts from the I just coded
    writer.start_code(END_CODE)
    return writer.getvalue()


def _decode_sequence_header(reader: BitReader) -> SequenceHeader:
    reader.expect_start_code(SEQUENCE_START)
    header = SequenceHeader(
        width=reader.read_bits(12),
        height=reader.read_bits(12),
        frame_rate_code=reader.read_bits(4),
        quantizer_scale=reader.read_bits(5),
    )
    header.validate()
    return header


def decode_sequence(stream: bytes) -> Tuple[List[Gop], DecodeStats]:
    """Decode a whole stream serially (the reference, non-simulated path)."""
    reader = BitReader(stream)
    stats = DecodeStats()
    gops: List[Gop] = []
    while True:
        probe = BitReader(reader.data)
        probe.position = reader.position
        code = probe.next_start_code()
        if code is None or code == END_CODE:
            break
        header = _decode_sequence_header(reader)
        gops.append(_decode_gop(reader, header, stats))
    return gops, stats


def _decode_gop(reader: BitReader, header: SequenceHeader, stats: DecodeStats) -> Gop:
    reader.expect_start_code(GOP_START)
    gop_index = reader.read_bits(10)
    frame_count = reader.read_bits(4)
    gop = Gop(gop_index)
    reference: Optional[Frame] = None
    for _ in range(frame_count):
        frame = _decode_picture(reader, header, reference, stats)
        gop.frames.append(frame)
        reference = frame
    return gop


def split_stream(stream: bytes) -> List[bytes]:
    """Split a stream into per-(SH+GOP) byte chunks (Example 5's unit).

    Each chunk is independently decodable, which is what lets BAN A hand
    "the second SH and GOP" to BAN B in the functional parallel operation.
    """
    boundaries: List[int] = []
    data = stream
    index = 0
    while index + 3 < len(data):
        if data[index] == 0 and data[index + 1] == 0 and data[index + 2] == 1:
            code = data[index + 3]
            if code == SEQUENCE_START:
                boundaries.append(index)
            elif code == END_CODE:
                break
            index += 4
        else:
            index += 1
    boundaries.append(index)  # position of the end code (or stream end)
    return [
        data[start:end] for start, end in zip(boundaries, boundaries[1:])
    ]


def decode_gop_payloads(chunk: bytes) -> Tuple[Gop, DecodeStats]:
    """Decode one SH+GOP chunk produced by :func:`split_stream`."""
    reader = BitReader(chunk)
    stats = DecodeStats()
    header = _decode_sequence_header(reader)
    gop = _decode_gop(reader, header, stats)
    return gop, stats


def iter_decode_chunk(chunk: bytes):
    """Decode one SH+GOP chunk picture by picture.

    Yields ``(gop_index, frame, picture_stats)`` per picture, so the
    simulation driver can charge compute costs (and service communication)
    at picture granularity, like a decoder main loop would.
    """
    reader = BitReader(chunk)
    header = _decode_sequence_header(reader)
    reader.expect_start_code(GOP_START)
    gop_index = reader.read_bits(10)
    frame_count = reader.read_bits(4)
    reference: Optional[Frame] = None
    for _ in range(frame_count):
        stats = DecodeStats()
        frame = _decode_picture(reader, header, reference, stats)
        reference = frame
        yield gop_index, frame, stats
