"""Quantization for the MPEG2 codec.

Uses the MPEG2 default intra quantizer matrix (ISO/IEC 13818-2 table) and a
flat matrix for non-intra (predicted) blocks, both scaled by a picture-level
``quantizer_scale``.  Quantization is the only lossy step in the codec, so
the round-trip tests bound reconstruction error through these tables.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INTRA_QUANT_MATRIX",
    "NONINTRA_QUANT_MATRIX",
    "quantize",
    "dequantize",
]

# MPEG2 default intra quantizer matrix, in raster order.
INTRA_QUANT_MATRIX = np.array(
    [
        [8, 16, 19, 22, 26, 27, 29, 34],
        [16, 16, 22, 24, 27, 29, 34, 37],
        [19, 22, 26, 27, 29, 34, 34, 38],
        [22, 22, 26, 27, 29, 34, 37, 40],
        [22, 26, 27, 29, 32, 35, 40, 48],
        [26, 27, 29, 32, 35, 40, 48, 58],
        [26, 27, 29, 34, 38, 46, 56, 69],
        [27, 29, 35, 38, 46, 56, 69, 83],
    ],
    dtype=np.float64,
)

# MPEG2's default non-intra matrix is flat 16s.
NONINTRA_QUANT_MATRIX = np.full((8, 8), 16.0)


def _step(intra: bool, quantizer_scale: int) -> np.ndarray:
    matrix = INTRA_QUANT_MATRIX if intra else NONINTRA_QUANT_MATRIX
    return matrix * quantizer_scale / 16.0


def quantize(coefficients: np.ndarray, intra: bool, quantizer_scale: int) -> np.ndarray:
    """Divide by the scaled matrix and round to integer levels."""
    if quantizer_scale < 1:
        raise ValueError("quantizer_scale must be >= 1")
    return np.round(np.asarray(coefficients) / _step(intra, quantizer_scale)).astype(
        np.int64
    )


def dequantize(levels: np.ndarray, intra: bool, quantizer_scale: int) -> np.ndarray:
    """Multiply levels back up to reconstructed coefficients."""
    if quantizer_scale < 1:
        raise ValueError("quantizer_scale must be >= 1")
    return np.asarray(levels, dtype=np.float64) * _step(intra, quantizer_scale)
