"""MPEG2 decoder application (section VI.A.3, Table III)."""

from .bitstream import BitReader, BitWriter
from .codec import (
    DecodeStats,
    Frame,
    Gop,
    SequenceHeader,
    decode_gop_payloads,
    decode_sequence,
    encode_sequence,
    iter_decode_chunk,
    psnr,
    split_stream,
    synthetic_video,
)
from .dct import dct2, dezigzag, idct2, zigzag
from .parallel import Mpeg2Result, gop_assignment, run_mpeg2
from .quant import dequantize, quantize
from . import cost

__all__ = [
    "BitReader",
    "BitWriter",
    "DecodeStats",
    "Frame",
    "Gop",
    "SequenceHeader",
    "decode_gop_payloads",
    "decode_sequence",
    "encode_sequence",
    "iter_decode_chunk",
    "psnr",
    "split_stream",
    "synthetic_video",
    "dct2",
    "dezigzag",
    "idct2",
    "zigzag",
    "Mpeg2Result",
    "gop_assignment",
    "run_mpeg2",
    "dequantize",
    "quantize",
    "cost",
]
