"""The 41-task server/client database workload (Table IV).

Layout follows section VI.A.1: forty-one tasks on four PEs -- BAN A runs
one server task plus ten client tasks, every other BAN runs ten clients.
Per Figure 22, the server writes the data each client requested into shared
memory; the client reads it from shared memory and stores it to its own
area, each task moving one hundred 32-bit words.  Object accesses are
serialized by shared-memory locks (Figure 21), and everything runs on the
per-PE RTOS.

On SplitBA the server pushes each client's data into the *client's own
subsystem's* shared SRAM (across the bus bridge for the far half), so the
read traffic of each half stays on its own bus -- the topology advantage
behind Table IV's 41 % execution-time reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ...sim.fabric import Machine
from ...soc.api import SocAPI
from ...soc.rtos import Rtos, Syscall
from .store import ObjectStore

__all__ = ["DatabaseResult", "run_database"]

# Per-task transaction compute: request parsing, bookkeeping, result checks.
TASK_COMPUTE_INSTRUCTIONS = 400
SERVER_PER_CLIENT_INSTRUCTIONS = 300


@dataclass
class DatabaseResult:
    machine_name: str
    cycles: int
    tasks_completed: int
    client_count: int
    words_per_task: int
    lock_acquisitions: int = 0
    lock_contentions: int = 0
    context_switches: Dict[str, int] = field(default_factory=dict)

    @property
    def execution_time_ns(self) -> float:
        return self.cycles * 10.0  # 100 MHz bus clock

    @property
    def execution_time_ms(self) -> float:
        return self.execution_time_ns / 1e6


def run_database(
    machine: Machine,
    client_count: int = 40,
    words_per_task: int = 100,
    object_count: int = 10,
    transactions_per_task: int = 6,
) -> DatabaseResult:
    """Run the database example; returns total execution time."""
    if machine.global_memory is None:
        raise ValueError(
            "the database example requires a shared memory (section VI.C: "
            "GBAVI/BFBA are not simulated with this application)"
        )
    bans = machine.pe_order
    apis = {ban: SocAPI(machine, ban) for ban in bans}
    # The database example's transfer loops are tight library code, not the
    # general marshalling path of the media applications.
    for api in apis.values():
        api.api_call_instructions = 150
    server_ban = bans[0]
    server_api = apis[server_ban]
    server_memory = server_api.shared_memory()

    # One object store (locks + objects) per shared memory: on a single-
    # subsystem machine that is simply the global memory; on SplitBA each
    # half holds its own replica, populated by the server, "so that all
    # clients can easily access object data from the server" on their own
    # bus (section VI.C).
    store_by_memory: Dict[str, ObjectStore] = {}
    for ban in bans:
        memory = apis[ban].shared_memory()
        if memory not in store_by_memory:
            store_by_memory[memory] = ObjectStore(
                machine, apis[ban], object_count, words_per_task, memory=memory
            )
    store = store_by_memory[server_memory]
    all_store_views: List[ObjectStore] = list(store_by_memory.values())
    stores = {}
    for ban in bans:
        home_store = store_by_memory[apis[ban].shared_memory()]
        if home_store.api is apis[ban]:
            stores[ban] = home_store
        else:
            stores[ban] = ObjectStore.attach(machine, apis[ban], home_store)
            all_store_views.append(stores[ban])

    # Client k's delivery area lives in *that client's* subsystem memory
    # (on single-subsystem machines this is simply the global memory).
    clients: List[Tuple[int, str]] = []  # (client id, ban)
    per_ban = _distribute_clients(client_count, bans)
    client_id = 0
    for ban, count in per_ban.items():
        for _ in range(count):
            clients.append((client_id, ban))
            client_id += 1
    delivery: Dict[int, Tuple[str, int]] = {}
    result_area: Dict[int, Tuple[str, int]] = {}
    for cid, ban in clients:
        memory = apis[ban].shared_memory()
        delivery[cid] = (memory, machine.reserve(memory, words_per_task))
        result_area[cid] = (memory, machine.reserve(memory, words_per_task))

    rtoses = {ban: Rtos(apis[ban]) for ban in bans}
    completed: List[str] = []

    def server_task():
        api = server_api
        rtos = rtoses[server_ban]
        # Populate every object replica once, under its lock.
        seed = list(range(words_per_task))
        for replica in store_by_memory.values():
            if replica.api is api:
                view = replica
            else:
                view = ObjectStore.attach(machine, api, replica)
                all_store_views.append(view)
            for obj in view.objects:
                yield from view.write_object(rtos, obj, seed)
        # Then deliver each client's requested data (Figure 22).
        for cid, ban in clients:
            yield from api.compute(SERVER_PER_CLIENT_INSTRUCTIONS)
            payload = [(v + cid) & 0xFFFFFFFF for v in seed]
            yield from api.mem_write(payload, delivery[cid])
            memory = delivery[cid][0]
            yield from api.var_write("DATA_RDY_%d" % cid, 1, memory)
        completed.append("server")

    def client_task(cid: int, ban: str):
        def body():
            api = apis[ban]
            rtos = rtoses[ban]
            view = stores[ban]
            memory = delivery[cid][0]
            # Wait for the server's delivery flag (RTOS-friendly poll).
            while True:
                flag = yield from api.var_read("DATA_RDY_%d" % cid, memory)
                if flag:
                    break
                yield Syscall("sleep", 96)
            values = yield from api.read(delivery[cid], words_per_task)
            yield from api.compute(TASK_COMPUTE_INSTRUCTIONS)
            # Store the processed copy to the task's own area and update
            # the object under its lock (Figure 21's mutually exclusive
            # object access).
            processed = [(v ^ 0x5A5A5A5A) & 0xFFFFFFFF for v in values]
            yield from api.mem_write(processed, result_area[cid])
            # Transaction rounds against shared objects (Figure 21): each
            # round locks an object -- its own, then its neighbours' --
            # reads it, computes, and writes the update back.
            for round_index in range(transactions_per_task):
                obj = view.object(cid + round_index)
                current = yield from view.read_object(rtos, obj, words_per_task)
                yield from api.compute(TASK_COMPUTE_INSTRUCTIONS)
                update = [(v + cid + round_index) & 0xFFFFFFFF for v in current]
                yield from view.write_object(rtos, obj, update)
                yield Syscall("yield")
            completed.append("client%d" % cid)

        return body

    # Spawn tasks: server at higher priority on BAN A, clients everywhere.
    rtoses[server_ban].spawn("server", server_task(), priority=5)
    for cid, ban in clients:
        rtoses[ban].spawn("client%d" % cid, client_task(cid, ban)(), priority=10)
    for ban in bans:
        machine.pe(ban).run(rtoses[ban].run(), "%s.rtos" % ban)
    machine.sim.run()

    result = DatabaseResult(
        machine_name=machine.name,
        cycles=max((pe.finished_at or 0) for pe in machine.pes.values()),
        tasks_completed=len(completed),
        client_count=client_count,
        words_per_task=words_per_task,
    )
    for view in all_store_views:
        for lock in view.locks._locks.values():
            result.lock_acquisitions += lock.acquisitions
            result.lock_contentions += lock.contentions
    for ban, rtos in rtoses.items():
        result.context_switches[ban] = rtos.context_switches
    return result


def _distribute_clients(client_count: int, bans: List[str]) -> Dict[str, int]:
    """Ten clients per BAN with four PEs and forty clients (section VI.A.1);
    round-robin otherwise."""
    per_ban = {ban: 0 for ban in bans}
    for index in range(client_count):
        per_ban[bans[index % len(bans)]] += 1
    return per_ban
