"""Database example application (section VI.A.1, Table IV)."""

from .store import DbObject, ObjectStore
from .workload import DatabaseResult, run_database

__all__ = ["DbObject", "ObjectStore", "DatabaseResult", "run_database"]
