"""Object store for the database example (section VI.A.1).

The paper's database example keeps objects in shared memory; transactions
from tasks on any PE lock an object, access its words, and release it
(Figure 21).  :class:`ObjectStore` lays the objects out in a shared memory
and pairs each with a lock from the shared-memory lock manager, so "the
lock is used to synchronize mutually exclusive accesses of the database
objects in a multiprocessor system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from ...sim.fabric import Machine
from ...soc.api import SocAPI
from ...soc.rtos import LockManager, Rtos, SpinLock

__all__ = ["DbObject", "ObjectStore"]


@dataclass
class DbObject:
    """One database object: a named span of words in shared memory."""

    name: str
    memory: str
    offset: int
    size_words: int

    @property
    def address(self) -> Tuple[str, int]:
        return self.memory, self.offset


class ObjectStore:
    """Objects + their locks, shared by every PE's tasks.

    All PEs must construct their view over the same machine with the same
    ``object_count``/``size_words`` so the layout matches; the store
    allocates deterministically from the shared memory.
    """

    def __init__(
        self,
        machine: Machine,
        api: SocAPI,
        object_count: int,
        size_words: int,
        memory: str = None,
        lock_region: Tuple[str, int] = None,
    ):
        self.machine = machine
        self.api = api
        self.memory = memory or api.shared_memory()
        if lock_region is None:
            lock_region = (self.memory, machine.reserve(self.memory, 64))
        self.locks = LockManager(api, lock_region)
        self.objects: List[DbObject] = []
        for index in range(object_count):
            offset = machine.reserve(self.memory, size_words)
            self.objects.append(
                DbObject("O%d" % index, self.memory, offset, size_words)
            )

    @classmethod
    def attach(
        cls,
        machine: Machine,
        api: SocAPI,
        template: "ObjectStore",
    ) -> "ObjectStore":
        """Another PE's view onto an existing store (same layout, own API)."""
        view = cls.__new__(cls)
        view.machine = machine
        view.api = api
        view.memory = template.memory
        view.locks = LockManager(api, template.locks.base)
        view.objects = template.objects
        return view

    def object(self, index: int) -> DbObject:
        return self.objects[index % len(self.objects)]

    def lock_of(self, obj: DbObject) -> SpinLock:
        return self.locks.lock(obj.name)

    # -- transactional access (RTOS task context) ------------------------
    def read_object(self, rtos: Rtos, obj: DbObject, words: int) -> Generator:
        """Lock, read up to ``words`` from the object, unlock."""
        words = min(words, obj.size_words)
        lock = self.lock_of(obj)
        yield from lock.acquire(rtos)
        try:
            values = yield from self.api.read(obj.address, words)
        finally:
            yield from lock.release(self.api)
        return values

    def write_object(self, rtos: Rtos, obj: DbObject, values) -> Generator:
        """Lock, write ``values`` into the object, unlock."""
        values = list(values)[: obj.size_words]
        lock = self.lock_of(obj)
        yield from lock.acquire(rtos)
        try:
            yield from self.api.mem_write(values, obj.address)
        finally:
            yield from lock.release(self.api)
