"""OFDM transmitter functions (section VI.A.2, Figures 23-25).

The transmitter pipeline: sub-channel data is QPSK-mapped onto carriers,
modulated by an inverse FFT, normalized, and extended with a cyclic guard
block (512 samples for a 2048-sample data block -- "the size of guard data
is usually a quarter of the data block").  The data stream starts with a
train pulse for receiver synchronization (Figure 24), generated once.

These functions do the *real* math (the tests check the IFFT against
numpy and the guard against a cyclic-extension property); the simulation
drivers in :mod:`repro.apps.ofdm.mapping` wrap them with the instruction
costs of :mod:`repro.apps.ofdm.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .fft import bit_reverse_permute, ifft_butterflies

__all__ = [
    "OfdmParameters",
    "generate_bits",
    "symbol_map",
    "bit_reverse",
    "modulate",
    "normalize",
    "insert_guard",
    "train_pulse",
    "transmit_packet",
]

# QPSK constellation (Gray-coded), unit average power.
_QPSK = np.array(
    [1 + 1j, -1 + 1j, 1 - 1j, -1 - 1j], dtype=np.complex128
) / np.sqrt(2.0)


@dataclass
class OfdmParameters:
    """One packet's shape: 2048 data + 512 guard samples by default."""

    data_samples: int = 2048
    guard_samples: int = 512
    bits_per_symbol: int = 2  # QPSK
    packets: int = 8

    @property
    def packet_samples(self) -> int:
        return self.data_samples + self.guard_samples

    @property
    def payload_bits_per_packet(self) -> int:
        return self.data_samples * self.bits_per_symbol

    def validate(self) -> None:
        if self.data_samples & (self.data_samples - 1):
            raise ValueError("data_samples must be a power of two")
        if self.guard_samples >= self.data_samples:
            raise ValueError("guard must be shorter than the data block")


def generate_bits(params: OfdmParameters, packet_index: int) -> np.ndarray:
    """Deterministic per-packet payload bits (the EOP data-generation loop)."""
    rng = np.random.default_rng(0xC0DEC + packet_index)
    return rng.integers(0, 2, params.payload_bits_per_packet, dtype=np.int64)


def symbol_map(bits: np.ndarray) -> np.ndarray:
    """QPSK-map bit pairs onto sub-carrier symbols."""
    bits = np.asarray(bits, dtype=np.int64)
    if len(bits) % 2:
        raise ValueError("QPSK mapping needs an even number of bits")
    indices = bits[0::2] * 2 + bits[1::2]
    return _QPSK[indices]


def bit_reverse(symbols: np.ndarray) -> np.ndarray:
    """Group E's final step: reorder carriers for the in-place IFFT."""
    return bit_reverse_permute(symbols)


def modulate(reordered: np.ndarray) -> np.ndarray:
    """Group F: IFFT butterflies over bit-reversed carriers (unnormalized)."""
    return ifft_butterflies(reordered)


def normalize(samples: np.ndarray) -> np.ndarray:
    """Group G: scale the raw butterfly output by 1/N."""
    return np.asarray(samples) / len(samples)


def insert_guard(samples: np.ndarray, guard_samples: int) -> np.ndarray:
    """Group H: cyclic extension -- prepend the block's tail as the guard.

    Figure 24 shows each packet as Guard + Data; copying the tail keeps the
    packet cyclic so the receiver's FFT window can slide inside the guard.
    """
    samples = np.asarray(samples)
    if guard_samples > len(samples):
        raise ValueError("guard longer than the data block")
    return np.concatenate([samples[-guard_samples:], samples])


def train_pulse(params: OfdmParameters) -> np.ndarray:
    """The synchronization preamble sent once at stream start (Figure 24).

    3 x (guard + data) samples of a constant-amplitude chirp.
    """
    total = 3 * params.packet_samples
    n = np.arange(total)
    return np.exp(1j * np.pi * n * n / total) / np.sqrt(2.0)


def transmit_packet(params: OfdmParameters, packet_index: int) -> np.ndarray:
    """Reference (non-simulated) end-to-end packet, for tests and examples."""
    bits = generate_bits(params, packet_index)
    symbols = symbol_map(bits)
    reordered = bit_reverse(symbols)
    raw = modulate(reordered)
    scaled = normalize(raw)
    return insert_guard(scaled, params.guard_samples)
