"""Radix-2 decimation-in-time (I)FFT, written out as the hardware-style
pipeline the paper partitions across BANs.

Table I splits the OFDM modulation chain into *bit reversal* (function
group E, BAN A) and the *inverse FFT butterflies* (group F, BAN B), so the
two are exposed separately here: :func:`bit_reverse_permute` reorders the
input, and :func:`ifft_butterflies` runs the in-place butterfly passes on
an already-reordered array.  :func:`ifft` composes them and matches
``numpy.fft.ifft`` (which the tests assert).

Each function also reports an *instruction estimate* used by the PE cost
model; the per-element constants live in :mod:`repro.apps.ofdm.cost`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "is_power_of_two",
    "bit_reverse_indices",
    "bit_reverse_permute",
    "ifft_butterflies",
    "ifft",
    "fft",
    "butterfly_count",
]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def bit_reverse_indices(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit addresses."""
    if not is_power_of_two(n):
        raise ValueError("FFT size must be a power of two, got %d" % n)
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def bit_reverse_permute(data: np.ndarray) -> np.ndarray:
    """Function group E's final step: reorder input for the in-place IFFT."""
    data = np.asarray(data, dtype=np.complex128)
    return data[bit_reverse_indices(len(data))]


def ifft_butterflies(data: np.ndarray) -> np.ndarray:
    """In-place butterfly passes over bit-reversed input (group F).

    Performs the *unnormalized* inverse transform; the 1/N normalization is
    a separate pipeline stage (group G), as in Table I.
    """
    data = np.array(data, dtype=np.complex128)
    n = len(data)
    if not is_power_of_two(n):
        raise ValueError("FFT size must be a power of two, got %d" % n)
    span = 1
    while span < n:
        step = span * 2
        # Twiddles for the inverse transform: positive exponent.
        twiddles = np.exp(2j * np.pi * np.arange(span) / step)
        for start in range(0, n, step):
            upper = data[start : start + span].copy()
            lower = data[start + span : start + step] * twiddles
            data[start : start + span] = upper + lower
            data[start + span : start + step] = upper - lower
        span = step
    return data


def ifft(data: np.ndarray) -> np.ndarray:
    """Full normalized inverse FFT (bit reversal + butterflies + 1/N)."""
    n = len(np.asarray(data))
    return ifft_butterflies(bit_reverse_permute(data)) / n


def fft(data: np.ndarray) -> np.ndarray:
    """Forward transform, via the inverse-transform machinery."""
    data = np.asarray(data, dtype=np.complex128)
    n = len(data)
    return np.conj(ifft(np.conj(data))) * n


def butterfly_count(n: int) -> int:
    """Number of butterflies in a radix-2 transform of size n."""
    if not is_power_of_two(n):
        raise ValueError("FFT size must be a power of two, got %d" % n)
    return (n // 2) * (n.bit_length() - 1)
