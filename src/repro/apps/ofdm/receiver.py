"""OFDM receiver: the other end of the paper's transmitter.

The paper's Figure 24 data format exists so a receiver can work: the train
pulse block "allows a receiver to perform channel estimation and data
synchronization", and the cyclic guard absorbs inter-symbol interference.
This module closes the loop -- guard removal, FFT demodulation, one-tap
channel equalization from the train pulse, QPSK demapping -- so the
transmitter's output can be verified end-to-end through a channel model
(delay + complex gain + AWGN).

Used by the tests to assert the modem property: over a clean channel the
recovered bits equal the transmitted bits exactly; over a noisy channel the
bit error rate stays below the QPSK waterline for the configured SNR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .fft import fft
from .transmitter import OfdmParameters, train_pulse

__all__ = ["ChannelModel", "remove_guard", "demodulate", "demap", "receive_packet", "bit_error_rate"]


@dataclass
class ChannelModel:
    """A frequency-flat channel: complex gain, sample delay, AWGN."""

    gain: complex = 1.0
    delay_samples: int = 0
    snr_db: Optional[float] = None  # None = noiseless
    seed: int = 0x0FD

    def apply(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=np.complex128) * self.gain
        if self.delay_samples:
            samples = np.concatenate(
                [np.zeros(self.delay_samples, dtype=np.complex128), samples]
            )
        if self.snr_db is not None:
            rng = np.random.default_rng(self.seed)
            signal_power = float(np.mean(np.abs(samples) ** 2)) or 1.0
            noise_power = signal_power / (10 ** (self.snr_db / 10))
            noise = rng.normal(0, np.sqrt(noise_power / 2), (len(samples), 2))
            samples = samples + noise[:, 0] + 1j * noise[:, 1]
        return samples

    def estimate_from_train(self, params: OfdmParameters, received: np.ndarray) -> complex:
        """One-tap channel estimate by correlating against the known train
        pulse (the synchronization/estimation role Figure 24 gives it)."""
        reference = train_pulse(params)
        window = received[: len(reference)]
        energy = float(np.sum(np.abs(reference) ** 2))
        return complex(np.vdot(reference, window) / energy)


def remove_guard(packet: np.ndarray, guard_samples: int) -> np.ndarray:
    """Drop the cyclic prefix, keeping the data block."""
    packet = np.asarray(packet)
    if len(packet) <= guard_samples:
        raise ValueError("packet shorter than its guard")
    return packet[guard_samples:]


def demodulate(data_block: np.ndarray) -> np.ndarray:
    """FFT back to sub-carrier symbols (the inverse of group F+G)."""
    return fft(np.asarray(data_block, dtype=np.complex128))


def demap(symbols: np.ndarray) -> np.ndarray:
    """Hard-decision QPSK demapping (Gray, matching the transmitter)."""
    symbols = np.asarray(symbols)
    # Transmitter constellation: index = 2*b0 + b1 over
    # [1+1j, -1+1j, 1-1j, -1-1j]/sqrt(2), so b0 rides the imaginary sign
    # and b1 the real sign.
    first_bits = (symbols.imag < 0).astype(np.int64)
    second_bits = (symbols.real < 0).astype(np.int64)
    bits = np.empty(2 * len(symbols), dtype=np.int64)
    bits[0::2] = first_bits
    bits[1::2] = second_bits
    return bits


def receive_packet(
    params: OfdmParameters,
    packet: np.ndarray,
    channel_estimate: complex = 1.0,
) -> np.ndarray:
    """Guard removal -> FFT -> equalize -> demap; returns the payload bits."""
    data_block = remove_guard(packet, params.guard_samples)
    if len(data_block) != params.data_samples:
        raise ValueError(
            "data block is %d samples, expected %d" % (len(data_block), params.data_samples)
        )
    # The transmitter's bit reversal (group E) exists only to feed the
    # in-place IFFT; the time-domain block is the ordinary inverse
    # transform of the mapped symbols, so one forward FFT recovers them.
    symbols = demodulate(data_block) / channel_estimate
    return demap(symbols)


def bit_error_rate(sent_bits: np.ndarray, received_bits: np.ndarray) -> float:
    sent = np.asarray(sent_bits)
    received = np.asarray(received_bits)
    if sent.shape != received.shape:
        raise ValueError("bit arrays differ in length")
    if len(sent) == 0:
        return 0.0
    return float(np.mean(sent != received))
