"""OFDM wireless transmitter application (section VI.A.2)."""

from .fft import bit_reverse_permute, butterfly_count, fft, ifft, ifft_butterflies
from .mapping import GROUP_OF_BAN, OfdmResult, run_fpa, run_ofdm, run_ppa
from .transmitter import (
    OfdmParameters,
    generate_bits,
    insert_guard,
    modulate,
    normalize,
    symbol_map,
    train_pulse,
    transmit_packet,
)
from .receiver import (
    ChannelModel,
    bit_error_rate,
    demap,
    receive_packet,
    remove_guard,
)
from . import cost

__all__ = [
    "bit_reverse_permute",
    "butterfly_count",
    "fft",
    "ifft",
    "ifft_butterflies",
    "GROUP_OF_BAN",
    "OfdmResult",
    "run_fpa",
    "run_ofdm",
    "run_ppa",
    "OfdmParameters",
    "generate_bits",
    "insert_guard",
    "modulate",
    "normalize",
    "symbol_map",
    "train_pulse",
    "transmit_packet",
    "cost",
    "ChannelModel",
    "bit_error_rate",
    "demap",
    "receive_packet",
    "remove_guard",
]
