"""Instruction-cost constants for the OFDM transmitter.

The paper ran the transmitter as compiled C on MPC755 instruction-set
models; we charge per-element instruction estimates instead.  Constants are
calibrated so that (a) the IFFT stage (function group F) is the pipeline
bottleneck, as section VI.A.2 states ("The function on BAN B, IFFT,
unfortunately is difficult to split up"), and (b) the total work of groups
E+G+H roughly equals F, which is what makes the paper's FPA/PPA throughput
ratio come out near 2x (Table II, cases 3 vs 4).

All values are *instructions per element*; the PE model converts them to
cycles with its cycles-per-instruction factor.
"""

from __future__ import annotations

from .fft import butterfly_count

__all__ = [
    "DATA_GEN_PER_SAMPLE",
    "SYMBOL_MAP_PER_SAMPLE",
    "BIT_REVERSE_PER_SAMPLE",
    "BUTTERFLY_INSTR",
    "NORMALIZE_G_PER_SAMPLE",
    "NORMALIZE_H_PER_SAMPLE",
    "GUARD_PER_SAMPLE",
    "OUTPUT_PER_SAMPLE",
    "INIT_INSTR",
    "TRAIN_PULSE_INSTR",
    "SYMBOL_GEN_INSTR",
    "group_e_instructions",
    "group_f_instructions",
    "group_g_instructions",
    "group_h_instructions",
]

# Group E (BAN A): data generation, symbol mapping, bit reversal.
DATA_GEN_PER_SAMPLE = 80
SYMBOL_MAP_PER_SAMPLE = 80
BIT_REVERSE_PER_SAMPLE = 30

# Group F (BAN B): IFFT butterflies -- complex fixed-point multiply/add
# plus loads/stores and loop control per butterfly in compiled C.
BUTTERFLY_INSTR = 50

# Group G (BAN C): normalizing the inverse FFT (scale by 1/N).
NORMALIZE_G_PER_SAMPLE = 35

# Group H (BAN D): final normalization, guard insertion, data output.
NORMALIZE_H_PER_SAMPLE = 20
GUARD_PER_SAMPLE = 40
OUTPUT_PER_SAMPLE = 20

# One-time startup functions (italicized in Table I; excluded from
# throughput, but still executed once).
INIT_INSTR = 20_000
TRAIN_PULSE_INSTR = 60_000
SYMBOL_GEN_INSTR = 30_000


def group_e_instructions(n_samples: int) -> int:
    return n_samples * (DATA_GEN_PER_SAMPLE + SYMBOL_MAP_PER_SAMPLE + BIT_REVERSE_PER_SAMPLE)


def group_f_instructions(n_samples: int) -> int:
    return butterfly_count(n_samples) * BUTTERFLY_INSTR


def group_g_instructions(n_samples: int) -> int:
    return n_samples * NORMALIZE_G_PER_SAMPLE


def group_h_instructions(n_samples: int, guard_samples: int) -> int:
    return (
        n_samples * NORMALIZE_H_PER_SAMPLE
        + guard_samples * GUARD_PER_SAMPLE
        + (n_samples + guard_samples) * OUTPUT_PER_SAMPLE
    )
