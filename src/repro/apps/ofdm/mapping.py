"""Function-group assignment and parallel drivers for the OFDM transmitter.

Table I partitions the transmitter across four BANs:

* group E (BAN A): data generation, symbol mapping, bit reversal
* group F (BAN B): inverse FFT butterflies
* group G (BAN C): normalizing the inverse FFT
* group H (BAN D): normalization, guard insertion, data output

Two software programming styles (Figure 26):

* **PPA** -- pipelined parallel: each BAN runs one group, packets stream
  through the chain over the architecture's natural channel (Bi-FIFO,
  bridged handshake, or shared memory).
* **FPA** -- functional parallel: every BAN runs the whole E-F-G-H chain on
  its own packets; raw payload chunks are distributed through the shared
  memory by one PE per subsystem (Example 5's pattern), so FPA is only
  available on architectures with a shared memory.

Both drivers run the *real* transmitter math; the output packets are
checked against the reference :func:`repro.apps.ofdm.transmitter.transmit_packet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...sim.fabric import Machine
from ...soc import pack
from ...soc.api import SocAPI
from ...soc.handshake import make_channel
from . import cost
from .transmitter import (
    OfdmParameters,
    bit_reverse,
    generate_bits,
    insert_guard,
    modulate,
    normalize,
    symbol_map,
)

__all__ = ["GROUP_OF_BAN", "OfdmResult", "run_ppa", "run_fpa", "run_ofdm"]

# Table I: function group by pipeline position.
GROUP_OF_BAN = ("E", "F", "G", "H")

# Pipelined transfers move whole stage buffers per handshake; BFBA is the
# exception -- a Bi-FIFO transfer cannot exceed the FIFO capacity, so it
# moves FIFO-sized blocks gated by the threshold register (section IV.C.2).



@dataclass
class OfdmResult:
    """Outcome of one simulated OFDM run."""

    machine_name: str
    style: str
    cycles: int
    payload_bits: int
    packets: int
    outputs: List[np.ndarray] = field(default_factory=list)
    # (ban, group, packet_index, start_cycle, end_cycle) compute intervals;
    # this is the data behind Figure 26's occupancy charts.
    schedule: List[Tuple[str, str, int, int, int]] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.cycles / 100e6

    @property
    def throughput_mbps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.payload_bits / self.seconds / 1e6


def _record(result: OfdmResult, api: SocAPI, group: str, packet: int, start: int) -> None:
    result.schedule.append((api.ban, group, packet, start, api.machine.sim.now))


# ----------------------------------------------------------------------
# Function-group bodies: real math + modelled cost + cache traffic
# ----------------------------------------------------------------------


def _group_e(api: SocAPI, params: OfdmParameters, packet: int, buffers, bits=None):
    """Data generation + symbol mapping + bit reversal."""
    if bits is None:
        bits = generate_bits(params, packet)
    symbols = symbol_map(np.asarray(bits))
    reordered = bit_reverse(symbols)
    yield from api.compute(
        cost.group_e_instructions(params.data_samples),
        [api.touch(buffers["symbols"], 2 * params.data_samples, write=True)],
    )
    return reordered


def _group_f(api: SocAPI, params: OfdmParameters, reordered, buffers):
    """IFFT butterflies: log2(N) in-place passes over the work buffer."""
    raw = modulate(reordered)
    passes = params.data_samples.bit_length() - 1
    touches = [
        api.touch(buffers["work"], 2 * params.data_samples, write=True)
        for _ in range(passes)
    ]
    yield from api.compute(cost.group_f_instructions(params.data_samples), touches)
    return raw


def _group_g(api: SocAPI, params: OfdmParameters, raw, buffers):
    """Normalize the inverse FFT output."""
    scaled = normalize(raw)
    yield from api.compute(
        cost.group_g_instructions(params.data_samples),
        [api.touch(buffers["work"], 2 * params.data_samples, write=True)],
    )
    return scaled


def _group_h(api: SocAPI, params: OfdmParameters, scaled, buffers):
    """Final normalization, guard insertion and data output."""
    packet_out = insert_guard(scaled, params.guard_samples)
    yield from api.compute(
        cost.group_h_instructions(params.data_samples, params.guard_samples),
        [api.touch(buffers["out"], 2 * params.packet_samples, write=True)],
    )
    return packet_out


def _startup(api: SocAPI) -> None:
    """One-time functions of BAN A (italicized rows of Table I)."""
    yield from api.compute(cost.INIT_INSTR)
    yield from api.compute(cost.TRAIN_PULSE_INSTR)
    yield from api.compute(cost.SYMBOL_GEN_INSTR)


def _stage_buffers(api: SocAPI, params: OfdmParameters) -> Dict[str, Tuple[str, int]]:
    """Per-PE working buffers in its natural data memory."""
    return {
        "symbols": api.alloc(2 * params.data_samples),
        "work": api.alloc(2 * params.data_samples),
        "out": api.alloc(2 * params.packet_samples),
    }


# ----------------------------------------------------------------------
# PPA driver (Figure 26a)
# ----------------------------------------------------------------------


def _make_pipe(sender: SocAPI, receiver: SocAPI, hop_words: int, prefer):
    """Build a stage-to-stage channel sized for the machine's bus type.

    A Bi-FIFO transfer is bounded by the FIFO capacity, so on BFBA-style
    links large buffers stream in depth-sized blocks; every other channel
    moves the whole hop payload per handshake.
    """
    machine = sender.machine
    if prefer in (None, "BFBA") and machine.fifo_blocks:
        try:
            _device, fifo = machine.fifo_for(sender.ban, receiver.ban)
        except LookupError:
            fifo = None
        if fifo is not None:
            from ...soc.handshake import BfbaChannel

            return BfbaChannel(sender, receiver, min(hop_words, fifo.depth_words))
    return make_channel(sender, receiver, hop_words, prefer=prefer)


def _send_chunked(channel, words: Sequence[int]):
    chunk_size = channel.max_words
    for start in range(0, len(words), chunk_size):
        chunk = list(words[start : start + chunk_size])
        if channel.kind == "BFBA" and len(chunk) < chunk_size:
            chunk.extend([0] * (chunk_size - len(chunk)))  # threshold padding
        yield from channel.send(chunk)


def _recv_chunked(channel, total_words: int):
    words: List[int] = []
    while len(words) < total_words:
        chunk = yield from channel.recv()
        words.extend(chunk)
        yield from channel.release()
    return words[:total_words]


def run_ppa(
    machine: Machine,
    params: Optional[OfdmParameters] = None,
    prefer_channel: Optional[str] = None,
) -> OfdmResult:
    """Pipelined parallel OFDM across the machine's first four PEs."""
    params = params or OfdmParameters()
    params.validate()
    if len(machine.pe_order) < 4:
        raise ValueError("PPA needs four BANs (Table I assigns groups E-H)")
    bans = machine.pe_order[:4]
    apis = {ban: SocAPI(machine, ban) for ban in bans}
    words_per_hop = 2 * params.data_samples
    channels = {}
    for upstream, downstream in zip(bans, bans[1:]):
        channels[(upstream, downstream)] = _make_pipe(
            apis[upstream], apis[downstream], words_per_hop, prefer_channel
        )
    result = OfdmResult(machine.name, "PPA", 0, params.payload_bits_per_packet * params.packets, params.packets)
    buffers = {ban: _stage_buffers(apis[ban], params) for ban in bans}
    handoff: Dict[Tuple[str, int], np.ndarray] = {}

    def stage_a():
        api = apis[bans[0]]
        yield from _startup(api)
        for packet in range(params.packets):
            start = machine.sim.now
            reordered = yield from _group_e(api, params, packet, buffers[bans[0]])
            _record(result, api, "E", packet, start)
            handoff[(bans[0], packet)] = reordered
            words = pack.complex_to_float_words(reordered)
            yield from _send_chunked(channels[(bans[0], bans[1])], words)

    def stage_middle(position: int, body, group: str):
        def program():
            api = apis[bans[position]]
            upstream = channels[(bans[position - 1], bans[position])]
            downstream = channels[(bans[position], bans[position + 1])]
            for packet in range(params.packets):
                words = yield from _recv_chunked(upstream, words_per_hop)
                data = pack.float_words_to_complex(words)
                # Carry exact values from the upstream stage (the packed
                # float32 stream is the bus-visible payload; computation
                # continues in full precision like the C code's doubles).
                exact = handoff.pop((bans[position - 1], packet))
                start = machine.sim.now
                output = yield from body(api, params, exact, buffers[bans[position]])
                _record(result, api, group, packet, start)
                handoff[(bans[position], packet)] = output
                np.testing.assert_allclose(
                    data, exact.astype(np.complex64), rtol=1e-3, atol=1e-3
                )
                yield from _send_chunked(
                    downstream, pack.complex_to_float_words(output)
                )

        return program

    def stage_d():
        api = apis[bans[3]]
        upstream = channels[(bans[2], bans[3])]
        for packet in range(params.packets):
            words = yield from _recv_chunked(upstream, words_per_hop)
            exact = handoff.pop((bans[2], packet))
            start = machine.sim.now
            packet_out = yield from _group_h(api, params, exact, buffers[bans[3]])
            _record(result, api, "H", packet, start)
            result.outputs.append(packet_out)
            del words

    machine.pe(bans[0]).run(stage_a())
    machine.pe(bans[1]).run(stage_middle(1, _group_f, "F")())
    machine.pe(bans[2]).run(stage_middle(2, _group_g, "G")())
    machine.pe(bans[3]).run(stage_d())
    startup_end = _run_and_time(machine, result)
    return result


# ----------------------------------------------------------------------
# FPA driver (Figure 26b)
# ----------------------------------------------------------------------


def run_fpa(machine: Machine, params: Optional[OfdmParameters] = None) -> OfdmResult:
    """Functional parallel OFDM: every PE runs the whole chain.

    Raw payload bits are distributed through the shared memory by one
    distributor PE per subsystem (so SplitBA's two halves source their
    input independently); finished packets are written back to a shared
    output region and completion flags collected.
    """
    params = params or OfdmParameters()
    params.validate()
    if machine.global_memory is None:
        raise ValueError(
            "FPA needs a shared memory (GBAVIII/Hybrid/SplitBA/GGBA/CCBA); "
            "%s has none" % machine.name
        )
    bans = machine.pe_order
    apis = {ban: SocAPI(machine, ban) for ban in bans}
    result = OfdmResult(
        machine.name, "FPA", 0, params.payload_bits_per_packet * params.packets, params.packets
    )
    assignment = {
        packet: bans[packet % len(bans)] for packet in range(params.packets)
    }
    bit_words = params.payload_bits_per_packet // 32
    out_words = 2 * params.packet_samples

    # Group BANs by their shared memory (two groups on SplitBA, one else).
    groups: Dict[str, List[str]] = {}
    for ban in bans:
        groups.setdefault(apis[ban].shared_memory(), []).append(ban)

    # Per-packet input/output areas plus ready/done flags, per shared memory.
    in_buffers: Dict[int, Tuple[str, int]] = {}
    out_buffers: Dict[int, Tuple[str, int]] = {}
    for packet, ban in assignment.items():
        memory = apis[ban].shared_memory()
        in_buffers[packet] = (memory, machine.reserve(memory, bit_words))
        out_buffers[packet] = (memory, machine.reserve(memory, out_words))
    buffers = {ban: _stage_buffers(apis[ban], params) for ban in bans}
    payload: Dict[int, np.ndarray] = {}

    def distributor(ban: str, member_bans: List[str]):
        """First PE of each group: reads the input source, feeds the rest."""
        api = apis[ban]
        memory = api.shared_memory()
        my_packets = [p for p, b in assignment.items() if b in member_bans]
        def feed():
            for packet in my_packets:
                bits = generate_bits(params, packet)
                payload[packet] = bits
                # Reading from the external input device: modelled as a
                # per-word I/O cost, then the write into the shared buffer.
                yield from api.compute(bit_words * 8)
                yield from api.mem_write(pack.bits_to_words(bits), in_buffers[packet])
                yield from api.var_write("PKT_RDY_%d" % packet, 1, memory)
            # Work own packets, then collect completions.
            yield from worker_body(ban)
            for packet in my_packets:
                yield from api.var_wait("PKT_DONE_%d" % packet, 1, memory)
        return feed

    def worker_body(ban: str):
        api = apis[ban]
        memory = api.shared_memory()
        if ban == bans[0]:
            yield from _startup(api)
        for packet in sorted(p for p, b in assignment.items() if b == ban):
            yield from api.var_wait("PKT_RDY_%d" % packet, 1, memory)
            words = yield from api.read(in_buffers[packet], bit_words)
            bits = pack.words_to_bits(words, params.payload_bits_per_packet)
            start = machine.sim.now
            reordered = yield from _group_e(api, params, packet, buffers[ban], bits)
            raw = yield from _group_f(api, params, reordered, buffers[ban])
            scaled = yield from _group_g(api, params, raw, buffers[ban])
            packet_out = yield from _group_h(api, params, scaled, buffers[ban])
            _record(result, api, "EFGH", packet, start)
            result.outputs.append(packet_out)
            yield from api.mem_write(
                pack.complex_to_float_words(packet_out), out_buffers[packet]
            )
            yield from api.var_write("PKT_DONE_%d" % packet, 1, memory)

    def worker(ban: str):
        def program():
            yield from worker_body(ban)
        return program

    for memory, member_bans in groups.items():
        lead = member_bans[0]
        machine.pe(lead).run(distributor(lead, member_bans)())
        for ban in member_bans[1:]:
            machine.pe(ban).run(worker(ban)())
    _run_and_time(machine, result)
    result.outputs.sort(key=lambda packet_out: 0)  # keep insertion order
    return result


def _run_and_time(machine: Machine, result: OfdmResult) -> int:
    machine.sim.run()
    result.cycles = max(
        (pe.finished_at or 0) for pe in machine.pes.values()
    )
    return result.cycles


def run_ofdm(
    machine: Machine,
    style: str,
    params: Optional[OfdmParameters] = None,
    prefer_channel: Optional[str] = None,
) -> OfdmResult:
    """Run the OFDM transmitter in the given style ('PPA' or 'FPA')."""
    style = style.upper()
    if style == "PPA":
        return run_ppa(machine, params, prefer_channel)
    if style == "FPA":
        return run_fpa(machine, params)
    raise ValueError("style must be 'PPA' or 'FPA', got %r" % style)
