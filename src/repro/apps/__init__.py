"""Application workloads used to evaluate generated bus systems.

Three applications, matching section VI.A of the paper:

* :mod:`repro.apps.ofdm` -- an OFDM wireless transmitter (2048-sample
  packets with 512-sample cyclic guard), run in both pipelined-parallel
  (PPA) and functional-parallel (FPA) styles;
* :mod:`repro.apps.mpeg2` -- an MPEG2-profile video decoder (and the
  encoder needed to make its input streams) on 16x16 pictures with I+P
  GOPs, run functionally parallel;
* :mod:`repro.apps.database` -- a server/client object database with
  lock-based transactions running on the RTOS (41 tasks).
"""
