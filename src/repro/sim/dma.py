"""DMA engine (section IV.C.3's optional device).

"A Direct Memory Access (DMA) device can also work for such reading and
writing functions, and the device can be supported in GBAVIII.  In GBAVIII
as presented in this paper, however, one of the PEs performs such functions
rather than using DMA."  This module supplies that device: a bus master
that copies word ranges between memories in bursts, arbitrating for the
buses like any PE, while the PEs keep computing.

A :class:`DmaEngine` attaches to one segment (the global bus in GBAVIII)
and is driven by descriptors: ``copy(src, dst, words)`` returns the
completion event of a background transfer process.  Transfers chunk at
``chunk_words`` per bus tenure so other masters interleave.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from .bus import BusSegment
from .fabric import Machine
from .kernel import Process
from .stats import PeStats

__all__ = ["DmaEngine"]

Address = Tuple[str, int]


class _DmaMaster:
    """The minimal master identity the fabric needs (name + stats)."""

    def __init__(self, name: str):
        self.name = name
        self.stats = PeStats(name)


class DmaEngine:
    """A descriptor-driven copy engine on one bus segment."""

    def __init__(
        self,
        machine: Machine,
        name: str = "DMA0",
        segment: Optional[BusSegment] = None,
        chunk_words: int = 64,
        setup_cycles: int = 20,
    ):
        if segment is None:
            if machine.global_memory is None:
                raise ValueError("DMA needs a segment; this machine has no global bus")
            segment = machine.devices[machine.global_memory].segment
        self.machine = machine
        self.name = name
        self.segment = segment
        self.chunk_words = chunk_words
        self.setup_cycles = setup_cycles
        self.master = _DmaMaster(name)
        machine.home_segment[name] = segment
        machine.direct_segments[name] = {segment}
        self.transfers = 0
        self.words_moved = 0
        self._busy = False

    @property
    def busy(self) -> bool:
        return self._busy

    def copy(self, source: Address, target: Address, words: int) -> Process:
        """Start a background copy; returns its completion event."""
        return self.machine.sim.process(
            self._run(source, target, words), "%s.copy" % self.name
        )

    def _run(self, source: Address, target: Address, words: int) -> Generator:
        if self._busy:
            raise RuntimeError("%s: a descriptor is already in flight" % self.name)
        self._busy = True
        try:
            # Descriptor setup: the PE programmed source/target/count
            # registers; the engine fetches them and arms its counters.
            yield self.setup_cycles
            src_device, src_offset = source
            dst_device, dst_offset = target
            moved = 0
            while moved < words:
                chunk = min(self.chunk_words, words - moved)
                values = yield from self.machine.transaction(
                    self.master, src_device, src_offset + moved, chunk, write=False
                )
                yield from self.machine.transaction(
                    self.master,
                    dst_device,
                    dst_offset + moved,
                    chunk,
                    write=True,
                    data=values,
                )
                moved += chunk
            self.transfers += 1
            self.words_moved += words
            return moved
        finally:
            self._busy = False
