"""Memory models: SRAM, DRAM and simple backing stores.

The Module Library's ``<memory>_comp`` template (library component C,
section V.A) can generate behavioural memories of any size; the experiments
use 8 MB SRAM blocks per BAN plus (for global-bus systems) a global SRAM.

The simulator stores 32-bit words addressed by *word index* (the software
APIs of the paper move "one-hundred 32-bit words" etc.).  A 64-bit data bus
therefore carries two words per beat; the bus model handles beat math, and
the memory model charges its own access latency per burst.

Latency model:

* SRAM: fixed ``access_cycles`` (default 1) to open a burst, then the data
  streams at bus rate.
* DRAM: row-buffer model -- a burst touching an already-open row costs
  ``hit_cycles``; opening a new row costs ``miss_cycles``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["Memory", "Sram", "Dram", "make_memory", "MEMORY_TYPES"]


class Memory:
    """Word-addressed backing store with a pluggable latency model."""

    kind = "memory"

    def __init__(self, name: str, size_words: int):
        if size_words <= 0:
            raise ValueError("memory %r must have positive size" % name)
        self.name = name
        self.size_words = size_words
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        # Fault injector (repro.faults); None keeps access_latency trivial.
        self.faults = None

    # -- latency ---------------------------------------------------------
    def burst_latency(self, address: int, words: int, write: bool) -> int:
        """Cycles to set up a burst of ``words`` starting at ``address``."""
        raise NotImplementedError

    def access_latency(self, address: int, words: int, write: bool) -> int:
        """Burst latency plus any injected wait-state jitter.

        The jitter is purely extra cycles charged while the bus is held --
        it is detected (and accounted) by the fault injector, never a data
        hazard, modelling a slow refresh/contended bank.
        """
        cycles = self.burst_latency(address, words, write)
        if self.faults is not None:
            cycles += self.faults.memory_jitter(self.name)
        return cycles

    # -- data ------------------------------------------------------------
    def _check(self, address: int, count: int = 1) -> None:
        if address < 0 or address + count > self.size_words:
            raise IndexError(
                "%s: access [%d, %d) outside %d words"
                % (self.name, address, address + count, self.size_words)
            )

    def read(self, address: int, count: int = 1) -> List[int]:
        self._check(address, count)
        self.reads += count
        get = self._words.get
        return [get(i, 0) for i in range(address, address + count)]

    def read_word(self, address: int) -> int:
        return self.read(address, 1)[0]

    def write(self, address: int, values: Iterable[int]) -> None:
        values = [value & 0xFFFFFFFF for value in values]
        self._check(address, len(values))
        self.writes += len(values)
        self._words.update(zip(range(address, address + len(values)), values))

    def write_word(self, address: int, value: int) -> None:
        self.write(address, [value])

    def clear(self) -> None:
        self._words.clear()


class Sram(Memory):
    """Single-cycle (configurable) SRAM; the paper's default BAN memory."""

    kind = "SRAM"

    def __init__(self, name: str, size_words: int, access_cycles: int = 1):
        super().__init__(name, size_words)
        self.access_cycles = access_cycles

    def burst_latency(self, address: int, words: int, write: bool) -> int:
        return self.access_cycles


class Dram(Memory):
    """DRAM with a one-row row buffer (open-page policy)."""

    kind = "DRAM"

    def __init__(
        self,
        name: str,
        size_words: int,
        row_words: int = 512,
        hit_cycles: int = 2,
        miss_cycles: int = 6,
    ):
        super().__init__(name, size_words)
        if row_words <= 0:
            raise ValueError("row_words must be positive")
        self.row_words = row_words
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles
        self._open_row: Optional[int] = None
        self.row_hits = 0
        self.row_misses = 0

    def burst_latency(self, address: int, words: int, write: bool) -> int:
        first_row = address // self.row_words
        last_row = (address + max(words, 1) - 1) // self.row_words
        cycles = 0
        for row in range(first_row, last_row + 1):
            if row == self._open_row:
                self.row_hits += 1
                cycles += self.hit_cycles
            else:
                self.row_misses += 1
                cycles += self.miss_cycles
                self._open_row = row
        return cycles


MEMORY_TYPES = {"SRAM": Sram, "DRAM": Dram}


def make_memory(memory_type: str, name: str, size_words: int, **kwargs) -> Memory:
    """Build a memory by type name as given in the Memory Property option."""
    try:
        cls = MEMORY_TYPES[memory_type.upper()]
    except KeyError:
        raise ValueError(
            "unknown memory type %r (expected one of %s)"
            % (memory_type, ", ".join(sorted(MEMORY_TYPES)))
        )
    return cls(name, size_words, **kwargs)
