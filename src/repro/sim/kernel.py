"""Discrete-event simulation kernel.

This module is the foundation of the cycle-level SoC simulator used to
evaluate generated bus systems.  It is a small, self-contained engine in the
style of SimPy: simulation actors are plain Python generator functions
("processes") that ``yield`` *events*; the kernel advances a virtual clock
(measured in bus-clock cycles) and resumes each process when the event it is
waiting for fires.

The kernel deliberately supports only what the bus models need:

* :class:`Event` -- one-shot occurrence carrying an optional value,
* :class:`Timeout` -- an event scheduled a fixed number of cycles ahead,
* :class:`Process` -- a running generator; itself an event that fires when
  the generator returns (carrying its return value),
* :class:`AnyOf` / :class:`AllOf` -- composite events,
* :meth:`Simulator.run` -- drive the event loop to quiescence or a deadline.

Determinism: events scheduled for the same cycle fire in scheduling order
(a monotonically increasing sequence number breaks ties), so simulations are
exactly reproducible run-to-run.

Performance notes.  The dominant yield in the bus models is ``yield <int>``
(a plain cycle delay); :meth:`Process._resume` serves it from a free list of
:class:`_PooledTimeout` objects instead of allocating a fresh
:class:`Timeout` per delay, and pushes straight onto the scheduler without
the ``Event`` constructor.  A pooled timeout is recycled only after it has
been popped and fired, and a process waits on at most one event at a time,
so reuse is invisible to simulation semantics (same firing cycle, same
tie-break order).  ``run`` additionally inlines the pending-event pop and
binds the scheduler operations locally.

Scheduler backends.  Three interchangeable event-queue implementations:

* ``heap`` (:class:`Simulator`) -- a binary heap of ``(cycle, seq, event)``
  tuples; the reference backend.
* ``wheel`` (:class:`WheelSimulator`) -- a timing wheel of
  :data:`WHEEL_SIZE` one-cycle buckets for the dominant short-delay
  traffic, an occupancy bitmask so idle stretches fast-forward straight to
  the next populated bucket, and an overflow heap for events more than
  ``WHEEL_SIZE`` cycles ahead.
* ``compiled`` (:class:`repro.sim.compiled.CompiledSimulator`) -- the wheel
  structures driven by a run loop generated with ``compile()``/``exec``;
  an in-horizon ``yield <int>`` is served by a *direct entry* -- a 1-tuple
  ``(process,)`` resumed straight through ``generator.send`` in the drain
  loop, with no proxy event, callback list, or allocation on the hot path
  (see ``_use_direct`` in :meth:`Process._resume`).

``Simulator(kernel=...)`` selects a backend explicitly; with no argument
the :data:`KERNEL_ENV` environment variable decides (default ``heap``).
All backends fire same-cycle events in exactly the same order (see
:class:`WheelSimulator` for the argument), so simulations are bit-identical
across backends -- ``tests/test_scheduler_parity.py`` enforces this with
differential random workloads.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "WheelSimulator",
    "total_events_processed",
    "KERNEL_BACKENDS",
    "KERNEL_ENV",
    "WHEEL_SIZE",
    "default_kernel",
    "set_default_kernel",
]

# Scheduler backend selection -----------------------------------------------
KERNEL_BACKENDS = ("heap", "wheel", "compiled")
KERNEL_ENV = "REPRO_SIM_KERNEL"

# Timing-wheel geometry: one bucket per cycle, power of two so the bucket
# index is a mask op.  Delays >= WHEEL_SIZE go to the overflow heap.
WHEEL_SIZE = 256
_WHEEL_MASK = WHEEL_SIZE - 1
# 1 << i without a per-push bignum shift, and the low-bit masks used to
# rotate the occupancy bitmask so "bit k" means "k cycles from now".
_WHEEL_BITS = [1 << i for i in range(WHEEL_SIZE)]
_LOW_MASKS = [(1 << i) - 1 for i in range(WHEEL_SIZE)]
# Precomputed ~bit masks: clearing an occupancy bit with a table lookup
# avoids allocating a fresh (negative) big int per drained cycle.
_WHEEL_CLEARS = [~(1 << i) for i in range(WHEEL_SIZE)]


def default_kernel() -> str:
    """The backend ``Simulator()`` picks: ``$REPRO_SIM_KERNEL`` or ``heap``."""
    name = os.environ.get(KERNEL_ENV, "").strip().lower() or "heap"
    if name not in KERNEL_BACKENDS:
        raise SimulationError(
            "unknown scheduler backend %r in $%s (expected one of %s)"
            % (name, KERNEL_ENV, "/".join(KERNEL_BACKENDS))
        )
    return name


def set_default_kernel(name: str) -> None:
    """Set the process-wide default backend (exported to worker processes).

    Implemented through :data:`KERNEL_ENV` so ``ProcessPoolExecutor``
    workers forked/spawned afterwards inherit the choice.
    """
    if name not in KERNEL_BACKENDS:
        raise SimulationError(
            "unknown scheduler backend %r (expected one of %s)"
            % (name, "/".join(KERNEL_BACKENDS))
        )
    os.environ[KERNEL_ENV] = name

# Events processed by every Simulator in this interpreter, ever.  The
# parallel experiment runner reads this before/after a case to report
# per-case event counts from worker processes (repro.experiments.runner).
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Events processed across all simulators in this process."""
    return _TOTAL_EVENTS


class SimulationError(Exception):
    """Raised for kernel misuse (double-firing an event, bad yields, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted.

    The Bi-FIFO threshold interrupt (paper section IV.C.2) is delivered to a
    waiting PE process through this exception.  ``cause`` carries an
    arbitrary payload describing the interrupt source.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, may be triggered at most once via
    :meth:`succeed` (or :meth:`fail`), and thereafter holds a value.
    Processes wait on an event by yielding it; callbacks may also be attached
    directly with :meth:`add_callback`.
    """

    __slots__ = ("sim", "_value", "_exception", "_triggered", "_fired", "callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False  # succeed()/fail() called
        self._fired = False  # callbacks have run
        self.callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only after triggering)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value read from a pending event")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; callbacks run this same cycle."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes see the exception re-raised at their yield point.
        """
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._fired:
            # Late subscription: run at the current cycle via a fresh event.
            proxy = Event(self.sim)
            proxy.callbacks.append(callback)
            proxy._triggered = True
            proxy._value = self._value
            proxy._exception = self._exception
            self.sim._schedule(proxy)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        self._fired = True
        callbacks = self.callbacks
        if not callbacks:
            return
        if len(callbacks) == 1:
            # Single-waiter fast case: no list churn.  add_callback cannot
            # append concurrently -- _fired is already set, so any new
            # subscription goes through the late-subscription proxy.
            callback = callbacks[0]
            callbacks.clear()
            callback(self)
            return
        self.callbacks = []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires ``delay`` cycles after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % (delay,))
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class _PooledTimeout(Event):
    """A free-listed timeout used for the internal ``yield <int>`` fast path.

    Never handed to user code: the only reference is the waiting process's
    ``_target``, so after it fires the kernel can reset and reuse it.  It is
    in the heap at most once at any time (pooled only after its single heap
    entry has been popped and fired).
    """

    __slots__ = ()


class Process(Event):
    """A running generator; fires (as an event) when the generator returns."""

    __slots__ = ("generator", "name", "_send", "_target", "_interrupts")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "send"):
            raise SimulationError("process body must be a generator")
        super().__init__(sim)
        self.generator = generator
        # Bound once: the compiled backend's drain loop resumes processes
        # through this slot without re-binding generator.send per event.
        self._send = generator.send
        self.name = name or getattr(generator, "__name__", "process")
        # While waiting: the Event being waited on, or (compiled backend)
        # the direct-entry 1-tuple sitting in a wheel bucket.  Identity
        # against the firing trigger is the staleness check.
        self._target: Optional[Any] = None
        self._interrupts: Deque[Interrupt] = deque()
        sim._post_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Deliver an :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        self.sim._post_callback(self._resume)

    def _resume(self, trigger: Event) -> None:
        if self._triggered:
            return
        if self._target is not None and trigger is not self._target:
            # A stale wakeup (e.g. interrupt already consumed); deliver only
            # if an interrupt is actually queued.
            if not self._interrupts:
                return
        self._target = None
        try:
            if self._interrupts:
                interrupt = self._interrupts.popleft()
                next_event = self.generator.throw(interrupt)
            elif trigger._exception is not None:
                next_event = self.generator.throw(trigger._exception)
            else:
                next_event = self.generator.send(trigger._value)
        except StopIteration as stop:
            self._triggered = True
            self._value = stop.value
            self.sim._schedule(self)
            return
        except Interrupt:
            raise SimulationError(
                "process %r did not handle an Interrupt" % self.name
            )
        except BaseException as error:
            # An uncaught exception fails the process event: waiters see it
            # re-raised at their yield point.
            self._triggered = True
            self._exception = error
            self.sim._schedule(self)
            return
        if type(next_event) is int:
            # Dominant pattern: ``yield <cycles>``.  Serve it from the
            # timeout pool and schedule directly, skipping Event.__init__
            # and the callback-list append/copy churn.
            if next_event < 0:
                raise SimulationError(
                    "negative timeout delay: %r" % (next_event,)
                )
            sim = self.sim
            if sim._use_direct and next_event < WHEEL_SIZE:
                # Compiled backend, in-horizon delay: schedule a *direct
                # entry* -- a 1-tuple the compiled drain loop resumes via
                # generator.send with no proxy event in between.  The tuple
                # itself is the staleness token: an interrupt wakeup clears
                # _target, and the drained entry is then skipped (counting
                # as one event, exactly like a stale pooled proxy).
                entry = (self,)
                self._target = entry
                index = (sim.now + next_event) & _WHEEL_MASK
                sim._buckets[index].append(entry)
                sim._occupied |= _WHEEL_BITS[index]
                sim._wheel_count += 1
                return
            pool = sim._timeout_pool
            if pool:
                proxy = pool.pop()
                proxy._value = None
                proxy._exception = None
                proxy._fired = False
            else:
                proxy = _PooledTimeout(sim)
                proxy._triggered = True
            proxy.callbacks.append(self._resume)
            self._target = proxy
            if sim._use_wheel:
                # Wheel backend: bucket append for short delays, overflow
                # heap beyond the horizon (see WheelSimulator._schedule).
                if next_event < WHEEL_SIZE:
                    index = (sim.now + next_event) & _WHEEL_MASK
                    sim._buckets[index].append(proxy)
                    sim._occupied |= _WHEEL_BITS[index]
                    sim._wheel_count += 1
                else:
                    sim._overflow_seq = seq = sim._overflow_seq + 1
                    heappush(sim._overflow, (sim.now + next_event, seq, proxy))
            else:
                sim._seq = seq = sim._seq + 1
                heappush(sim._queue, (sim.now + next_event, seq, proxy))
            return
        if isinstance(next_event, int):
            # bool or an int subclass: take the general Timeout path.
            next_event = Timeout(self.sim, int(next_event))
        if not isinstance(next_event, Event):
            raise SimulationError(
                "process %r yielded %r (expected Event or int)"
                % (self.name, next_event)
            )
        self._target = next_event
        next_event.add_callback(self._resume)


class _Composite(Event):
    """Shared machinery for AnyOf / AllOf."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Composite):
    """Fires when the first of its child events fires; value is that event."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if not self._triggered:
            if event._exception is not None:
                self.fail(event._exception)
            else:
                self.succeed(event)


class AllOf(_Composite):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class Simulator:
    """The event loop: a virtual cycle clock plus a pending-event heap.

    ``Simulator(kernel=...)`` is a backend selector: ``"heap"`` (this
    class) or ``"wheel"`` (:class:`WheelSimulator`); ``None`` defers to
    ``$REPRO_SIM_KERNEL``.  Instantiating the subclass directly also works.
    """

    __slots__ = (
        "now",
        "_queue",
        "_seq",
        "_timeout_pool",
        "events_processed",
        "monitor_depth",
        "peak_queue_depth",
    )

    # Backend identity; subclasses override.  _use_wheel and _use_direct are
    # the flags Process._resume branches on in its int-yield fast path
    # (_use_direct additionally selects direct-entry scheduling -- see the
    # compiled backend).
    kernel_name = "heap"
    _use_wheel = False
    _use_direct = False

    def __new__(cls, kernel: Optional[str] = None):
        if cls is Simulator:
            name = kernel if kernel is not None else default_kernel()
            if name == "wheel":
                return object.__new__(WheelSimulator)
            if name == "compiled":
                # Lazy import: the compiled package renders and compiles its
                # run-loop sources on first use; heap/wheel users never pay.
                from .compiled import CompiledSimulator

                return object.__new__(CompiledSimulator)
            if name not in KERNEL_BACKENDS:
                raise SimulationError(
                    "unknown scheduler backend %r (expected one of %s)"
                    % (name, "/".join(KERNEL_BACKENDS))
                )
        return object.__new__(cls)

    def __init__(self, kernel: Optional[str] = None):
        self.now: int = 0
        self._queue: List = []
        self._seq = 0
        self._timeout_pool: List[_PooledTimeout] = []
        # Events processed by this simulator (one per heap pop that fired).
        self.events_processed = 0
        # Observability (repro.obs): when monitor_depth is True, run() takes
        # the monitored loop and tracks the deepest the pending-event heap
        # ever got.  Off by default so the fast loop stays branch-free.
        self.monitor_depth = False
        self.peak_queue_depth = 0

    # -- event construction helpers ------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _post_callback(self, callback: Callable[[Event], None], delay: int = 0) -> None:
        """Schedule ``callback`` to run as an event ``delay`` cycles ahead.

        Kernel-internal: serves process bootstrap and interrupt wakeups from
        the pooled-timeout free list (the callback receives a value-less
        triggered event, exactly like a fired ``Event`` with no payload).
        """
        pool = self._timeout_pool
        if pool:
            proxy = pool.pop()
            proxy._value = None
            proxy._exception = None
            proxy._fired = False
        else:
            proxy = _PooledTimeout(self)
            proxy._triggered = True
        proxy.callbacks.append(callback)
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self.now + delay, seq, proxy))

    def _schedule(self, event: Event, delay: int = 0) -> None:
        # heappush is bound at module level (from-import), not looked up
        # through the heapq module on every call.
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self.now + delay, seq, event))

    def peek(self) -> Optional[int]:
        """Cycle of the next pending event, or None when quiescent."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        if self.monitor_depth and len(self._queue) > self.peak_queue_depth:
            self.peak_queue_depth = len(self._queue)
        when, _seq, event = heappop(self._queue)
        if when < self.now:
            raise SimulationError("time ran backwards")
        self.now = when
        event._fire()
        if type(event) is _PooledTimeout:
            # Fired, popped, and unreferenced (the resumed process cleared
            # its _target): safe to recycle.
            self._timeout_pool.append(event)
        self.events_processed += 1
        global _TOTAL_EVENTS
        _TOTAL_EVENTS += 1

    def run(self, until: Optional[Any] = None, limit: int = 50_000_000) -> Any:
        """Run until ``until`` (an Event or a cycle count) or quiescence.

        ``limit`` bounds the number of processed events as a runaway guard.
        Returns the value of ``until`` when it is an event that fired.

        Deadline semantics (``until`` given as a cycle count): the deadline
        is *exclusive*.  Events scheduled for exactly the deadline cycle do
        **not** fire during this call; the clock stops at the deadline with
        those events still queued, and a subsequent ``run()`` fires them
        first (at the deadline cycle) before advancing further.  This
        matches SimPy's ``Environment.run(until=t)`` and keeps
        ``run(until=t)`` + ``run()`` equivalent to a single ``run()``.
        """
        deadline: Optional[int] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = int(until)

        if self.monitor_depth:
            return self._run_monitored(stop_event, deadline, limit)

        # Hot loop: everything bound locally, heap pop inlined (step() is
        # kept as the single-step public API but not called from here).
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        pooled_type = _PooledTimeout
        steps = 0
        try:
            while queue:
                if stop_event is not None and stop_event._fired:
                    return stop_event.value
                when = queue[0][0]
                if deadline is not None and when >= deadline:
                    self.now = deadline
                    return None
                event = pop(queue)[2]
                self.now = when
                event._fire()
                if type(event) is pooled_type:
                    pool.append(event)
                steps += 1
                if steps > limit:
                    raise SimulationError("event limit exceeded (livelock?)")
            if stop_event is not None:
                if stop_event._fired:
                    return stop_event.value
                raise SimulationError(
                    "simulation ran to quiescence before the awaited event fired"
                )
            if deadline is not None:
                self.now = deadline
            return None
        finally:
            self.events_processed += steps
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += steps

    def _run_monitored(
        self,
        stop_event: Optional[Event],
        deadline: Optional[int],
        limit: int,
    ) -> Any:
        """run()'s loop plus peak-queue-depth tracking.

        A verbatim copy of the hot loop with one added comparison per pop;
        kept separate (rather than branching inside run()) so the default
        path pays nothing for observability.  Firing order, deadline
        semantics and event counting are identical -- a monitored run is
        bit-identical to an unmonitored one.
        """
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        pooled_type = _PooledTimeout
        peak = self.peak_queue_depth
        steps = 0
        try:
            while queue:
                if stop_event is not None and stop_event._fired:
                    return stop_event.value
                if len(queue) > peak:
                    peak = len(queue)
                when = queue[0][0]
                if deadline is not None and when >= deadline:
                    self.now = deadline
                    return None
                event = pop(queue)[2]
                self.now = when
                event._fire()
                if type(event) is pooled_type:
                    pool.append(event)
                steps += 1
                if steps > limit:
                    raise SimulationError("event limit exceeded (livelock?)")
            if stop_event is not None:
                if stop_event._fired:
                    return stop_event.value
                raise SimulationError(
                    "simulation ran to quiescence before the awaited event fired"
                )
            if deadline is not None:
                self.now = deadline
            return None
        finally:
            if peak > self.peak_queue_depth:
                self.peak_queue_depth = peak
            self.events_processed += steps
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += steps


class WheelSimulator(Simulator):
    """Timing-wheel scheduler backend (bucketed calendar queue).

    Data structures:

    * ``_buckets`` -- :data:`WHEEL_SIZE` lists, one per cycle; an event due
      ``d < WHEEL_SIZE`` cycles ahead is appended to
      ``_buckets[(now + d) % WHEEL_SIZE]``.  Scheduling and cancellation-free
      firing are plain list ops -- no heap sift, no ``(when, seq, event)``
      tuple per event.
    * ``_occupied`` -- a WHEEL_SIZE-bit mask with bit ``i`` set while bucket
      ``i`` holds events.  Finding the next populated cycle rotates the mask
      so "bit k" means "k cycles ahead" and isolates the lowest set bit --
      idle stretches fast-forward in O(1) instead of iterating empty cycles.
    * ``_overflow`` -- a ``(when, seq, event)`` heap for events at least
      ``WHEEL_SIZE`` cycles ahead (long compute phases, watchdog sleeps).

    Determinism: the heap backend fires same-cycle events in scheduling
    (sequence-number) order.  The wheel reproduces that order structurally:

    * bucket entries are appended, and therefore drained, in scheduling
      order;
    * an overflow event due at cycle ``T`` was scheduled at some
      ``t0 <= T - WHEEL_SIZE``, while any bucket entry for ``T`` was
      scheduled at some ``t1 > T - WHEEL_SIZE`` -- strictly later.  Draining
      a cycle's overflow entries (heap-ordered by their own sequence
      numbers) *before* its bucket therefore yields exactly the global
      scheduling order, with no per-entry sequence number in the buckets.

    Invariant: every bucket entry is due in ``[now, now + WHEEL_SIZE)``, so
    bucket indices never collide across wheel revolutions (``now`` only
    advances to the next populated cycle, never past a pending entry).
    """

    __slots__ = ("_buckets", "_occupied", "_overflow", "_overflow_seq", "_wheel_count")

    kernel_name = "wheel"
    _use_wheel = True

    def __init__(self, kernel: Optional[str] = None):
        super().__init__()
        self._buckets: List[List[Event]] = [[] for _ in range(WHEEL_SIZE)]
        self._occupied = 0
        self._overflow: List = []
        self._overflow_seq = 0
        self._wheel_count = 0

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < WHEEL_SIZE:
            index = (self.now + delay) & _WHEEL_MASK
            self._buckets[index].append(event)
            self._occupied |= _WHEEL_BITS[index]
            self._wheel_count += 1
        else:
            self._overflow_seq = seq = self._overflow_seq + 1
            heappush(self._overflow, (self.now + delay, seq, event))

    def _post_callback(self, callback: Callable[[Event], None], delay: int = 0) -> None:
        pool = self._timeout_pool
        if pool:
            proxy = pool.pop()
            proxy._value = None
            proxy._exception = None
            proxy._fired = False
        else:
            proxy = _PooledTimeout(self)
            proxy._triggered = True
        proxy.callbacks.append(callback)
        self._schedule(proxy, delay)

    # -- introspection --------------------------------------------------
    def _next_cycle(self) -> Optional[int]:
        """Cycle of the next pending event: wheel bitmask vs overflow top."""
        wheel_when = None
        occupied = self._occupied
        if occupied:
            # Lowest set bit at or after ``now``'s position, wrapping once:
            # cheaper than rotating the whole mask (fewer big-int temps).
            index = self.now & _WHEEL_MASK
            ahead = occupied >> index
            if ahead:
                wheel_when = self.now + (ahead & -ahead).bit_length() - 1
            else:
                low = occupied & _LOW_MASKS[index]
                wheel_when = (
                    self.now + WHEEL_SIZE - index + (low & -low).bit_length() - 1
                )
        overflow = self._overflow
        if overflow:
            over_when = overflow[0][0]
            if wheel_when is None or over_when < wheel_when:
                return over_when
        return wheel_when

    def peek(self) -> Optional[int]:
        return self._next_cycle()

    @property
    def pending_events(self) -> int:
        """Events currently scheduled (wheel buckets + overflow heap)."""
        return self._wheel_count + len(self._overflow)

    # -- stepping -------------------------------------------------------
    def step(self) -> None:
        when = self._next_cycle()
        if when is None:
            raise IndexError("step from an empty event schedule")
        if self.monitor_depth:
            depth = self._wheel_count + len(self._overflow)
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
        overflow = self._overflow
        if overflow and overflow[0][0] == when:
            event = heappop(overflow)[2]
        else:
            index = when & _WHEEL_MASK
            bucket = self._buckets[index]
            event = bucket.pop(0)
            self._wheel_count -= 1
            if not bucket:
                self._occupied &= _WHEEL_CLEARS[index]
        self.now = when
        event._fire()
        if type(event) is _PooledTimeout:
            self._timeout_pool.append(event)
        self.events_processed += 1
        global _TOTAL_EVENTS
        _TOTAL_EVENTS += 1

    # -- event loop -----------------------------------------------------
    def run(self, until: Optional[Any] = None, limit: int = 50_000_000) -> Any:
        """Heap-backend ``run`` semantics on the wheel structures.

        Same deadline/stop-event/limit contract as :meth:`Simulator.run`;
        firing order is bit-identical (see the class docstring).
        """
        deadline: Optional[int] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = int(until)

        if self.monitor_depth:
            return self._run_monitored(stop_event, deadline, limit)

        buckets = self._buckets
        overflow = self._overflow
        pool = self._timeout_pool
        pop = heappop
        pooled_type = _PooledTimeout
        mask = _WHEEL_MASK
        steps = 0
        try:
            while True:
                if stop_event is not None and stop_event._fired:
                    return stop_event.value
                # Next populated cycle.  The dominant traffic is delay-1
                # (bus beats), so probe now/now+1 before the bitmask rotate.
                now = self.now
                if buckets[now & mask]:
                    when = now
                else:
                    occupied = self._occupied
                    if occupied and buckets[(now + 1) & mask]:
                        when = now + 1
                    elif occupied:
                        # Lowest set bit at or after ``now``, wrapping once
                        # (see _next_cycle); now's own bit is clear -- its
                        # bucket was just probed empty.
                        index = now & mask
                        ahead = occupied >> index
                        if ahead:
                            when = now + (ahead & -ahead).bit_length() - 1
                        else:
                            low = occupied & _LOW_MASKS[index]
                            when = (
                                now + WHEEL_SIZE - index
                                + (low & -low).bit_length() - 1
                            )
                    else:
                        when = None
                if overflow:
                    over_when = overflow[0][0]
                    if when is None or over_when < when:
                        when = over_when
                elif when is None:
                    break  # quiescent
                if deadline is not None and when >= deadline:
                    self.now = deadline
                    return None
                self.now = when
                # Overflow entries for this cycle fire before bucket
                # entries -- they were necessarily scheduled earlier (see
                # class docstring).
                while overflow and overflow[0][0] == when:
                    if stop_event is not None and stop_event._fired:
                        return stop_event.value
                    event = pop(overflow)[2]
                    event._fire()
                    if type(event) is pooled_type:
                        pool.append(event)
                    steps += 1
                    if steps > limit:
                        raise SimulationError("event limit exceeded (livelock?)")
                index = when & mask
                bucket = buckets[index]
                # Empty bucket (sparse long-delay traffic living in the
                # overflow heap): skip the whole drain -- no try/finally,
                # no occupancy-bit arithmetic.  The bit is clear whenever
                # the bucket is empty, so nothing needs cleanup here.
                if not bucket:
                    continue
                if len(bucket) == 1:
                    # Lone event this cycle (the common case outside bursts):
                    # consume it before firing -- a callback that schedules
                    # zero-delay work re-populates the bucket and re-sets the
                    # bit, and the next loop pass picks it up this same cycle.
                    if stop_event is not None and stop_event._fired:
                        return stop_event.value
                    event = bucket[0]
                    del bucket[:]
                    self._wheel_count -= 1
                    self._occupied &= _WHEEL_CLEARS[index]
                    if type(event) is pooled_type:
                        event._fired = True
                        callbacks = event.callbacks
                        callback = callbacks[0]
                        callbacks.clear()
                        callback(event)
                        pool.append(event)
                    else:
                        event._fire()
                    steps += 1
                    if steps > limit:
                        raise SimulationError("event limit exceeded (livelock?)")
                    continue
                fired = 0
                try:
                    # len() is re-read every pass: zero-delay events
                    # scheduled by a callback land in this same bucket and
                    # fire this cycle, exactly like the heap backend.
                    while fired < len(bucket):
                        if stop_event is not None and stop_event._fired:
                            return stop_event.value
                        event = bucket[fired]
                        fired += 1
                        if type(event) is pooled_type:
                            # Inlined single-callback _fire: a pooled
                            # timeout always has exactly one waiter.
                            event._fired = True
                            callbacks = event.callbacks
                            callback = callbacks[0]
                            callbacks.clear()
                            callback(event)
                            pool.append(event)
                        else:
                            event._fire()
                        steps += 1
                        if steps > limit:
                            raise SimulationError(
                                "event limit exceeded (livelock?)"
                            )
                finally:
                    # Runs on normal drain, early stop-event return, and
                    # mid-cycle exceptions alike: drop fired entries, keep
                    # the rest, and keep the occupancy bit truthful.
                    if fired:
                        self._wheel_count -= fired
                        del bucket[:fired]
                    if not bucket:
                        self._occupied &= _WHEEL_CLEARS[index]
            if stop_event is not None:
                if stop_event._fired:
                    return stop_event.value
                raise SimulationError(
                    "simulation ran to quiescence before the awaited event fired"
                )
            if deadline is not None:
                self.now = deadline
            return None
        finally:
            self.events_processed += steps
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += steps

    def _run_monitored(
        self,
        stop_event: Optional[Event],
        deadline: Optional[int],
        limit: int,
    ) -> Any:
        """Wheel run loop plus peak-pending-depth tracking (cf. heap
        version): one depth comparison before each fire, measured while the
        about-to-fire event still counts, matching the heap's convention of
        reading ``len(queue)`` before the pop."""
        buckets = self._buckets
        overflow = self._overflow
        pool = self._timeout_pool
        pop = heappop
        pooled_type = _PooledTimeout
        mask = _WHEEL_MASK
        peak = self.peak_queue_depth
        steps = 0
        try:
            while True:
                if stop_event is not None and stop_event._fired:
                    return stop_event.value
                now = self.now
                if buckets[now & mask]:
                    when = now
                else:
                    occupied = self._occupied
                    if occupied and buckets[(now + 1) & mask]:
                        when = now + 1
                    elif occupied:
                        # Lowest set bit at or after ``now``, wrapping once
                        # (see _next_cycle); now's own bit is clear -- its
                        # bucket was just probed empty.
                        index = now & mask
                        ahead = occupied >> index
                        if ahead:
                            when = now + (ahead & -ahead).bit_length() - 1
                        else:
                            low = occupied & _LOW_MASKS[index]
                            when = (
                                now + WHEEL_SIZE - index
                                + (low & -low).bit_length() - 1
                            )
                    else:
                        when = None
                if overflow:
                    over_when = overflow[0][0]
                    if when is None or over_when < when:
                        when = over_when
                elif when is None:
                    break
                if deadline is not None and when >= deadline:
                    self.now = deadline
                    return None
                self.now = when
                while overflow and overflow[0][0] == when:
                    if stop_event is not None and stop_event._fired:
                        return stop_event.value
                    depth = self._wheel_count + len(overflow)
                    if depth > peak:
                        peak = depth
                    event = pop(overflow)[2]
                    event._fire()
                    if type(event) is pooled_type:
                        pool.append(event)
                    steps += 1
                    if steps > limit:
                        raise SimulationError("event limit exceeded (livelock?)")
                index = when & mask
                bucket = buckets[index]
                if not bucket:
                    continue
                fired = 0
                try:
                    while fired < len(bucket):
                        if stop_event is not None and stop_event._fired:
                            return stop_event.value
                        depth = self._wheel_count - fired + len(overflow)
                        if depth > peak:
                            peak = depth
                        event = bucket[fired]
                        fired += 1
                        event._fire()
                        if type(event) is pooled_type:
                            pool.append(event)
                        steps += 1
                        if steps > limit:
                            raise SimulationError(
                                "event limit exceeded (livelock?)"
                            )
                finally:
                    if fired:
                        self._wheel_count -= fired
                        del bucket[:fired]
                    if not bucket:
                        self._occupied &= _WHEEL_CLEARS[index]
            if stop_event is not None:
                if stop_event._fired:
                    return stop_event.value
                raise SimulationError(
                    "simulation ran to quiescence before the awaited event fired"
                )
            if deadline is not None:
                self.now = deadline
            return None
        finally:
            if peak > self.peak_queue_depth:
                self.peak_queue_depth = peak
            self.events_processed += steps
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += steps
