"""Handshake register blocks (HS_REGS).

The paper's 2-register handshake protocol (Example 2, Figure 10) uses two
one-bit registers shared by a sender/receiver PE pair:

* ``DONE_OP`` -- sender sets it when processed data is ready,
* ``DONE_RV`` -- receiver sets it when the data has been consumed.

The registers live in the receiver's BAN and are reachable from both sides
of the pair.  This module models the register block itself; the polling /
interrupt protocol state machines built on top live in
:mod:`repro.soc.handshake`.

A :class:`HandshakeRegisters` block optionally records a value-change trace,
which the figure-reproduction benches use to check the waveforms of
Figures 11-13.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .kernel import Event, Simulator

__all__ = ["HandshakeRegisters", "SharedVariables"]

_VALID = ("DONE_OP", "DONE_RV")


class HandshakeRegisters:
    """Two one-bit registers with change notification and tracing."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        done_op: int = 0,
        done_rv: int = 0,
        trace: bool = False,
    ):
        self.sim = sim
        self.name = name
        self._values = {"DONE_OP": done_op & 1, "DONE_RV": done_rv & 1}
        self._watchers = {"DONE_OP": [], "DONE_RV": []}
        self.trace_enabled = trace
        self.trace: List[Tuple[int, str, int]] = []

    def _check_name(self, register: str) -> None:
        if register not in _VALID:
            raise KeyError(
                "%s: unknown handshake register %r (expected DONE_OP/DONE_RV)"
                % (self.name, register)
            )

    def read(self, register: str) -> int:
        self._check_name(register)
        return self._values[register]

    def write(self, register: str, value: int) -> None:
        self._check_name(register)
        value &= 1
        if self._values[register] == value:
            return
        self._values[register] = value
        if self.trace_enabled:
            self.trace.append((self.sim.now, register, value))
        watchers, self._watchers[register] = self._watchers[register], []
        for wanted, event in watchers:
            if wanted is None or wanted == value:
                event.succeed(value)
            else:
                self._watchers[register].append((wanted, event))

    def wait_for(self, register: str, value: Optional[int] = None) -> Event:
        """Event firing when ``register`` next changes (to ``value`` if given).

        If the register already holds ``value`` the event fires immediately,
        modelling level-sensitive polling hardware.
        """
        self._check_name(register)
        event = self.sim.event()
        if value is not None and self._values[register] == value:
            event.succeed(value)
        else:
            self._watchers[register].append((value, event))
        return event

    # Convenience accessors used by the protocol layer.
    @property
    def done_op(self) -> int:
        return self._values["DONE_OP"]

    @property
    def done_rv(self) -> int:
        return self._values["DONE_RV"]


class SharedVariables:
    """Named one-word flags stored in a region of a shared memory.

    GBAVIII/SplitBA/Hybrid keep their DONE_OP/DONE_RV state as *global
    control variables* in the Global SRAM (section IV.C.3) rather than in
    dedicated registers.  This class maps variable names onto words of a
    :class:`repro.sim.memory.Memory` so that every access really is a memory
    access (and therefore really does cross the bus and the arbiter --
    exactly the traffic the paper's arbitration argument is about).
    """

    def __init__(self, memory, base_address: int):
        self.memory = memory
        self.base_address = base_address
        self._slots = {}

    def slot(self, variable: str) -> int:
        """Word address backing ``variable`` (allocated on first use)."""
        if variable not in self._slots:
            self._slots[variable] = self.base_address + len(self._slots)
        return self._slots[variable]

    def peek(self, variable: str) -> int:
        """Read without bus traffic (testing/debug only)."""
        return self.memory.read_word(self.slot(variable))

    def poke(self, variable: str, value: int) -> None:
        """Write without bus traffic (testing/debug only)."""
        self.memory.write_word(self.slot(variable), value)
