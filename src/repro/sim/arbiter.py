"""Bus arbiters.

The paper's global bus architectures (GBAVIII, SplitBA, Hybrid, GGBA, CCBA)
resolve simultaneous memory requests with a hardware arbiter (Figure 5).  The
paper's generated arbiter uses a first-come-first-serve (FCFS) policy backed
by a FIFO, and the Module Library also offers "Round Robin" and "Priority"
variants (library component F, section V.A).

An arbiter here is a grant queue: masters call :meth:`Arbiter.request` and
receive an event that fires when they own the bus; they must call
:meth:`Arbiter.release` when the transaction completes.  The policy only
chooses *which* pending request is granted next -- grant latency in cycles is
charged by the bus model (:mod:`repro.sim.bus`), because it is a property of
the bus protocol (3 cycles for BusSyn buses, 5 for the CoreConnect-style
CCBA baseline).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER
from .kernel import Event, Simulator

__all__ = [
    "Arbiter",
    "FCFSArbiter",
    "RoundRobinArbiter",
    "PriorityArbiter",
    "make_arbiter",
    "ARBITER_POLICIES",
]


class Arbiter:
    """Base class: owns the grant state and bookkeeping, defers policy."""

    __slots__ = (
        "sim",
        "name",
        "owner",
        "grants",
        "busy_since",
        "busy_cycles",
        "wait_cycles",
        "_pending",
        "peak_pending",
        "tracer",
        "trace_enabled",
        "trace",
        "faults",
        "monitor",
    )

    policy_name = "abstract"

    def __init__(self, sim: Simulator, name: str = "arbiter"):
        self.sim = sim
        self.name = name
        self.owner: Optional[str] = None
        self.grants = 0
        self.busy_since: Optional[int] = None
        self.busy_cycles = 0
        self.wait_cycles = 0
        self._pending: List[Tuple[str, Event, int]] = []
        # Deepest the request queue ever got (updated on the contended
        # path only; feeds RunReport.peak_pending_requests).
        self.peak_pending = 0
        # Span tracer (repro.obs); NULL_TRACER keeps the grant path free.
        self.tracer = NULL_TRACER
        # When enabled, records (cycle, master, granted?) edges for the
        # VCD export (repro.sim.vcd).
        self.trace_enabled = False
        self.trace: List[Tuple[int, str, bool]] = []
        # Fault injector (repro.faults); None keeps _dispatch hook-free.
        self.faults = None
        # Protocol assertion monitor (repro.verify.monitors); None keeps
        # every grant-path hook on the zero-cost branch.
        self.monitor = None

    # -- master interface ------------------------------------------------
    def try_claim(self, master: str) -> bool:
        """Synchronously claim an idle arbiter; returns False when busy.

        Equivalent to :meth:`request` granting immediately, minus the event
        round-trip through the kernel (the grant would fire this same cycle
        with zero wait).  Callers fall back to ``yield request(master)``.
        """
        if self.owner is None and not self._pending:
            self._note(master)
            self.owner = master
            self.grants += 1
            self.busy_since = self.sim.now
            if self.trace_enabled:
                self.trace.append((self.sim.now, master, True))
            if self.monitor is not None:
                self.monitor.on_grant(self, master, queued=False)
            return True
        return False

    def request(self, master: str) -> Event:
        """Queue a bus request; the returned event fires on grant."""
        grant = self.sim.event()
        if self.owner is None and not self._pending:
            # Uncontended: grant immediately without queueing.  Selection is
            # trivially identical for every policy (one candidate); policies
            # that track requesters get the _note hook.
            self._note(master)
            self.owner = master
            self.grants += 1
            self.busy_since = self.sim.now
            if self.trace_enabled:
                self.trace.append((self.sim.now, master, True))
            if self.monitor is not None:
                self.monitor.on_grant(self, master, queued=False)
            grant.succeed(master)
            return grant
        self._enqueue(master, grant, self.sim.now)
        if self.monitor is not None:
            self.monitor.on_request(self, master)
        self._dispatch()
        return grant

    def release(self, master: str) -> None:
        if self.owner != master:
            raise RuntimeError(
                "%s released by %r but owned by %r" % (self.name, master, self.owner)
            )
        if self.trace_enabled:
            self.trace.append((self.sim.now, master, False))
        if self.monitor is not None:
            self.monitor.on_release(self, master)
        self.owner = None
        if self.busy_since is not None:
            self.busy_cycles += self.sim.now - self.busy_since
            self.busy_since = None
        self._dispatch()

    def cancel(self, master: str, grant: Event) -> None:
        """Withdraw a request whose master stopped waiting for ``grant``.

        Called when a master gives up on the bus (timeout-escalation
        exhaustion): if the grant already landed -- the master owns the
        bus without knowing it -- release it; otherwise drop the queued
        entry so a later dispatch cannot grant a master that will never
        drive the bus (which would wedge the segment for everyone).
        """
        if self.owner == master:
            # The grant already landed (or its lost pulse is still in
            # flight): the giver-upper secretly owns the bus -- free it.
            self.release(master)
            return
        for index, (_master, pending_grant, _when) in enumerate(self._pending):
            if pending_grant is grant:
                del self._pending[index]
                if self.monitor is not None:
                    self.monitor.on_cancel(self, master)
                return

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- policy hooks ------------------------------------------------------
    def _note(self, master: str) -> None:
        """Observe a requester on the immediate-grant fast path (no queue)."""

    def _enqueue(self, master: str, grant: Event, when: int) -> None:
        self._pending.append((master, grant, when))
        if len(self._pending) > self.peak_pending:
            self.peak_pending = len(self._pending)

    def _select(self) -> int:
        """Index into ``_pending`` of the next request to grant."""
        raise NotImplementedError

    # -- internals -----------------------------------------------------------
    def _dispatch(self) -> None:
        if self.owner is not None or not self._pending:
            return
        index = self._select()
        master, grant, requested_at = self._pending.pop(index)
        self.owner = master
        self.grants += 1
        self.wait_cycles += self.sim.now - requested_at
        self.busy_since = self.sim.now
        if self.trace_enabled:
            self.trace.append((self.sim.now, master, True))
        if self.monitor is not None:
            self.monitor.on_grant(self, master, queued=True)
        if self.tracer.enabled:
            # Queued grants only -- immediate grants carry zero wait and
            # already appear as the transaction span's arbitration phase.
            self.tracer.instant(
                self.sim.now,
                self.name,
                "grant %s" % master,
                {
                    "waited": self.sim.now - requested_at,
                    "still_pending": len(self._pending),
                },
            )
        if self.faults is not None and self.faults.intercept_grant(self, master, grant):
            # Grant issued (owner/accounting above stand) but the pulse was
            # lost in flight; the fault injector's watchdog redelivers it.
            return
        grant.succeed(master)


class FCFSArbiter(Arbiter):
    """First-come-first-serve: the FIFO policy of the paper's global arbiter."""

    __slots__ = ()

    policy_name = "fcfs"

    def _select(self) -> int:
        return 0


class RoundRobinArbiter(Arbiter):
    """Rotating priority among masters, starting after the last grantee."""

    __slots__ = ("_order",)

    policy_name = "round_robin"

    def __init__(self, sim: Simulator, name: str = "arbiter"):
        super().__init__(sim, name)
        self._order: Deque[str] = deque()

    def _note_master(self, master: str) -> None:
        if master not in self._order:
            self._order.append(master)

    def _note(self, master: str) -> None:
        # An immediate grant must rotate the ring exactly as _select would.
        self._note_master(master)
        self._order.rotate(-(list(self._order).index(master) + 1))

    def _enqueue(self, master: str, grant: Event, when: int) -> None:
        self._note_master(master)
        super()._enqueue(master, grant, when)

    def _select(self) -> int:
        pending_masters = {master for master, _g, _w in self._pending}
        for master in self._order:
            if master in pending_masters:
                chosen = master
                break
        else:  # pragma: no cover - _pending non-empty implies a hit
            chosen = self._pending[0][0]
        # Rotate so the chosen master moves to the back of the ring.
        self._order.rotate(-(list(self._order).index(chosen) + 1))
        for index, (master, _grant, _when) in enumerate(self._pending):
            if master == chosen:
                return index
        raise AssertionError("round-robin selection lost its request")


class PriorityArbiter(Arbiter):
    """Static priority; lower priority number wins, FCFS within a level."""

    __slots__ = ("priorities", "default_priority")

    policy_name = "priority"

    def __init__(
        self,
        sim: Simulator,
        name: str = "arbiter",
        priorities: Optional[Dict[str, int]] = None,
    ):
        super().__init__(sim, name)
        self.priorities = dict(priorities or {})
        self.default_priority = 100

    def priority_of(self, master: str) -> int:
        return self.priorities.get(master, self.default_priority)

    def _select(self) -> int:
        best_index = 0
        best_key = None
        for index, (master, _grant, when) in enumerate(self._pending):
            key = (self.priority_of(master), when, index)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index


ARBITER_POLICIES = {
    "fcfs": FCFSArbiter,
    "round_robin": RoundRobinArbiter,
    "priority": PriorityArbiter,
}


def make_arbiter(
    sim: Simulator,
    policy: str = "fcfs",
    name: str = "arbiter",
    priorities: Optional[Dict[str, int]] = None,
) -> Arbiter:
    """Construct an arbiter by policy name (``fcfs``/``round_robin``/``priority``)."""
    try:
        cls = ARBITER_POLICIES[policy]
    except KeyError:
        raise ValueError(
            "unknown arbiter policy %r (expected one of %s)"
            % (policy, ", ".join(sorted(ARBITER_POLICIES)))
        )
    if cls is PriorityArbiter:
        return PriorityArbiter(sim, name, priorities)
    return cls(sim, name)
