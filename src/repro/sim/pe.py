"""Processing element (PE) model.

Definition A of the paper: a PE is the hardware unit performing algorithmic
processing -- an MPC755 in all of the paper's experiments.  We replace the
instruction-set simulator of the Seamless CVE environment with a *cost-model
PE*: application code really runs (as Python generators doing real math) and
charges cycles through this model, while every off-chip-equivalent access
(bus transaction, cache miss refill) goes through the simulated bus fabric.

The model captures the three effects the paper's evaluation hinges on:

* **compute time** -- ``instructions * cycles_per_instruction`` at the
  100 MHz bus clock (the MPC755's internal clock is faster, which is folded
  into ``cycles_per_instruction`` < 1 being possible);
* **instruction fetch traffic** -- each compute phase walks its code
  footprint through the 32 KB L1 I-cache at line granularity; misses become
  bus reads from the PE's *program memory*, which is the local SRAM in the
  generated architectures but the shared global memory in GGBA;
* **data streaming traffic** -- declared data touches stream through the
  32 KB L1 D-cache; misses and write-backs become bus bursts against the
  memory holding the buffer.

Cache-miss bus traffic is issued in bounded groups (``MISS_GROUP`` misses
per bus tenure) so that arbitration cost is charged per miss while the event
count stays tractable; other masters can still interleave between groups.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Sequence, Tuple

from .cache import Cache, mpc755_dcache, mpc755_icache
from .kernel import Process, Simulator
from .stats import PeStats

__all__ = ["DataTouch", "ProcessingElement", "MISS_GROUP"]

# Cache misses bundled into a single bus tenure (see module docstring).
MISS_GROUP = 8


class DataTouch:
    """A declared streaming pass over a buffer during a compute phase.

    ``device`` names the memory holding the buffer, ``address`` is the word
    address of its start, ``words`` its length and ``write`` whether the
    pass dirties it.  The D-cache filters the stream at line granularity.
    """

    __slots__ = ("device", "address", "words", "write")

    def __init__(self, device: str, address: int, words: int, write: bool = False):
        self.device = device
        self.address = address
        self.words = words
        self.write = write


class ProcessingElement:
    """One cost-model CPU attached to a bus fabric."""

    __slots__ = (
        "sim",
        "name",
        "machine",
        "cycles_per_instruction",
        "icache",
        "dcache",
        "program_device",
        "program_base",
        "code_footprint_words",
        "stats",
        "_cycle_carry",
        "_fetch_cursor",
        "finished_at",
        "_fetch_warm",
        "_footprint_lines",
        "faults",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        machine,
        cycles_per_instruction: float = 0.4,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        program_device: Optional[str] = None,
        program_base: int = 0,
        code_footprint_words: int = 2048,
    ):
        self.sim = sim
        self.name = name
        self.machine = machine
        self.cycles_per_instruction = cycles_per_instruction
        self.icache = icache if icache is not None else mpc755_icache(name + ".ic")
        self.dcache = dcache if dcache is not None else mpc755_dcache(name + ".dc")
        self.program_device = program_device
        self.program_base = program_base
        self.code_footprint_words = code_footprint_words
        self.stats = PeStats(name)
        self._cycle_carry = 0.0
        self._fetch_cursor = 0
        self.finished_at: Optional[int] = None
        # Warm-footprint fast path state for _fetch_traffic (see there).
        self._fetch_warm = False
        line_words = self.icache.line_words
        if code_footprint_words % line_words == 0:
            self._footprint_lines: Optional[int] = code_footprint_words // line_words
        else:
            self._footprint_lines = None  # unaligned footprint: no fast path
        # Fault injector (repro.faults); None keeps compute() hook-free.
        self.faults = None

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run(self, program: Generator, name: str = "") -> Process:
        """Launch a program generator as a simulation process."""
        return self.sim.process(
            self._wrap(program), name or "%s.program" % self.name
        )

    def _wrap(self, program: Generator) -> Generator:
        value = yield from program
        self.finished_at = self.sim.now
        return value

    # ------------------------------------------------------------------
    # Compute phases
    # ------------------------------------------------------------------
    def compute(
        self,
        instructions: float,
        touches: Sequence[DataTouch] = (),
    ) -> Generator:
        """Charge a compute phase: cycles + I-fetch traffic + data streams."""
        if instructions < 0:
            raise ValueError("negative instruction count")
        faults = self.faults
        if faults is not None and faults.crash_due(self.name):
            # Crash + cold restart: caches invalidated, warm-fetch state
            # reset, restart latency charged before the phase begins.
            yield from faults.crash_restart(self)
        raw = instructions * self.cycles_per_instruction + self._cycle_carry
        cycles = int(raw)
        self._cycle_carry = raw - cycles
        if cycles > 0:
            self.stats.compute_cycles += cycles
            yield cycles
        yield from self._fetch_traffic(instructions)
        for touch in touches:
            yield from self._stream_traffic(touch)

    def _fetch_traffic(self, instructions: float) -> Generator:
        """Walk the code footprint through the I-cache; misses hit the bus.

        Fast path: the fetch walk is a fixed cyclic stride over the code
        footprint, and the I-cache is private to this PE (nothing else
        issues accesses to it).  Once every footprint line is resident --
        observed as ``misses == footprint_lines`` with zero evictions --
        every future fetch is a hit and can never evict, so the per-line
        cache walk is replaced by a counter update.  The state is exactly
        the same as if the walk had run: identical hit/miss statistics,
        zero bus traffic.  Any eviction or flush (i.e. somebody else used
        the cache after all) invalidates the shortcut and the slow path
        resumes.
        """
        if self.program_device is None or instructions <= 0:
            return
        icache = self.icache
        line_words = icache.line_words
        fetches = int(instructions) // line_words
        if fetches <= 0:
            return
        stats = self.stats
        if (
            self._fetch_warm
            and icache.stats.evictions == 0
            and icache.flushes == 0
        ):
            stats.icache_hits += fetches
            icache.stats.hits += fetches
            self._fetch_cursor = (
                self._fetch_cursor + fetches * line_words
            ) % self.code_footprint_words
            return
        access = icache.access
        cursor = self._fetch_cursor
        base = self.program_base
        footprint = self.code_footprint_words
        hits = 0
        misses = 0
        for _ in range(fetches):
            if access(base + cursor, False)[0]:
                hits += 1
            else:
                misses += 1
            cursor += line_words
            if cursor >= footprint:
                cursor %= footprint
        self._fetch_cursor = cursor
        stats.icache_hits += hits
        stats.icache_misses += misses
        cache_stats = icache.stats
        if (
            self._footprint_lines is not None
            and cache_stats.evictions == 0
            and icache.flushes == 0
            and cache_stats.misses == self._footprint_lines
            and cache_stats.misses == stats.icache_misses
            and cache_stats.hits == stats.icache_hits
        ):
            # The cache holds exactly the footprint (and only our accesses
            # ever touched it): steady state from here on.
            self._fetch_warm = True
        if misses:
            yield from self.machine.miss_traffic(
                self, self.program_device, misses, line_words, write=False
            )

    def _stream_traffic(self, touch: DataTouch) -> Generator:
        """Stream a buffer pass through the D-cache; misses hit the bus."""
        dcache = self.dcache
        line_words = dcache.line_words
        start_line = touch.address // line_words
        end_line = (touch.address + max(touch.words, 1) - 1) // line_words
        access = dcache.access
        write = touch.write
        hits = 0
        misses = 0
        writebacks = 0
        for line_address in range(
            start_line * line_words, (end_line + 1) * line_words, line_words
        ):
            hit, _fill, wb = access(line_address, write)
            if hit:
                hits += 1
            else:
                misses += 1
            if wb:
                writebacks += 1
        self.stats.dcache_hits += hits
        self.stats.dcache_misses += misses
        if misses:
            yield from self.machine.miss_traffic(
                self, touch.device, misses, line_words, write=False
            )
        if writebacks:
            yield from self.machine.miss_traffic(
                self, touch.device, writebacks, line_words, write=True
            )

    # ------------------------------------------------------------------
    # Explicit bus accesses (uncached: shared buffers, registers, FIFOs)
    # ------------------------------------------------------------------
    def bus_read(self, device: str, address: int, words: int) -> Generator:
        """Read ``words`` 32-bit words from ``device``; returns the values."""
        start = self.sim.now
        values = yield from self.machine.transaction(
            self, device, address, words, write=False
        )
        self.stats.bus_cycles += self.sim.now - start
        self.stats.words_read += words
        return values

    def bus_write(self, device: str, address: int, values: Iterable[int]) -> Generator:
        values = list(values)
        start = self.sim.now
        yield from self.machine.transaction(
            self, device, address, len(values), write=True, data=values
        )
        self.stats.bus_cycles += self.sim.now - start
        self.stats.words_written += len(values)

    def stall(self, cycles: int) -> Generator:
        """Idle wait (polling interval, RTOS idle)."""
        self.stats.stall_cycles += cycles
        yield cycles
