"""Bus fabric construction: from a :class:`BusSystemSpec` to a runnable machine.

This is the simulation twin of the Verilog generator: the same user options
(Figure 18) that BusSyn turns into HDL are turned here into a connected set
of simulation models -- PEs, bus segments, bridges, arbiters, memories,
handshake registers and Bi-FIFOs -- matching the topologies of Figures 3-9.

Topology summary (4-PE shape; all scale with PE count):

* **BFBA** (Fig 4)  -- one private bus segment per BAN; Bi-FIFO blocks and
  handshake registers linked point-to-point between adjacent BANs (ring).
* **GBAVI** (Fig 3) -- one bus segment per BAN; bus bridges join adjacent
  segments in a ring, so neighbour pairs communicate without disturbing
  other pairs.
* **GBAVIII** (Fig 5) -- a local segment per BAN (PE + local SRAM) plus one
  arbitrated global segment carrying the global SRAM; every PE masters both
  its local segment and the global segment directly (via its GBI).
* **Hybrid** (Fig 6) -- GBAVIII plus BFBA's point-to-point FIFO/handshake
  links.
* **SplitBA** (Fig 7) -- two GBAVIII-style shared segments, each with half
  the PEs and its own shared SRAM + arbiter, joined by a bus bridge.
* **GGBA** (Fig 9, baseline) -- a single arbitrated segment; one shared
  SRAM holds *everything* including each PE's program and local data.
* **CCBA** (Fig 8, baseline) -- a single PLB-style segment with a 5-cycle
  read grant; per-PE SRAMs and the shared SRAM all sit behind it.

Every PE also owns L1 I/D caches; cache-miss refills are real bus traffic
against the PE's program/data memory, which is what separates GGBA from the
generated architectures in Table II (observation B).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from ..options.schema import BusSystemSpec, BusSubsystemSpec, OptionError
from .arbiter import make_arbiter
from .bus import BusBridge, BusSegment, TransferTiming, find_route
from .fifo import BiFifo, HardwareFifo
from .hsregs import HandshakeRegisters, SharedVariables
from .interrupt import InterruptController
from .kernel import Simulator
from .memory import Memory, Sram, make_memory
from .pe import MISS_GROUP, ProcessingElement

__all__ = [
    "Device",
    "Machine",
    "MachineBuilder",
    "build_machine",
    "CODE_FOOTPRINT_WORDS",
    "VAR_AREA_WORDS",
]

# Default per-PE code footprint reserved in its program memory (words).
CODE_FOOTPRINT_WORDS = 2048
# Words reserved at the top of a shared memory for global control variables.
VAR_AREA_WORDS = 64


class Device:
    """A slave reachable over the fabric."""

    __slots__ = ("name", "kind", "target", "segment", "point_to_point", "parties")

    def __init__(
        self,
        name: str,
        kind: str,
        target,
        segment: Optional[BusSegment],
        point_to_point: bool = False,
        parties: Optional[Set[str]] = None,
    ):
        self.name = name
        self.kind = kind  # 'memory' | 'hsregs' | 'fifo'
        self.target = target
        self.segment = segment
        self.point_to_point = point_to_point
        self.parties = parties or set()


class _PreparedPlan:
    """A route plan with its per-transfer invariants precomputed.

    ``_occupy_path`` runs hundreds of thousands of times per table case;
    the canonical segment ordering, the path-wide beat rate and the bridge
    hop list never change for a given route, so they are computed once here
    instead of per transfer.
    """

    __slots__ = ("plan", "segments", "single", "words_per_beat", "beat_cycles", "bridges")

    def __init__(self, plan: List[Tuple[BusSegment, Optional["BusBridge"]]]):
        self.plan = plan
        unique = {segment.name: segment for segment, _bridge in plan}
        # Canonical (name-sorted) acquisition order; see _occupy_path.
        self.segments = [unique[name] for name in sorted(unique)]
        self.single = self.segments[0] if len(self.segments) == 1 else None
        self.beat_cycles = max(segment.beat_cycles for segment, _bridge in plan)
        self.words_per_beat = min(segment.words_per_beat for segment, _bridge in plan)
        self.bridges = [bridge for _segment, bridge in plan if bridge is not None]


class Machine:
    """A runnable simulated SoC built from a BusSystemSpec."""

    def __init__(self, sim: Simulator, spec: BusSystemSpec):
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.segments: Dict[str, BusSegment] = {}
        self.bridges: List[BusBridge] = []
        self.devices: Dict[str, Device] = {}
        self.pes: Dict[str, ProcessingElement] = {}
        self.pe_order: List[str] = []  # BAN letters with PEs, in chain order
        self.pe_by_ban: Dict[str, ProcessingElement] = {}
        self.ban_of_pe: Dict[str, str] = {}
        self.home_segment: Dict[str, BusSegment] = {}
        self.direct_segments: Dict[str, Set[BusSegment]] = {}
        self.interrupt_controllers: Dict[str, InterruptController] = {}
        self.shared_vars: Dict[str, SharedVariables] = {}  # memory name -> vars
        self.global_memory: Optional[str] = None
        self.shared_memory_of: Dict[str, str] = {}  # ban -> shared memory name
        self.fifo_blocks: Dict[str, BiFifo] = {}  # ban letter -> its block
        self.hs_blocks: Dict[str, HandshakeRegisters] = {}  # ban letter -> block
        self._alloc_next: Dict[str, int] = {}
        # (pe name, device name) -> (bridge-enable state, _PreparedPlan).
        # Routes only change when a bridge is toggled, so the cached plan is
        # revalidated against the enable mask on every lookup.
        self._plan_cache: Dict[Tuple[str, str], Tuple[Tuple[bool, ...], _PreparedPlan]] = {}
        self.bus_clock_hz = 100_000_000  # SYSCLK cap of the MPC755 (sec. VI.B)
        # Observability layer (repro.obs.Observability); None means every
        # hook below stays on the zero-cost path.
        self._obs = None
        # Fault injector (repro.faults.FaultInjector); None keeps the
        # transaction path free of retry/recovery logic.  Set by
        # repro.faults.install_faults.
        self._faults = None
        # Protocol assertion monitor (repro.verify.monitors); None keeps
        # _occupy_path hook-free.  Set by repro.verify.attach_monitors.
        self._monitor = None
        # Counter plane (repro.obs.counters.CounterPlane); unlike the three
        # hooks above it does NOT force despecialization -- the compiled
        # backend bakes the slot increments into its generated dispatch.
        self._counters = None
        # Compiled-backend fabric specialization (repro.sim.compiled): when
        # set, ``transaction``/``miss_traffic`` are shadowed by generated
        # per-(master, device) dispatch installed as instance attributes.
        self._specialized = False
        self._specialized_source: Optional[str] = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self):
        return self._obs

    def attach_observability(self, obs) -> None:
        """Wire an :class:`repro.obs.Observability` into every model.

        Segments route completed tenures through ``obs.bus_transaction``
        (spans + arbitration-wait histograms + occupancy series), bridges
        and FIFOs record onto its tracer, arbiters mark queued grants, and
        the kernel tracks peak event-queue depth.  Attaching never changes
        simulation behaviour -- a traced run is bit-identical to an
        untraced one, just observable.
        """
        self._despecialize()
        self._obs = obs
        self.sim.monitor_depth = True
        registry = obs.registry
        for name, segment in self.segments.items():
            segment.obs = obs
            segment.arbiter.tracer = obs.tracer
            if registry is not None:
                segment.stats.attach_detail(
                    registry.histogram("bus.%s.arb_wait_cycles" % name),
                    registry.time_series(
                        "bus.%s.occupancy" % name, obs.occupancy_window
                    ),
                )
        for bridge in self.bridges:
            bridge.tracer = obs.tracer
        for block in self.fifo_blocks.values():
            block.up.tracer = obs.tracer
            block.down.tracer = obs.tracer

    def attach_monitors(self, fail_fast: bool = True):
        """Attach runtime protocol assertion monitors to every bus model.

        Convenience wrapper around :func:`repro.verify.attach_monitors`;
        returns the :class:`repro.verify.ProtocolMonitor`.  Monitors are
        observational only -- a monitored run is bit-identical to an
        unmonitored one (the free-when-off contract shared with ``obs``
        and ``faults``).
        """
        from ..verify.monitors import attach_monitors

        return attach_monitors(self, fail_fast=fail_fast)

    @property
    def counters(self):
        return self._counters

    def attach_counters(self, plane=None):
        """Bind a :class:`repro.obs.counters.CounterPlane` to every segment.

        Counters are the one observability surface that keeps the compiled
        backend's specialized fast path: on an already-specialized machine
        the baked dispatch is *rebuilt* with the slot increments compiled
        in (never despecialized -- the regenerated functions still carry
        the baked route/policy/timing).  On the generic paths each tenure
        pays one ``None`` check, exactly like the ``obs`` hook.  Returns
        the bound plane.
        """
        from ..obs.counters import CounterPlane

        if plane is None:
            plane = CounterPlane()
        self._counters = plane
        plane.bind(self)
        if self._specialized:
            self.__dict__.pop("transaction", None)
            self.__dict__.pop("miss_traffic", None)
            self._specialized = False
            self._specialized_source = None
            from .compiled.specializer import specialize_machine

            specialize_machine(self)
        return plane

    def _despecialize(self) -> None:
        """Remove compiled-backend specialized dispatch, if installed.

        Every hook attach point (observability, protocol monitors, fault
        injection) calls this first: a hooked machine must run the generic
        instrumented ``transaction``/``miss_traffic`` paths.  The generated
        dispatch lives in instance attributes, so dropping them restores
        the class methods; a later re-specialization rebuilds from scratch.
        """
        self.__dict__.pop("transaction", None)
        self.__dict__.pop("miss_traffic", None)
        self._specialized = False
        self._specialized_source = None

    def run_report(self, wall_seconds: float = 0.0, name: Optional[str] = None):
        """Snapshot this machine into a :class:`repro.obs.report.RunReport`."""
        from ..obs.report import build_run_report

        return build_run_report(self, wall_seconds=wall_seconds, name=name)

    # ------------------------------------------------------------------
    # Construction helpers (used by the builder)
    # ------------------------------------------------------------------
    def add_segment(self, segment: BusSegment) -> BusSegment:
        self.segments[segment.name] = segment
        return segment

    def add_device(self, device: Device) -> Device:
        if device.name in self.devices:
            raise OptionError("duplicate device name %r" % device.name)
        self.devices[device.name] = device
        if device.kind == "memory":
            self._alloc_next.setdefault(device.name, 0)
        return device

    def reserve(self, device_name: str, words: int, align: int = 8) -> int:
        """Bump-allocate ``words`` in a memory device; returns the offset."""
        device = self.devices[device_name]
        if device.kind != "memory":
            raise OptionError("cannot allocate inside non-memory %r" % device_name)
        cursor = self._alloc_next[device_name]
        cursor = (cursor + align - 1) // align * align
        end = cursor + words
        if end > device.target.size_words:
            raise OptionError(
                "memory %s exhausted: need %d words at %d (capacity %d)"
                % (device_name, words, cursor, device.target.size_words)
            )
        self._alloc_next[device_name] = end
        return cursor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory(self, name: str) -> Memory:
        device = self.devices[name]
        if device.kind != "memory":
            raise KeyError("%r is not a memory" % name)
        return device.target

    def local_memory_of(self, ban: str) -> Optional[str]:
        name = "SRAM_%s" % ban
        return name if name in self.devices else None

    def pe(self, ban: str) -> ProcessingElement:
        return self.pe_by_ban[ban]

    def neighbors_of(self, ban: str) -> Tuple[Optional[str], Optional[str]]:
        """(predecessor, successor) BAN letters in the chain/ring order."""
        index = self.pe_order.index(ban)
        count = len(self.pe_order)
        if count == 1:
            return None, None
        predecessor = self.pe_order[(index - 1) % count]
        successor = self.pe_order[(index + 1) % count]
        if count == 2 and predecessor == successor:
            return predecessor, successor
        return predecessor, successor

    def fifo_for(self, sender_ban: str, receiver_ban: str) -> Tuple[Device, HardwareFifo]:
        """The FIFO carrying sender->receiver data (adjacent BANs only)."""
        predecessor, successor = self.neighbors_of(sender_ban)
        if receiver_ban == successor:
            device = self.devices["BIFIFO_%s" % receiver_ban]
            return device, device.target.up
        if receiver_ban == predecessor:
            device = self.devices["BIFIFO_%s" % sender_ban]
            return device, device.target.down
        raise LookupError(
            "BANs %s and %s are not adjacent; the paper relays through "
            "intermediate PEs (section IV.C.2)" % (sender_ban, receiver_ban)
        )

    def hsregs_for(self, sender_ban: str, receiver_ban: str) -> Device:
        """The HS_REGS pair for a sender->receiver link (in receiver's BAN).

        The canonical predecessor->BAN pair uses the BAN's HS_REGS block
        (Figure 10); any additional link into the same BAN (e.g. the ring
        wire from the last BAN back to the first, Figure 17a) gets its own
        register pair, allocated lazily -- hardware-wise a second pair of
        one-bit registers in the same block.
        """
        canonical = "HS_REGS_%s" % receiver_ban
        if canonical not in self.devices:
            raise LookupError("no handshake registers in BAN %s" % receiver_ban)
        predecessor, _successor = self.neighbors_of(receiver_ban)
        if sender_ban == predecessor:
            return self.devices[canonical]
        extra = "HS_REGS_%s_FROM_%s" % (receiver_ban, sender_ban)
        if extra not in self.devices:
            template = self.devices[canonical]
            block = HandshakeRegisters(
                self.sim, extra, trace=self.hs_blocks[receiver_ban].trace_enabled
            )
            parties = None
            if template.point_to_point:
                parties = {
                    self.pe_by_ban[sender_ban].name,
                    self.pe_by_ban[receiver_ban].name,
                }
            self.add_device(
                Device(
                    extra,
                    "hsregs",
                    block,
                    template.segment,
                    point_to_point=template.point_to_point,
                    parties=parties,
                )
            )
        return self.devices[extra]

    def elapsed_seconds(self) -> float:
        return self.sim.now / self.bus_clock_hz

    # ------------------------------------------------------------------
    # Bus transactions
    # ------------------------------------------------------------------
    def _route_plan(
        self, pe: ProcessingElement, device: Device
    ) -> List[Tuple[BusSegment, Optional[BusBridge]]]:
        """Segments to occupy (in order) to reach ``device`` from ``pe``."""
        if device.point_to_point:
            if device.parties and pe.name not in device.parties:
                raise LookupError(
                    "%s has no point-to-point wires to %s" % (pe.name, device.name)
                )
            return [(self.home_segment[pe.name], None)]
        target_segment = device.segment
        direct = self.direct_segments[pe.name]
        if target_segment in direct:
            return [(target_segment, None)]
        # Route over bridges from the closest directly-mastered segment.
        best: Optional[List[Tuple[BusSegment, Optional[BusBridge]]]] = None
        for start in direct:
            try:
                route = find_route(start, target_segment, self.bridges)
            except LookupError:
                continue
            if best is None or len(route) < len(best):
                best = route
        if best is None:
            raise LookupError(
                "%s cannot reach device %s on segment %s"
                % (pe.name, device.name, target_segment.name if target_segment else None)
            )
        return best

    def _plan_for(self, pe: ProcessingElement, device: Device) -> _PreparedPlan:
        """Cached :class:`_PreparedPlan` for ``pe`` -> ``device``.

        Cached plans are revalidated against the bridge-enable mask so that
        toggling a bridge (isolation tests, reconfiguration experiments)
        transparently re-routes.
        """
        bridges = self.bridges
        state = tuple(bridge.enabled for bridge in bridges) if bridges else ()
        key = (pe.name, device.name)
        entry = self._plan_cache.get(key)
        if entry is not None and entry[0] == state:
            return entry[1]
        prepared = _PreparedPlan(self._route_plan(pe, device))
        self._plan_cache[key] = (state, prepared)
        return prepared

    def _device_latency(self, device: Device, address: int, words: int, write: bool) -> int:
        if device.kind == "memory":
            return device.target.access_latency(address, words, write)
        return 0

    def _occupy_path(
        self,
        pe: ProcessingElement,
        plan: List[Tuple[BusSegment, Optional[BusBridge]]],
        words: int,
        write: bool,
        device_latency: int,
        items: int = 1,
    ) -> Generator:
        """Hold every segment on the path for one transfer.

        Bridged transactions (GBAVI neighbour reads, SplitBA cross-subsystem
        accesses) win *all* segments on the route before data moves -- the
        bus bridge is a pass-gate connection, not a store-and-forward
        buffer, so the whole path behaves as one electrically-joined bus for
        the duration.  Holding the source segment while waiting for the
        next hop's grant produces the convoying contention that penalizes
        bridge-heavy topologies.

        ``items`` charges arbitration and device latency per item (used for
        grouped cache-miss bursts: each miss re-arbitrates).
        """
        if type(plan) is list:  # direct callers/tests pass a raw route plan
            plan = _PreparedPlan(plan)
        sim = self.sim
        master = pe.name
        memory_cycles = device_latency * items
        segment = plan.single
        if segment is not None:
            # Fast path: the transfer stays on one segment (the common case
            # on every topology -- bridged routes only occur for GBAVI
            # neighbour and SplitBA cross-subsystem traffic).
            entry = sim.now
            held = False
            faults = self._faults
            if faults is not None and segment.name in faults.guarded_segments:
                yield from faults.acquire(segment, master)
            elif not segment.arbiter.try_claim(master):
                yield segment.arbiter.request(master)
            acquired = sim.now
            monitor = segment.monitor
            if monitor is not None:
                monitor.on_transfer_open(segment, master)
            grant = segment.write_grant_cycles if write else segment.grant_cycles
            words_per_beat = segment.words_per_beat
            beats = (
                (max(words, 1) + words_per_beat - 1)
                // words_per_beat
                * segment.beat_cycles
            )
            try:
                # Grant latency and the data beats are one uninterrupted
                # tenure with no observable state change in between, so they
                # are charged as a single kernel event.
                held = True
                yield grant * items + beats + memory_cycles
            finally:
                if held:
                    end = sim.now
                    segment.arbiter.release(master)
                    if monitor is not None:
                        monitor.on_transfer_close(segment, master)
                    # Inlined BusStats.record (hot path: one call per bus
                    # tenure) without materializing a TransferTiming.
                    stats = segment.stats
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master[master] = per_master.get(master, 0) + 1
                    cslots = segment.counters
                    if cslots is not None:
                        base = segment.counter_base
                        cslots[base] += 1
                        cslots[base + 1] += 1
                        cslots[base + 2] += acquired - entry
                    obs = self._obs
                    if obs is not None:
                        obs.bus_transaction(
                            segment, master, entry, acquired, end,
                            words, write, memory_cycles,
                        )
            return
        held_segments: List[BusSegment] = []
        entry = sim.now
        acquired_at: List[int] = []
        # Acquire in a canonical (name-sorted) order so that two crossing
        # transactions travelling in opposite directions cannot hold-and-
        # wait on each other's segments -- the bridge controller only joins
        # segments it can win on both sides.
        faults = self._faults
        try:
            for segment in plan.segments:
                if faults is not None and segment.name in faults.guarded_segments:
                    yield from faults.acquire(segment, master)
                elif not segment.arbiter.try_claim(master):
                    yield segment.arbiter.request(master)
                acquired_at.append(sim.now)
                grant = segment.write_grant_cycles if write else segment.grant_cycles
                yield grant * items
                held_segments.append(segment)
                if segment.monitor is not None:
                    segment.monitor.on_transfer_open(segment, master)
            words_per_beat = plan.words_per_beat
            beats = (max(words, 1) + words_per_beat - 1) // words_per_beat * plan.beat_cycles
            hops = 0
            for bridge in plan.bridges:
                if not bridge.enabled:
                    raise RuntimeError("bus bridge %r is disabled" % bridge.name)
                bridge.crossings += 1
                if bridge.tracer.enabled:
                    bridge.tracer.hop(sim.now, bridge.name)
                if bridge.monitor is not None:
                    # Forwarding conservation: the crossing master must hold
                    # the grant on both attached segments while data moves.
                    bridge.monitor.on_bridge_cross(bridge, master)
                hops += bridge.hop_cycles
                if bridge.faults is not None:
                    hops += bridge.faults.bridge_delay(bridge.name)
            yield beats + hops + memory_cycles
        finally:
            end = sim.now
            obs = self._obs
            for segment in reversed(held_segments):
                segment.arbiter.release(master)
                if segment.monitor is not None:
                    segment.monitor.on_transfer_close(segment, master)
            for index, segment in enumerate(held_segments):
                timing = TransferTiming(
                    start=entry,
                    end=end,
                    arbitration=acquired_at[index] - entry,
                    transfer=end - acquired_at[index] - memory_cycles,
                    memory=memory_cycles,
                )
                segment.stats.record(master, words, write, timing)
                cslots = segment.counters
                if cslots is not None:
                    base = segment.counter_base
                    cslots[base] += 1
                    cslots[base + 1] += 1
                    cslots[base + 2] += acquired_at[index] - entry
                if obs is not None:
                    obs.bus_transaction(
                        segment, master, entry, acquired_at[index], end,
                        words, write, memory_cycles,
                    )

    def transaction(
        self,
        pe: ProcessingElement,
        device_name: str,
        address: int,
        words: int,
        write: bool,
        data: Optional[List[int]] = None,
    ) -> Generator:
        """One bus transaction; moves real data; returns read values.

        With a fault injector installed, transfers whose path crosses an
        injected bus bit-flip are detected (parity/ECC check at the
        interface) and retried with exponential backoff.  Writes replay
        from the MBI's ECC-protected store buffer until the slave accepts a
        clean burst (flip windows are finite, so this terminates): memory
        state is never silently corrupted, which keeps polling protocols
        live.  Reads are bounded by the policy's ``max_retries``; a flip
        outlasting every retry becomes a *residual* fault and the corrupted
        read data really propagates to the master -- unless the read targets
        protected control state (handshake registers, the shared-variable
        area), whose narrow words carry redundant coding in the generated
        RTL and are corrected at the interface.  Control-state protection is
        what keeps a persistent flip from desynchronizing the DONE_OP/
        DONE_RV protocol into a livelock.
        """
        device = self.devices[device_name]
        plan = self._plan_for(pe, device)
        faults = self._faults
        if faults is None:
            latency = self._device_latency(device, address, words, write)
            yield from self._occupy_path(pe, plan, words, write, latency)
            return self._touch_device(device, address, words, write, data)
        episode = None
        corrupt = None
        attempt = 0
        while True:
            latency = self._device_latency(device, address, words, write)
            yield from self._occupy_path(pe, plan, words, write, latency)
            fired = faults.check_flip(plan.segments)
            if not fired:
                if episode is not None:
                    faults.resolve_flip_episode(episode, "recovered")
                break
            if episode is None:
                episode = faults.open_flip_episode(fired)
            else:
                faults.note_flip_repeat(len(fired))
            if not write and attempt >= faults.policy.max_retries:
                corrupt = fired[0]
                break
            yield faults.policy.backoff(min(attempt, faults.policy.max_retries))
            faults.retries += 1
            attempt += 1
        result = self._touch_device(device, address, words, write, data)
        if corrupt is not None:
            if result and self._flip_hits_payload(device, address, words):
                faults.resolve_flip_episode(episode, "residual")
                result = faults.corrupt(result, corrupt)
            else:
                # Corrected by the control word's redundant coding.
                faults.resolve_flip_episode(episode, "recovered")
        return result

    def _flip_hits_payload(self, device: Device, address: int, words: int) -> bool:
        """Whether a residual flip on this read corrupts unprotected data.

        Handshake registers and the shared-variable control area carry
        redundant coding (cheap for one-word state); wide payload bursts
        rely on detect-and-retry only.
        """
        if device.kind != "memory":
            return False
        shared = self.shared_vars.get(device.name)
        return shared is None or address + words <= shared.base_address

    def _touch_device(
        self,
        device: Device,
        address: int,
        words: int,
        write: bool,
        data: Optional[List[int]],
    ):
        if device.kind == "memory":
            if write:
                if data is None:
                    data = [0] * words
                device.target.write(address, data)
                return None
            return device.target.read(address, words)
        if device.kind == "hsregs":
            register = "DONE_OP" if address == 0 else "DONE_RV"
            if write:
                device.target.write(register, (data or [0])[0])
                return None
            return [device.target.read(register)]
        raise KeyError("device %s is not addressable this way" % device.name)

    def miss_traffic(
        self,
        pe: ProcessingElement,
        device_name: str,
        misses: int,
        line_words: int,
        write: bool,
    ) -> Generator:
        """Cache refill/writeback traffic: ``misses`` line bursts.

        Misses are grouped (bounded by :data:`repro.sim.pe.MISS_GROUP` at the
        call site) per bus tenure; arbitration is charged per miss within
        the group, so contention costs scale with miss count while the
        simulator's event count stays proportional to groups.
        """
        device = self.devices[device_name]
        plan = self._plan_for(pe, device)
        per_line_latency = self._device_latency(device, 0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = min(remaining, MISS_GROUP)
            remaining -= group
            yield from self._occupy_path(
                pe, plan, group * line_words, write, per_line_latency, items=group
            )
            if device.kind == "memory":
                # Account traffic volume without disturbing program data:
                # refills read, writebacks write, against a scratch region.
                if write:
                    device.target.writes += group * line_words
                else:
                    device.target.reads += group * line_words

    def atomic_rmw(
        self,
        pe: ProcessingElement,
        device_name: str,
        address: int,
        update,
    ) -> Generator:
        """Atomic read-modify-write of one word (lwarx/stwcx.-style).

        The bus segment is held across the read and the write, so no other
        master can interleave -- this is what the RTOS lock manager uses for
        its test-and-set in shared memory.  Returns ``(old, new)``.
        """
        device = self.devices[device_name]
        plan = self._plan_for(pe, device)
        # One path tenure covers both the read beat and the write beat.
        latency = 2 * self._device_latency(device, address, 1, True)
        yield from self._occupy_path(pe, plan, 2, True, latency)
        old = self._touch_device(device, address, 1, False, None)[0]
        new = update(old) & 0xFFFFFFFF
        self._touch_device(device, address, 1, True, [new])
        pe.stats.words_read += 1
        pe.stats.words_written += 1
        return old, new

    # ------------------------------------------------------------------
    # Register / FIFO convenience operations (used by repro.soc.api)
    # ------------------------------------------------------------------
    def reg_read(self, pe: ProcessingElement, device_name: str, register: str) -> Generator:
        address = 0 if register == "DONE_OP" else 1
        values = yield from self.transaction(pe, device_name, address, 1, write=False)
        return values[0]

    def reg_write(
        self, pe: ProcessingElement, device_name: str, register: str, value: int
    ) -> Generator:
        address = 0 if register == "DONE_OP" else 1
        yield from self.transaction(pe, device_name, address, 1, write=True, data=[value])

    def var_read(self, pe: ProcessingElement, memory_name: str, variable: str) -> Generator:
        shared = self.shared_vars[memory_name]
        value = yield from pe.bus_read(memory_name, shared.slot(variable), 1)
        return value[0]

    def var_write(
        self, pe: ProcessingElement, memory_name: str, variable: str, value: int
    ) -> Generator:
        shared = self.shared_vars[memory_name]
        yield from pe.bus_write(memory_name, shared.slot(variable), [value])

    def fifo_push(
        self, pe: ProcessingElement, device: Device, fifo: HardwareFifo, values: List[int]
    ) -> Generator:
        """Push ``values`` into a FIFO, blocking on space; charges own bus."""
        cursor = 0
        segment = self.home_segment[pe.name]
        while cursor < len(values):
            if fifo.space == 0:
                yield fifo.wait_space()
                continue
            chunk = values[cursor : cursor + fifo.space]
            yield from segment.occupy(pe.name, len(chunk), write=True)
            fifo.push(chunk)
            faults = self._faults
            if faults is not None and faults.has_fifo_event(fifo):
                # Dropped words are retransmitted (extra bus tenure) and
                # duplicates discarded by the sequence check before the
                # receiver can observe them.
                yield from faults.fifo_link_recovery(pe, segment, fifo)
            pe.stats.words_written += len(chunk)
            cursor += len(chunk)

    def fifo_pop(
        self, pe: ProcessingElement, device: Device, fifo: HardwareFifo, count: int
    ) -> Generator:
        """Pop exactly ``count`` words, blocking on data; charges own bus."""
        out: List[int] = []
        segment = self.home_segment[pe.name]
        while len(out) < count:
            available = min(fifo.count, count - len(out))
            if available == 0:
                yield fifo.wait_data()
                continue
            yield from segment.occupy(pe.name, available, write=False)
            out.extend(fifo.pop(available))
            pe.stats.words_read += available
        return out


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


class MachineBuilder:
    """Single composition point for building a runnable :class:`Machine`.

    Every way of configuring a machine -- scheduler backend, tracing,
    arbiter-policy override, observability, protocol monitors, fault
    injection -- goes through one fluent builder, so the cross-layer
    ordering rules live in exactly one place:

    * hooks are attached *after* elaboration (they wire into built
      segments/bridges/FIFOs);
    * compiled-backend fabric specialization runs *last* and only when no
      hook was requested (a hooked machine keeps the generic instrumented
      paths; see :mod:`repro.sim.compiled.specializer`).

    Example::

        machine = (
            MachineBuilder(spec)
            .with_kernel("compiled")
            .with_observability(obs)
            .build()
        )

    :func:`build_machine` remains as a thin keyword-argument wrapper.
    """

    def __init__(self, spec: BusSystemSpec):
        self.spec = spec
        self._sim: Optional[Simulator] = None
        self._kernel: Optional[str] = None
        self._trace_hsregs = False
        self._cpi = 0.4
        self._arbiter_policy: Optional[str] = None
        self._obs = None
        self._monitors = False
        self._monitor_fail_fast = True
        self._fault_plan = None
        self._fault_policy = None
        self._counters = None
        self._want_counters = False
        self._specialize = True

    # -- simulator selection ------------------------------------------------
    def with_sim(self, sim: Simulator) -> "MachineBuilder":
        """Use an existing simulator (mutually exclusive with with_kernel)."""
        self._sim = sim
        return self

    def with_kernel(self, kernel: Optional[str]) -> "MachineBuilder":
        """Pick the scheduler backend (``heap``/``wheel``/``compiled``)."""
        self._kernel = kernel
        return self

    # -- elaboration options ------------------------------------------------
    def with_trace_hsregs(self, enabled: bool = True) -> "MachineBuilder":
        """Value-change traces in all handshake register blocks (Figs 11-13)."""
        self._trace_hsregs = enabled
        return self

    def with_cycles_per_instruction(self, cpi: float) -> "MachineBuilder":
        self._cpi = cpi
        return self

    def with_arbiter_policy(self, policy: Optional[str]) -> "MachineBuilder":
        """Override every bus's arbiter policy (arbitration ablation)."""
        self._arbiter_policy = policy
        return self

    # -- post-elaboration hooks ---------------------------------------------
    def with_observability(self, obs) -> "MachineBuilder":
        """Attach a :class:`repro.obs.Observability` after elaboration."""
        self._obs = obs
        return self

    def with_monitors(self, fail_fast: bool = True) -> "MachineBuilder":
        """Attach runtime protocol assertion monitors after elaboration."""
        self._monitors = True
        self._monitor_fail_fast = fail_fast
        return self

    def with_faults(self, plan, policy=None) -> "MachineBuilder":
        """Install a fault plan (:func:`repro.faults.install_faults`)."""
        self._fault_plan = plan
        self._fault_policy = policy
        return self

    def with_counters(self, plane=None) -> "MachineBuilder":
        """Bind a counter plane (:class:`repro.obs.counters.CounterPlane`).

        Unlike the hooks above, counters never cost the compiled backend
        its specialization: they attach *before* specialization runs, so
        the baked dispatch compiles the slot increments in.
        """
        self._counters = plane
        self._want_counters = True
        return self

    def without_specialization(self) -> "MachineBuilder":
        """Keep the generic fabric paths even on the compiled backend."""
        self._specialize = False
        return self

    # -- build ----------------------------------------------------------------
    def build(self) -> Machine:
        spec = self.spec
        spec.validate()
        sim = self._sim if self._sim is not None else Simulator(kernel=self._kernel)
        machine = Machine(sim, spec)
        _Builder(machine, self._trace_hsregs, self._cpi, self._arbiter_policy).build()
        if self._obs is not None:
            machine.attach_observability(self._obs)
        if self._monitors:
            machine.attach_monitors(fail_fast=self._monitor_fail_fast)
        if self._fault_plan is not None:
            from ..faults.injector import install_faults

            install_faults(machine, self._fault_plan, self._fault_policy)
        if self._want_counters:
            # Before specialization on purpose: specialize_machine sees the
            # bound plane and bakes the increments into the fast path.
            machine.attach_counters(self._counters)
        if self._specialize and sim.kernel_name == "compiled":
            from .compiled.specializer import specialize_machine

            # No-op when any hook was attached above: specialization
            # requires the hook-free fast paths.
            specialize_machine(machine)
        return machine


def build_machine(
    spec: BusSystemSpec,
    sim: Optional[Simulator] = None,
    trace_hsregs: bool = False,
    cycles_per_instruction: float = 0.4,
    arbiter_policy: Optional[str] = None,
    kernel: Optional[str] = None,
) -> Machine:
    """Build the simulation machine matching ``spec``.

    Thin keyword wrapper over :class:`MachineBuilder` (the composition
    point for kernels, tracers, monitors and fault injectors).
    ``arbiter_policy`` overrides every bus's arbiter policy (for the
    arbitration-policy ablation); ``trace_hsregs`` turns on value-change
    traces in all handshake register blocks (used to reproduce the state
    diagrams of Figures 11-13); ``kernel`` picks the scheduler backend
    (``"heap"``/``"wheel"``/``"compiled"``, default
    :func:`repro.sim.kernel.default_kernel`) when no ``sim`` is supplied.
    """
    builder = MachineBuilder(spec)
    if sim is not None:
        builder.with_sim(sim)
    return (
        builder.with_kernel(kernel)
        .with_trace_hsregs(trace_hsregs)
        .with_cycles_per_instruction(cycles_per_instruction)
        .with_arbiter_policy(arbiter_policy)
        .build()
    )


class _Builder:
    def __init__(
        self,
        machine: Machine,
        trace_hsregs: bool,
        cycles_per_instruction: float,
        arbiter_policy: Optional[str],
    ):
        self.machine = machine
        self.sim = machine.sim
        self.spec = machine.spec
        self.trace_hsregs = trace_hsregs
        self.cpi = cycles_per_instruction
        self.arbiter_policy = arbiter_policy

    # -- small helpers ----------------------------------------------------
    def _segment(self, name: str, bus_spec, policy: str = "fcfs") -> BusSegment:
        policy = self.arbiter_policy or bus_spec.arbiter_policy or policy
        return self.machine.add_segment(
            BusSegment(
                self.sim,
                name,
                data_width=bus_spec.data_width,
                address_width=bus_spec.address_width,
                arbiter=make_arbiter(self.sim, policy, name + ".arb"),
                grant_cycles=bus_spec.grant_cycles,
                write_grant_cycles=bus_spec.effective_write_grant,
            )
        )

    def _memory_device(self, mem_spec, segment: BusSegment) -> Device:
        memory = make_memory(
            mem_spec.memory_type if mem_spec.memory_type != "DPRAM" else "SRAM",
            mem_spec.name,
            mem_spec.size_words,
        )
        return self.machine.add_device(Device(mem_spec.name, "memory", memory, segment))

    def _pe(self, ban_spec, home: BusSegment, program_device: str, program_base: int):
        name = "%s_%s" % (ban_spec.cpu_type, ban_spec.name)
        pe = ProcessingElement(
            self.sim,
            name,
            self.machine,
            cycles_per_instruction=self.cpi,
            program_device=program_device,
            program_base=program_base,
            code_footprint_words=CODE_FOOTPRINT_WORDS,
        )
        machine = self.machine
        machine.pes[name] = pe
        machine.pe_order.append(ban_spec.name)
        machine.pe_by_ban[ban_spec.name] = pe
        machine.ban_of_pe[name] = ban_spec.name
        machine.home_segment[name] = home
        machine.direct_segments[name] = {home}
        machine.interrupt_controllers[name] = InterruptController(self.sim, name + ".intc")
        return pe

    def _hsregs(self, ban: str) -> Device:
        block = HandshakeRegisters(
            self.sim, "HS_REGS_%s" % ban, trace=self.trace_hsregs
        )
        self.machine.hs_blocks[ban] = block
        return block

    def _setup_shared_vars(self, memory_name: str) -> None:
        machine = self.machine
        memory = machine.memory(memory_name)
        base = memory.size_words - VAR_AREA_WORDS
        machine.shared_vars[memory_name] = SharedVariables(memory, base)

    def _reserve_code(self, device_name: str, pe: ProcessingElement) -> None:
        base = self.machine.reserve(device_name, CODE_FOOTPRINT_WORDS)
        pe.program_device = device_name
        pe.program_base = base

    # -- top level ----------------------------------------------------------
    def build(self) -> None:
        subsystem_anchor: Dict[str, BusSegment] = {}
        for subsystem in self.spec.subsystems:
            anchor = self._build_subsystem(subsystem)
            subsystem_anchor[subsystem.name] = anchor
        for index, (left, right) in enumerate(self.spec.effective_bridges(), start=1):
            bridge = BusBridge(
                self.sim,
                "BB_SYS_%d" % index,
                subsystem_anchor[left],
                subsystem_anchor[right],
            )
            self.machine.bridges.append(bridge)
        self._finalize_shared_memory_map()
        self._finalize_bus_loading()

    def _finalize_bus_loading(self) -> None:
        """Derive per-segment beat time from electrical loading.

        Each attached interface (a PE's CBI/GBI, a memory's MBI, an HS_REGS
        block, a bridge port) adds capacitance and wire length; following
        the bus-splitting argument of [19] (cited by the paper for
        SplitBA), a segment with more than four interfaces takes two cycles
        per data beat instead of one.
        """
        machine = self.machine
        loads: Dict[str, int] = {name: 0 for name in machine.segments}
        for pe_name, segments in machine.direct_segments.items():
            for segment in segments:
                loads[segment.name] += 1
        for device in machine.devices.values():
            if device.segment is not None:
                loads[device.segment.name] += 1
        for bridge in machine.bridges:
            loads[bridge.side_a.name] += 1
            loads[bridge.side_b.name] += 1
        for name, segment in machine.segments.items():
            segment.attached_interfaces = loads[name]
            segment.beat_cycles = 1 if loads[name] <= 4 else 2

    def _finalize_shared_memory_map(self) -> None:
        machine = self.machine
        if machine.global_memory is None and machine.shared_vars:
            machine.global_memory = sorted(machine.shared_vars)[0]
        for ban in machine.pe_order:
            if ban not in machine.shared_memory_of and machine.global_memory:
                machine.shared_memory_of[ban] = machine.global_memory

    def _build_subsystem(self, subsystem: BusSubsystemSpec) -> BusSegment:
        bus_types = {bus.bus_type for bus in subsystem.buses}
        if bus_types == {"BFBA"}:
            return self._build_bfba(subsystem)
        if bus_types == {"GBAVI"}:
            return self._build_gbavi(subsystem)
        if bus_types == {"GBAVII"}:
            return self._build_gbavii(subsystem)
        if bus_types == {"GBAVIII"}:
            return self._build_global(subsystem, "GBAVIII", local_memories=True)
        if bus_types == {"BFBA", "GBAVIII"}:
            return self._build_hybrid(subsystem)
        if bus_types == {"SPLITBA"}:
            return self._build_global(subsystem, "SPLITBA", local_memories=False)
        if bus_types == {"GGBA"}:
            return self._build_global(subsystem, "GGBA", local_memories=False)
        if bus_types == {"CCBA"}:
            return self._build_ccba(subsystem)
        raise OptionError(
            "subsystem %s: unsupported bus combination %s"
            % (subsystem.name, sorted(bus_types))
        )

    # -- BFBA (Figure 4) -------------------------------------------------
    def _build_bfba(self, subsystem: BusSubsystemSpec) -> BusSegment:
        bus_spec = subsystem.bus_of_type("BFBA")
        machine = self.machine
        pe_bans = subsystem.pe_bans
        first_segment = None
        for ban_spec in pe_bans:
            segment = self._segment("CPU_BUS_%s" % ban_spec.name, bus_spec)
            if first_segment is None:
                first_segment = segment
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, segment)
            pe = self._pe(ban_spec, segment, ban_spec.memories[0].name, 0)
            self._reserve_code(ban_spec.memories[0].name, pe)
        self._link_bfba_chain(subsystem, bus_spec)
        return first_segment

    def _link_bfba_chain(self, subsystem: BusSubsystemSpec, bus_spec) -> None:
        """Create Bi-FIFO blocks + HS_REGS point-to-point links (ring)."""
        machine = self.machine
        bans = [b.name for b in subsystem.pe_bans]
        if len(bans) < 2:
            return
        count = len(bans)
        for index, ban in enumerate(bans):
            predecessor = bans[(index - 1) % count]
            if count == 2 and index == 1 and "BIFIFO_%s" % ban in machine.devices:
                break
            pred_pe = machine.pe_by_ban[predecessor]
            this_pe = machine.pe_by_ban[ban]
            parties = {pred_pe.name, this_pe.name}
            block = BiFifo(self.sim, "BIFIFO_%s" % ban, bus_spec.fifo_depth)
            machine.fifo_blocks[ban] = block
            machine.add_device(
                Device("BIFIFO_%s" % ban, "fifo", block, None, point_to_point=True, parties=parties)
            )
            hs = self._hsregs(ban)
            machine.add_device(
                Device(hs.name, "hsregs", hs, None, point_to_point=True, parties=parties)
            )
            # Threshold interrupts: up carries pred->ban, down carries ban->pred.
            up_line = machine.interrupt_controllers[this_pe.name].line(
                "fifo_from_%s" % predecessor
            )
            block.up.on_threshold = (
                lambda fifo, line=up_line: line.raise_interrupt(fifo.name)
            )
            down_line = machine.interrupt_controllers[pred_pe.name].line(
                "fifo_from_%s" % ban
            )
            block.down.on_threshold = (
                lambda fifo, line=down_line: line.raise_interrupt(fifo.name)
            )

    # -- GBAVI (Figure 3) --------------------------------------------------
    def _build_gbavi(self, subsystem: BusSubsystemSpec) -> BusSegment:
        bus_spec = subsystem.bus_of_type("GBAVI")
        machine = self.machine
        pe_bans = subsystem.pe_bans
        segments = []
        for ban_spec in pe_bans:
            segment = self._segment("CPU_BUS_%s" % ban_spec.name, bus_spec)
            segments.append(segment)
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, segment)
            pe = self._pe(ban_spec, segment, ban_spec.memories[0].name, 0)
            self._reserve_code(ban_spec.memories[0].name, pe)
            # HS_REGS for the pair (predecessor -> this BAN) live on this
            # BAN's segment and are bus-addressable from both sides (Fig 10).
            hs = self._hsregs(ban_spec.name)
            machine.add_device(Device(hs.name, "hsregs", hs, segment))
        # Bridges joining adjacent BAN segments; ring closure when > 2 BANs
        # (BB_2, BB_4, BB_6, BB_8 in Figure 3).
        bans = [b.name for b in pe_bans]
        pairs = list(zip(range(len(bans)), range(1, len(bans))))
        for left_index, right_index in pairs:
            bridge = BusBridge(
                self.sim,
                "BB_%s%s" % (bans[left_index], bans[right_index]),
                segments[left_index],
                segments[right_index],
            )
            machine.bridges.append(bridge)
        if len(bans) > 2:
            machine.bridges.append(
                BusBridge(
                    self.sim,
                    "BB_%s%s" % (bans[-1], bans[0]),
                    segments[-1],
                    segments[0],
                )
            )
        return segments[0]

    # -- GBAVII (extension; see repro.options.presets.gbavii) ---------------
    def _build_gbavii(self, subsystem: BusSubsystemSpec) -> BusSegment:
        """GBAVI's segmented ring plus a global-memory BAN on the ring.

        The global SRAM sits on its own segment, bridged to the last and
        first PE segments (closing the ring through BAN G); PEs reach it
        across the bridges, so shared accesses serialize on the segments
        along the way rather than at a dedicated global arbiter.
        """
        bus_spec = subsystem.bus_of_type("GBAVII")
        machine = self.machine
        pe_bans = subsystem.pe_bans
        segments = []
        for ban_spec in pe_bans:
            segment = self._segment("CPU_BUS_%s" % ban_spec.name, bus_spec)
            segments.append(segment)
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, segment)
            pe = self._pe(ban_spec, segment, ban_spec.memories[0].name, 0)
            self._reserve_code(ban_spec.memories[0].name, pe)
            hs = self._hsregs(ban_spec.name)
            machine.add_device(Device(hs.name, "hsregs", hs, segment))
        global_memory_name = None
        global_segment = None
        for ban_spec in subsystem.global_bans:
            global_segment = self._segment("GLOBAL_BUS_%s" % ban_spec.name, bus_spec)
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, global_segment)
            global_memory_name = ban_spec.memories[0].name
            self._setup_shared_vars(global_memory_name)
        if machine.global_memory is None:
            machine.global_memory = global_memory_name
        for ban_spec in pe_bans:
            machine.shared_memory_of[ban_spec.name] = global_memory_name
        bans = [b.name for b in pe_bans]
        for left_index in range(len(bans) - 1):
            machine.bridges.append(
                BusBridge(
                    self.sim,
                    "BB_%s%s" % (bans[left_index], bans[left_index + 1]),
                    segments[left_index],
                    segments[left_index + 1],
                )
            )
        if global_segment is not None and segments:
            machine.bridges.append(
                BusBridge(self.sim, "BB_%sG" % bans[-1], segments[-1], global_segment)
            )
            if len(segments) > 1:
                machine.bridges.append(
                    BusBridge(self.sim, "BB_G%s" % bans[0], global_segment, segments[0])
                )
        return segments[0] if segments else global_segment

    # -- Global-bus family: GBAVIII / SplitBA-half / GGBA --------------------
    def _build_global(
        self,
        subsystem: BusSubsystemSpec,
        bus_type: str,
        local_memories: bool,
    ) -> BusSegment:
        bus_spec = subsystem.bus_of_type(bus_type)
        machine = self.machine
        global_segment = self._segment(
            "GLOBAL_BUS_%s" % subsystem.name, bus_spec
        )
        global_bans = subsystem.global_bans
        global_memory_name = None
        for ban_spec in global_bans:
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, global_segment)
            global_memory_name = ban_spec.memories[0].name
            self._setup_shared_vars(global_memory_name)
        if machine.global_memory is None:
            machine.global_memory = global_memory_name
        for ban_spec in subsystem.pe_bans:
            if local_memories and ban_spec.memories:
                local_segment = self._segment("CPU_BUS_%s" % ban_spec.name, bus_spec)
                for mem_spec in ban_spec.memories:
                    self._memory_device(mem_spec, local_segment)
                pe = self._pe(ban_spec, local_segment, ban_spec.memories[0].name, 0)
                self._reserve_code(ban_spec.memories[0].name, pe)
                machine.direct_segments[pe.name].add(global_segment)
            else:
                # No local memory: the PE lives on the shared segment and
                # runs its program out of the shared memory (GGBA/SplitBA).
                pe = self._pe(ban_spec, global_segment, global_memory_name, 0)
                self._reserve_code(global_memory_name, pe)
            machine.shared_memory_of[ban_spec.name] = global_memory_name
        return global_segment

    # -- Hybrid (Figure 6) ----------------------------------------------------
    def _build_hybrid(self, subsystem: BusSubsystemSpec) -> BusSegment:
        anchor = self._build_global(subsystem, "GBAVIII", local_memories=True)
        self._link_bfba_chain(subsystem, subsystem.bus_of_type("BFBA"))
        return anchor

    # -- CCBA (Figure 8) -------------------------------------------------------
    def _build_ccba(self, subsystem: BusSubsystemSpec) -> BusSegment:
        """CoreConnect PLB: everything behind one 5-cycle-read-grant bus."""
        bus_spec = subsystem.bus_of_type("CCBA")
        machine = self.machine
        plb = self._segment("PLB_%s" % subsystem.name, bus_spec)
        global_memory_name = None
        for ban_spec in subsystem.global_bans:
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, plb)
            global_memory_name = ban_spec.memories[0].name
            self._setup_shared_vars(global_memory_name)
        if machine.global_memory is None:
            machine.global_memory = global_memory_name
        for ban_spec in subsystem.pe_bans:
            for mem_spec in ban_spec.memories:
                self._memory_device(mem_spec, plb)
            program_memory = (
                ban_spec.memories[0].name if ban_spec.memories else global_memory_name
            )
            pe = self._pe(ban_spec, plb, program_memory, 0)
            self._reserve_code(program_memory, pe)
            machine.shared_memory_of[ban_spec.name] = global_memory_name
        return plb
