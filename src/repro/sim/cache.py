"""Set-associative cache model.

Each MPC755 in the paper's experiments carries 32 KB of L1 instruction cache
and 32 KB of L1 data cache (section VI.C).  The caches matter to the result
shape: in GGBA program code lives in the single *shared* memory, so every
instruction-cache miss becomes an arbitrated global-bus transaction, whereas
GBAVIII keeps program and local data in per-BAN local memories (observation
B under Table II).

The model is a classic set-associative cache with true LRU replacement and a
write-back/write-allocate policy, operating on word addresses.  PEs feed it
deterministic address streams derived from their workload phases, so cache
behaviour -- and therefore bus traffic -- is exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["CacheStats", "Cache", "mpc755_icache", "mpc755_dcache"]


class CacheStats:
    __slots__ = ("hits", "misses", "evictions", "writebacks")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """Set-associative, LRU, write-back/write-allocate cache.

    ``access`` returns ``(hit, fill_words, writeback_words)`` so the PE model
    can translate misses into bus traffic: a miss fetches ``line_words`` from
    the backing memory, and an eviction of a dirty line writes
    ``line_words`` back first.

    Each set is a ``{tag: dirty}`` dict in LRU order (least recent first):
    a hit re-inserts its tag at the end, an eviction pops the first key.
    Insertion-ordered dicts give the same true-LRU behaviour as the previous
    list-of-lines scan with O(1) C-level operations -- this is the hottest
    function of the whole simulator (millions of calls per table case).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int = 32 * 1024,
        line_bytes: int = 32,
        ways: int = 8,
    ):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("%s: size must be divisible by line*ways" % name)
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (line_bytes * ways)
        self.line_words = line_bytes // 4
        self._sets: List[Dict[int, bool]] = [{} for _ in range(self.sets)]
        self.stats = CacheStats()
        # Bumped by flush(); lets callers (the PE warm-fetch fast path)
        # detect that a previously observed steady state was invalidated.
        self.flushes = 0

    def _locate(self, word_address: int) -> Tuple[int, int]:
        line_index = word_address // self.line_words
        set_index = line_index % self.sets
        tag = line_index // self.sets
        return set_index, tag

    def access(self, word_address: int, write: bool = False) -> Tuple[bool, int, int]:
        """Touch one word; returns (hit, fill_words, writeback_words)."""
        line_index = word_address // self.line_words
        lines = self._sets[line_index % self.sets]
        tag = line_index // self.sets
        stats = self.stats
        dirty = lines.pop(tag, None)
        if dirty is not None:
            lines[tag] = dirty or write  # re-insert at MRU position
            stats.hits += 1
            return True, 0, 0
        # Miss: allocate, possibly evicting the LRU line.
        stats.misses += 1
        writeback_words = 0
        if len(lines) >= self.ways:
            victim_dirty = lines.pop(next(iter(lines)))
            stats.evictions += 1
            if victim_dirty:
                stats.writebacks += 1
                writeback_words = self.line_words
        lines[tag] = write
        return False, self.line_words, writeback_words

    def flush(self) -> int:
        """Invalidate everything; returns dirty words that would write back."""
        writeback_words = 0
        for lines in self._sets:
            for dirty in lines.values():
                if dirty:
                    writeback_words += self.line_words
            lines.clear()
        self.flushes += 1
        return writeback_words


def mpc755_icache(name: str = "icache") -> Cache:
    """32 KB, 8-way, 32-byte-line instruction cache (MPC755 L1)."""
    return Cache(name, size_bytes=32 * 1024, line_bytes=32, ways=8)


def mpc755_dcache(name: str = "dcache") -> Cache:
    """32 KB, 8-way, 32-byte-line data cache (MPC755 L1)."""
    return Cache(name, size_bytes=32 * 1024, line_bytes=32, ways=8)
