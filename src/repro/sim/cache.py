"""Set-associative cache model.

Each MPC755 in the paper's experiments carries 32 KB of L1 instruction cache
and 32 KB of L1 data cache (section VI.C).  The caches matter to the result
shape: in GGBA program code lives in the single *shared* memory, so every
instruction-cache miss becomes an arbitrated global-bus transaction, whereas
GBAVIII keeps program and local data in per-BAN local memories (observation
B under Table II).

The model is a classic set-associative cache with true LRU replacement and a
write-back/write-allocate policy, operating on word addresses.  PEs feed it
deterministic address streams derived from their workload phases, so cache
behaviour -- and therefore bus traffic -- is exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["CacheStats", "Cache", "mpc755_icache", "mpc755_dcache"]


class CacheStats:
    __slots__ = ("hits", "misses", "evictions", "writebacks")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class _Line:
    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool = False):
        self.tag = tag
        self.dirty = dirty


class Cache:
    """Set-associative, LRU, write-back/write-allocate cache.

    ``access`` returns ``(hit, fill_words, writeback_words)`` so the PE model
    can translate misses into bus traffic: a miss fetches ``line_words`` from
    the backing memory, and an eviction of a dirty line writes
    ``line_words`` back first.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int = 32 * 1024,
        line_bytes: int = 32,
        ways: int = 8,
    ):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("%s: size must be divisible by line*ways" % name)
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (line_bytes * ways)
        self.line_words = line_bytes // 4
        # Each set is an LRU-ordered list, most recent last.
        self._sets: List[List[_Line]] = [[] for _ in range(self.sets)]
        self.stats = CacheStats()

    def _locate(self, word_address: int) -> Tuple[int, int]:
        line_index = word_address // self.line_words
        set_index = line_index % self.sets
        tag = line_index // self.sets
        return set_index, tag

    def access(self, word_address: int, write: bool = False) -> Tuple[bool, int, int]:
        """Touch one word; returns (hit, fill_words, writeback_words)."""
        set_index, tag = self._locate(word_address)
        lines = self._sets[set_index]
        for position, line in enumerate(lines):
            if line.tag == tag:
                lines.append(lines.pop(position))  # refresh LRU
                if write:
                    line.dirty = True
                self.stats.hits += 1
                return True, 0, 0
        # Miss: allocate, possibly evicting the LRU line.
        self.stats.misses += 1
        writeback_words = 0
        if len(lines) >= self.ways:
            victim = lines.pop(0)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                writeback_words = self.line_words
        lines.append(_Line(tag, dirty=write))
        return False, self.line_words, writeback_words

    def flush(self) -> int:
        """Invalidate everything; returns dirty words that would write back."""
        writeback_words = 0
        for lines in self._sets:
            for line in lines:
                if line.dirty:
                    writeback_words += self.line_words
            del lines[:]
        return writeback_words


def mpc755_icache(name: str = "icache") -> Cache:
    """32 KB, 8-way, 32-byte-line instruction cache (MPC755 L1)."""
    return Cache(name, size_bytes=32 * 1024, line_bytes=32, ways=8)


def mpc755_dcache(name: str = "dcache") -> Cache:
    """32 KB, 8-way, 32-byte-line data cache (MPC755 L1)."""
    return Cache(name, size_bytes=32 * 1024, line_bytes=32, ways=8)
