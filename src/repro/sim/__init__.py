"""Cycle-level SoC simulation substrate.

Replaces the paper's Seamless CVE / VCS co-verification environment with a
pure-Python discrete-event simulator: the kernel (:mod:`repro.sim.kernel`),
hardware models (buses, arbiters, memories, FIFOs, handshake registers,
caches, interrupts) and the fabric builder that assembles a runnable
machine from a :class:`repro.options.BusSystemSpec`.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .arbiter import (
    ARBITER_POLICIES,
    Arbiter,
    FCFSArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from .bus import BusBridge, BusSegment, TransferTiming, find_route
from .cache import Cache, CacheStats, mpc755_dcache, mpc755_icache
from .dma import DmaEngine
from .fabric import Device, Machine, build_machine
from .fifo import BiFifo, FifoEmptyError, FifoFullError, HardwareFifo
from .hsregs import HandshakeRegisters, SharedVariables
from .interrupt import InterruptController, InterruptLine
from .memory import Dram, Memory, Sram, make_memory
from .pe import DataTouch, ProcessingElement
from .stats import BusStats, PeStats
from .vcd import VcdWriter, vcd_from_machine

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "ARBITER_POLICIES",
    "Arbiter",
    "FCFSArbiter",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "make_arbiter",
    "BusBridge",
    "BusSegment",
    "TransferTiming",
    "find_route",
    "Cache",
    "CacheStats",
    "mpc755_dcache",
    "mpc755_icache",
    "Device",
    "Machine",
    "build_machine",
    "BiFifo",
    "FifoEmptyError",
    "FifoFullError",
    "HardwareFifo",
    "HandshakeRegisters",
    "SharedVariables",
    "InterruptController",
    "InterruptLine",
    "Dram",
    "Memory",
    "Sram",
    "make_memory",
    "DataTouch",
    "ProcessingElement",
    "BusStats",
    "PeStats",
    "DmaEngine",
    "VcdWriter",
    "vcd_from_machine",
]
