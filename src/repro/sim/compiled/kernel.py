"""Gen-3 scheduler backend: a run loop generated with ``compile()``/``exec``.

:class:`CompiledSimulator` keeps the timing-wheel data structures of
:class:`~repro.sim.kernel.WheelSimulator` but replaces the interpreted drain
loop with *generated* run-loop variants, and replaces the pooled-timeout
proxy machinery with **direct entries** for the dominant ``yield <int>``
traffic:

* a process waiting an in-horizon delay sits in its wheel bucket as a
  1-tuple ``(process,)`` (see ``Process._resume``'s ``_use_direct`` branch);
  the drain loop resumes it straight through the bound ``generator.send``
  -- no proxy ``Event``, no callback list, no allocation;
* the 1-tuple doubles as the staleness token: any generic wakeup
  (interrupt, event, finish) rewrites ``process._target``, so a drained
  entry whose identity no longer matches is skipped -- counting as one
  processed event, exactly like a stale pooled proxy on the wheel backend;
* consecutive delay-1 reschedules (bus beats, the dominant cadence) are
  batched into a pending list flushed into the next bucket with one
  ``list.extend`` -- the flush happens before any slow-path call that could
  itself append to that bucket, so same-cycle ordering is untouched;
* ``yield 1`` is recognized with one pointer compare against the interned
  int ``1`` (a miss falls through to the general in-horizon branch, so
  correctness never depends on interning).

Everything else -- overflow heap, bootstrap/interrupt wakeups, ``Timeout``
and composite events -- goes through the same pooled-proxy paths as the
wheel backend, so firing order, final clock and ``events_processed`` are
bit-identical across all three backends (``tests/test_scheduler_parity.py``
runs the three-way differential).

Run-loop **variants** are specialized over (stop-event present, deadline
present, monitored): a run with hooks off executes a loop with *no* hook
call sites compiled into it.  The rendered sources are plain Python kept
in-process for inspection -- ``repro compile -o DIR`` writes them to disk
(:func:`generated_kernel_sources`).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Dict, Optional

from ..kernel import (
    WHEEL_SIZE,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
    WheelSimulator,
    _LOW_MASKS,
    _PooledTimeout,
    _WHEEL_BITS,
    _WHEEL_CLEARS,
    _WHEEL_MASK,
)
from .. import kernel as _kernel_mod

__all__ = ["CompiledSimulator", "generated_kernel_sources", "KERNEL_VARIANTS"]

# Variant axes: exactly one of stop/deadline can be active per run() call
# (``until`` is either an Event or a cycle count), and monitored runs take
# one generic variant with hook sites compiled in.
KERNEL_VARIANTS = ("plain", "deadline", "stop", "monitored")


def _render_fast(name: str, has_stop: bool, has_deadline: bool) -> str:
    """Render one unmonitored run-loop variant as Python source.

    Lines prefixed ``?S`` / ``?D`` are kept only when the variant handles a
    stop event / a deadline; the prefix is stripped.  The emitted function
    has no conditional hook sites at all -- stop/deadline checks exist only
    in the variants that need them (free-when-off, enforced structurally).
    """
    template = """\
def {name}(sim, stop_event, deadline, limit):
    buckets = sim._buckets
    overflow = sim._overflow
    pool = sim._timeout_pool
    pop = heappop
    pooled_type = _PooledTimeout
    entry_type = tuple
    mask = _WHEEL_MASK
    size = WHEEL_SIZE
    one = 1
    bits = _WHEEL_BITS
    clears = _WHEEL_CLEARS
    low_masks = _LOW_MASKS
    llen = len
    steps = 0
    pending1 = []
    p1_append = pending1.append
    try:
        while True:
?S          if stop_event._fired:
?S              return stop_event.value
            now = sim.now
            if buckets[now & mask]:
                when = now
            else:
                occupied = sim._occupied
                if occupied and buckets[(now + 1) & mask]:
                    when = now + 1
                elif occupied:
                    index = now & mask
                    ahead = occupied >> index
                    if ahead:
                        when = now + (ahead & -ahead).bit_length() - 1
                    else:
                        low = occupied & low_masks[index]
                        when = (
                            now + size - index + (low & -low).bit_length() - 1
                        )
                else:
                    when = None
            if overflow:
                over_when = overflow[0][0]
                if when is None or over_when < when:
                    when = over_when
            elif when is None:
                break
?D          if when >= deadline:
?D              sim.now = deadline
?D              return None
            sim.now = when
            while overflow and overflow[0][0] == when:
?S              if stop_event._fired:
?S                  return stop_event.value
                event = pop(overflow)[2]
                event._fire()
                if type(event) is pooled_type:
                    pool.append(event)
                steps += 1
                if steps > limit:
                    raise SimulationError("event limit exceeded (livelock?)")
            index = when & mask
            bucket = buckets[index]
            if not bucket:
                continue
            next_index = (when + 1) & mask
            next_bucket = buckets[next_index]
            next_bit = bits[next_index]
            fired = 0
            appended = 0
            add_bits = 0
            limit_left = limit - steps
            try:
                # Iterating the live list: a CPython list iterator picks up
                # entries appended during iteration, so zero-delay events
                # scheduled by a callback still fire this same cycle --
                # without a len() call or subscript per event.  ``steps`` is
                # folded in once per bucket (finally); the per-event limit
                # guard compares ``fired`` against the hoisted remainder.
                for entry in bucket:
?S                  if stop_event._fired:
?S                      return stop_event.value
                    fired += 1
                    if type(entry) is entry_type:
                        process = entry[0]
                        if process._target is not entry or process._interrupts:
                            # Stale entry, queued interrupt, or finished
                            # process: the generic resume sorts them out
                            # with heap-identical semantics.
                            if pending1:
                                next_bucket.extend(pending1)
                                add_bits |= next_bit
                                appended += llen(pending1)
                                del pending1[:]
                            process._resume(entry)
                        else:
                            try:
                                nxt = process._send(None)
                            except StopIteration as stop:
                                process._target = None
                                process._triggered = True
                                process._value = stop.value
                                if pending1:
                                    next_bucket.extend(pending1)
                                    add_bits |= next_bit
                                    appended += llen(pending1)
                                    del pending1[:]
                                sim._schedule(process)
                            except Interrupt:
                                raise SimulationError(
                                    "process %r did not handle an Interrupt"
                                    % process.name
                                )
                            except BaseException as error:
                                process._target = None
                                process._triggered = True
                                process._exception = error
                                if pending1:
                                    next_bucket.extend(pending1)
                                    add_bits |= next_bit
                                    appended += llen(pending1)
                                    del pending1[:]
                                sim._schedule(process)
                            else:
                                if nxt is one:
                                    p1_append(entry)
                                elif type(nxt) is int and 0 <= nxt < size:
                                    j = (when + nxt) & mask
                                    buckets[j].append(entry)
                                    add_bits |= bits[j]
                                    appended += 1
                                else:
                                    if pending1:
                                        next_bucket.extend(pending1)
                                        add_bits |= next_bit
                                        appended += llen(pending1)
                                        del pending1[:]
                                    _resume_slow(sim, process, nxt)
                    else:
                        if pending1:
                            next_bucket.extend(pending1)
                            add_bits |= next_bit
                            appended += llen(pending1)
                            del pending1[:]
                        if type(entry) is pooled_type:
                            entry._fired = True
                            callbacks = entry.callbacks
                            callback = callbacks[0]
                            callbacks.clear()
                            callback(entry)
                            pool.append(entry)
                        else:
                            entry._fire()
                    if fired > limit_left:
                        raise SimulationError("event limit exceeded (livelock?)")
            finally:
                steps += fired
                if pending1:
                    next_bucket.extend(pending1)
                    add_bits |= next_bit
                    appended += llen(pending1)
                    del pending1[:]
                if fired:
                    sim._wheel_count += appended - fired
                    del bucket[:fired]
                occupied = sim._occupied | add_bits
                if not bucket:
                    occupied &= clears[index]
                sim._occupied = occupied
?S      if stop_event._fired:
?S          return stop_event.value
?S      raise SimulationError(
?S          "simulation ran to quiescence before the awaited event fired"
?S      )
?D      sim.now = deadline
        return None
    finally:
        sim.events_processed += steps
        _kernel._TOTAL_EVENTS = _kernel._TOTAL_EVENTS + steps
"""
    lines = []
    for line in template.format(name=name).splitlines():
        if line.startswith("?S"):
            if not has_stop:
                continue
            line = "  " + line[2:]
        elif line.startswith("?D"):
            if not has_deadline:
                continue
            line = "  " + line[2:]
        lines.append(line)
    return "\n".join(lines) + "\n"


def _render_monitored(name: str) -> str:
    """Render the monitored variant: peak-pending-depth tracking per fire.

    Depth is read before each fire as ``wheel_count - fired + overflow``
    (overflow fires read ``wheel_count + overflow``), matching the wheel
    backend's monitored loop exactly, so the reported peak queue depth is
    identical across backends.  Bookkeeping is per-event (no delay-1
    batching) so the live ``_wheel_count`` stays truthful mid-drain.
    """
    return '''\
def {name}(sim, stop_event, deadline, limit):
    buckets = sim._buckets
    overflow = sim._overflow
    pool = sim._timeout_pool
    pop = heappop
    pooled_type = _PooledTimeout
    entry_type = tuple
    mask = _WHEEL_MASK
    size = WHEEL_SIZE
    bits = _WHEEL_BITS
    clears = _WHEEL_CLEARS
    low_masks = _LOW_MASKS
    peak = sim.peak_queue_depth
    steps = 0
    try:
        while True:
            if stop_event is not None and stop_event._fired:
                return stop_event.value
            now = sim.now
            if buckets[now & mask]:
                when = now
            else:
                occupied = sim._occupied
                if occupied and buckets[(now + 1) & mask]:
                    when = now + 1
                elif occupied:
                    index = now & mask
                    ahead = occupied >> index
                    if ahead:
                        when = now + (ahead & -ahead).bit_length() - 1
                    else:
                        low = occupied & low_masks[index]
                        when = (
                            now + size - index + (low & -low).bit_length() - 1
                        )
                else:
                    when = None
            if overflow:
                over_when = overflow[0][0]
                if when is None or over_when < when:
                    when = over_when
            elif when is None:
                break
            if deadline is not None and when >= deadline:
                sim.now = deadline
                return None
            sim.now = when
            while overflow and overflow[0][0] == when:
                if stop_event is not None and stop_event._fired:
                    return stop_event.value
                depth = sim._wheel_count + len(overflow)
                if depth > peak:
                    peak = depth
                event = pop(overflow)[2]
                event._fire()
                if type(event) is pooled_type:
                    pool.append(event)
                steps += 1
                if steps > limit:
                    raise SimulationError("event limit exceeded (livelock?)")
            index = when & mask
            bucket = buckets[index]
            if not bucket:
                continue
            fired = 0
            try:
                while fired < len(bucket):
                    if stop_event is not None and stop_event._fired:
                        return stop_event.value
                    depth = sim._wheel_count - fired + len(overflow)
                    if depth > peak:
                        peak = depth
                    entry = bucket[fired]
                    fired += 1
                    steps += 1
                    if type(entry) is entry_type:
                        process = entry[0]
                        if process._target is not entry or process._interrupts:
                            process._resume(entry)
                        else:
                            try:
                                nxt = process._send(None)
                            except StopIteration as stop:
                                process._target = None
                                process._triggered = True
                                process._value = stop.value
                                sim._schedule(process)
                            except Interrupt:
                                raise SimulationError(
                                    "process %r did not handle an Interrupt"
                                    % process.name
                                )
                            except BaseException as error:
                                process._target = None
                                process._triggered = True
                                process._exception = error
                                sim._schedule(process)
                            else:
                                if type(nxt) is int and 0 <= nxt < size:
                                    j = (when + nxt) & mask
                                    buckets[j].append(entry)
                                    sim._occupied |= bits[j]
                                    sim._wheel_count += 1
                                else:
                                    _resume_slow(sim, process, nxt)
                    else:
                        event = entry
                        event._fire()
                        if type(event) is pooled_type:
                            pool.append(event)
                    if steps > limit:
                        raise SimulationError("event limit exceeded (livelock?)")
            finally:
                if fired:
                    sim._wheel_count -= fired
                    del bucket[:fired]
                if not bucket:
                    sim._occupied &= clears[index]
        if stop_event is not None:
            if stop_event._fired:
                return stop_event.value
            raise SimulationError(
                "simulation ran to quiescence before the awaited event fired"
            )
        if deadline is not None:
            sim.now = deadline
        return None
    finally:
        if peak > sim.peak_queue_depth:
            sim.peak_queue_depth = peak
        sim.events_processed += steps
        _kernel._TOTAL_EVENTS = _kernel._TOTAL_EVENTS + steps
'''.format(name=name)


def _resume_slow(sim: "CompiledSimulator", process, nxt) -> None:
    """Off-fast-path yields from a directly-resumed process.

    Replicates the tail of ``Process._resume`` for yields the drain loop
    does not inline: overflow-horizon ints (pooled proxy on the overflow
    heap, exactly like the wheel backend), bool/int subclasses (general
    ``Timeout``), events, and the error cases.
    """
    process._target = None
    if type(nxt) is int:
        if nxt < 0:
            raise SimulationError("negative timeout delay: %r" % (nxt,))
        pool = sim._timeout_pool
        if pool:
            proxy = pool.pop()
            proxy._value = None
            proxy._exception = None
            proxy._fired = False
        else:
            proxy = _PooledTimeout(sim)
            proxy._triggered = True
        proxy.callbacks.append(process._resume)
        process._target = proxy
        sim._overflow_seq = seq = sim._overflow_seq + 1
        heappush(sim._overflow, (sim.now + nxt, seq, proxy))
        return
    if isinstance(nxt, int):
        nxt = Timeout(sim, int(nxt))
    if not isinstance(nxt, Event):
        raise SimulationError(
            "process %r yielded %r (expected Event or int)"
            % (process.name, nxt)
        )
    process._target = nxt
    nxt.add_callback(process._resume)


def _variant_source(variant: str) -> str:
    name = "_compiled_run_%s" % variant
    if variant == "plain":
        return _render_fast(name, has_stop=False, has_deadline=False)
    if variant == "deadline":
        return _render_fast(name, has_stop=False, has_deadline=True)
    if variant == "stop":
        return _render_fast(name, has_stop=True, has_deadline=False)
    if variant == "monitored":
        return _render_monitored(name)
    raise KeyError("unknown kernel variant %r" % variant)


def generated_kernel_sources() -> Dict[str, str]:
    """Rendered source of every run-loop variant (``repro compile -o``)."""
    return {variant: _variant_source(variant) for variant in KERNEL_VARIANTS}


# Compiled variants, built on first use.  The exec namespace carries the
# kernel internals the generated code binds locally.
_VARIANTS: Dict[str, Any] = {}


def _compile_variant(variant: str):
    function = _VARIANTS.get(variant)
    if function is None:
        source = _variant_source(variant)
        namespace = {
            "heappop": heappop,
            "_PooledTimeout": _PooledTimeout,
            "_WHEEL_MASK": _WHEEL_MASK,
            "WHEEL_SIZE": WHEEL_SIZE,
            "_WHEEL_BITS": _WHEEL_BITS,
            "_WHEEL_CLEARS": _WHEEL_CLEARS,
            "_LOW_MASKS": _LOW_MASKS,
            "SimulationError": SimulationError,
            "Interrupt": Interrupt,
            "_resume_slow": _resume_slow,
            "_kernel": _kernel_mod,
        }
        code = compile(source, "<repro.sim.compiled:%s>" % variant, "exec")
        exec(code, namespace)
        function = namespace["_compiled_run_%s" % variant]
        _VARIANTS[variant] = function
    return function


class CompiledSimulator(WheelSimulator):
    """Timing-wheel backend with a generated run loop and direct entries.

    Same data structures, deadline/stop-event/limit contract and event
    accounting as :class:`~repro.sim.kernel.WheelSimulator`; see the module
    docstring for what is generated and why firing order is preserved.
    """

    __slots__ = ()

    kernel_name = "compiled"
    _use_wheel = True
    _use_direct = True

    # -- event loop -----------------------------------------------------
    def run(self, until: Optional[Any] = None, limit: int = 50_000_000) -> Any:
        deadline: Optional[int] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = int(until)
        if self.monitor_depth:
            return _compile_variant("monitored")(self, stop_event, deadline, limit)
        if stop_event is not None:
            return _compile_variant("stop")(self, stop_event, None, limit)
        if deadline is not None:
            return _compile_variant("deadline")(self, None, deadline, limit)
        return _compile_variant("plain")(self, None, None, limit)

    # -- stepping -------------------------------------------------------
    def step(self) -> None:
        """Single-step with direct-entry awareness (run()-identical order)."""
        when = self._next_cycle()
        if when is None:
            raise IndexError("step from an empty event schedule")
        if self.monitor_depth:
            depth = self._wheel_count + len(self._overflow)
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
        overflow = self._overflow
        if overflow and overflow[0][0] == when:
            entry = heappop(overflow)[2]
        else:
            index = when & _WHEEL_MASK
            bucket = self._buckets[index]
            entry = bucket.pop(0)
            self._wheel_count -= 1
            if not bucket:
                self._occupied &= _WHEEL_CLEARS[index]
        self.now = when
        if type(entry) is tuple:
            self._fire_direct(entry)
        else:
            entry._fire()
            if type(entry) is _PooledTimeout:
                self._timeout_pool.append(entry)
        self.events_processed += 1
        _kernel_mod._TOTAL_EVENTS += 1

    def _fire_direct(self, entry) -> None:
        """Fire one direct entry outside the generated loop (step())."""
        process = entry[0]
        if process._target is not entry or process._interrupts:
            process._resume(entry)
            return
        try:
            nxt = process._send(None)
        except StopIteration as stop:
            process._target = None
            process._triggered = True
            process._value = stop.value
            self._schedule(process)
        except Interrupt:
            raise SimulationError(
                "process %r did not handle an Interrupt" % process.name
            )
        except BaseException as error:
            process._target = None
            process._triggered = True
            process._exception = error
            self._schedule(process)
        else:
            if type(nxt) is int and 0 <= nxt < WHEEL_SIZE:
                index = (self.now + nxt) & _WHEEL_MASK
                self._buckets[index].append(entry)
                self._occupied |= _WHEEL_BITS[index]
                self._wheel_count += 1
                process._target = entry
            else:
                _resume_slow(self, process, nxt)
