"""Per-architecture fabric specialization for the compiled backend.

:func:`specialize_machine` walks an elaborated :class:`~repro.sim.fabric.Machine`
and *generates* one transaction function per (master, device) pair whose
route can never change at runtime, baking in everything the generic path
re-derives per transfer:

* the route plan -- eligible pairs are exactly the bridge-independent
  single-segment routes (point-to-point links and directly-mastered target
  segments), so the per-call ``_plan_for`` bridge-enable revalidation
  disappears;
* the arbiter policy -- the FCFS ``try_claim``/``release`` pair is inlined
  (owner/pending checks, grant accounting, busy-cycle bookkeeping), with the
  contended path still delegating to ``arbiter.request``/``_dispatch``;
* the transfer timing constants -- grant cycles, words-per-beat, beat
  cycles -- snapshotted after the builder's bus-loading finalization.

The generated functions are installed as *instance attributes*
(``machine.transaction`` / ``machine.miss_traffic``) dispatching through a
per-master jump table; unknown pairs (bridged routes, post-build DMA
masters, FIFO devices) fall back to the generic bound methods, so behaviour
-- and therefore every simulated cycle and statistic -- is bit-identical.

Specialization requires every observability, fault-injection and protocol
-monitor hook to be off; attaching any of them calls
:meth:`Machine._despecialize`, which removes the instance attributes and
restores the generic path.  The free-when-off contract thus becomes
*absent*-when-off: a hooked run contains no specialized call sites at all.

The one exception is the counter plane (:mod:`repro.obs.counters`): a bound
plane does *not* despecialize.  Template lines prefixed ``?C`` are kept
(with the prefix replaced by two spaces, preserving indentation) when the
machine has a plane and dropped otherwise, so a counted run bakes plain
``cslots[<literal>] += n`` increments into the same specialized dispatch.

The rendered per-machine source is kept on ``machine._specialized_source``
for inspection (``repro compile -o``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..arbiter import FCFSArbiter
from ..pe import MISS_GROUP
from ...obs.tracer import NULL_TRACER

__all__ = ["specialize_machine", "eligible_pairs", "specialized_fabric_source"]


def _segment_is_clean(segment) -> bool:
    """Whether a segment's transfer path has no hooks and an FCFS arbiter."""
    arbiter = segment.arbiter
    return (
        type(arbiter) is FCFSArbiter
        and arbiter.tracer is NULL_TRACER
        and not arbiter.trace_enabled
        and arbiter.faults is None
        and arbiter.monitor is None
        and segment.obs is None
        and segment.faults is None
        and segment.monitor is None
    )


def _static_segment(machine, pe, device):
    """The single segment serving ``pe`` -> ``device`` for every bridge
    state, or None when the route is bridged, unreachable, or multi-segment.

    Mirrors ``Machine._route_plan``: point-to-point devices always ride the
    master's home segment, and a directly-mastered target segment is always
    a one-hop route -- neither consults the bridge-enable mask, so the baked
    route stays valid when bridges toggle.
    """
    if device.point_to_point:
        if device.parties and pe.name not in device.parties:
            return None
        return machine.home_segment[pe.name]
    segment = device.segment
    if segment is not None and segment in machine.direct_segments[pe.name]:
        return segment
    return None


def eligible_pairs(machine):
    """Yield ``(pe, device, segment)`` for every specializable pair."""
    for pe in machine.pes.values():
        for device in machine.devices.values():
            if device.kind not in ("memory", "hsregs"):
                continue
            segment = _static_segment(machine, pe, device)
            if segment is None or not _segment_is_clean(segment):
                continue
            yield pe, device, segment


# ----------------------------------------------------------------------
# Source templates
# ----------------------------------------------------------------------

_HEADER = '''\
"""Specialized fabric dispatch for machine {machine_name!r} (generated).

One factory per eligible (master, device) pair; closures bind the live
arbiter/stats/memory objects, while route, policy and timing constants are
baked in as literals.  Regenerate with ``repro compile -o``.
"""
'''

_MEM_TXN_TEMPLATE = '''
def _make_{fn}(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # {master} -> {device} over {segment}: FCFS inlined, {timing}
    def {fn}(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = {master!r}
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request({master!r})
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                ({w_grant} if write else {r_grant})
                + (max(words, 1) + {wpb_minus_1}) // {wpb} * {beat}
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master[{master!r}] = per_master.get({master!r}, 0) + 1
?C              cslots[{c_txn}] += 1
?C              cslots[{c_grant}] += 1
?C              cslots[{c_wait}] += acquired - entry
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return {fn}
'''

_HSREGS_TXN_TEMPLATE = '''
def _make_{fn}(sim, arbiter, stats, request, reg_read, reg_write, cslots):
    # {master} -> {device} over {segment}: FCFS inlined, {timing}
    def {fn}(address, words, write, data=None):
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = {master!r}
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request({master!r})
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                ({w_grant} if write else {r_grant})
                + (max(words, 1) + {wpb_minus_1}) // {wpb} * {beat}
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                per_master = stats.per_master
                per_master[{master!r}] = per_master.get({master!r}, 0) + 1
?C              cslots[{c_txn}] += 1
?C              cslots[{c_grant}] += 1
?C              cslots[{c_wait}] += acquired - entry
        register = "DONE_OP" if address == 0 else "DONE_RV"
        if write:
            reg_write(register, (data or [0])[0])
            return None
        return [reg_read(register)]
    return {fn}
'''

_MISS_TEMPLATE = '''
def _make_{fn}(sim, arbiter, stats, request, access_latency, target, cslots):
    # {master} -> {device} cache-miss bursts over {segment}
    def {fn}(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < {miss_group} else {miss_group}
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = {master!r}
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request({master!r})
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    ({w_grant} if write else {r_grant}) * group
                    + (max(words, 1) + {wpb_minus_1}) // {wpb} * {beat}
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master[{master!r}] = per_master.get({master!r}, 0) + 1
?C                  cslots[{c_txn}] += 1
?C                  cslots[{c_grant}] += 1
?C                  cslots[{c_wait}] += acquired - entry
            if write:
                target.writes += words
            else:
                target.reads += words
    return {fn}
'''


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def _render(template: str, counters_on: bool, **fields) -> str:
    """Render a template; ``?C``-prefixed lines survive only with counters.

    The two-character prefix is replaced by two spaces so the kept line
    lands at the indentation the template wrote it for.
    """
    lines = []
    for line in template.split("\n"):
        if line.startswith("?C"):
            if not counters_on:
                continue
            line = "  " + line[2:]
        lines.append(line)
    return "\n".join(lines).format(**fields)


def specialized_fabric_source(machine) -> Tuple[str, list]:
    """Render the per-machine specialization module.

    Returns ``(source, entries)`` where each entry is
    ``(factory_name, kind, pe, device, segment)`` describing how to bind
    the factory after ``exec``.
    """
    chunks = [_HEADER.format(machine_name=machine.name)]
    entries = []
    used = set()
    plane = getattr(machine, "_counters", None)
    counters_on = plane is not None
    for pe, device, segment in eligible_pairs(machine):
        base = "_txn_%s__%s" % (_sanitize(pe.name), _sanitize(device.name))
        fn = base
        serial = 2
        while fn in used:
            fn = "%s_%d" % (base, serial)
            serial += 1
        used.add(fn)
        wpb = segment.words_per_beat
        fields = dict(
            fn=fn,
            master=pe.name,
            device=device.name,
            segment=segment.name,
            r_grant=segment.grant_cycles,
            w_grant=segment.write_grant_cycles,
            wpb=wpb,
            wpb_minus_1=wpb - 1,
            beat=segment.beat_cycles,
            timing="grant %d/%dw, %d w/beat, %d cyc/beat"
            % (
                segment.grant_cycles,
                segment.write_grant_cycles,
                wpb,
                segment.beat_cycles,
            ),
        )
        if counters_on:
            # Baked literal slot indices: transactions, grants, wait_cycles.
            base = plane.base_of(segment.name)
            fields.update(c_txn=base, c_grant=base + 1, c_wait=base + 2)
        if device.kind == "memory":
            chunks.append(_render(_MEM_TXN_TEMPLATE, counters_on, **fields))
            entries.append((fn, "memory", pe, device, segment))
            miss_fn = fn.replace("_txn_", "_miss_", 1)
            chunks.append(
                _render(
                    _MISS_TEMPLATE,
                    counters_on,
                    **dict(fields, fn=miss_fn, miss_group=MISS_GROUP)
                )
            )
            entries.append((miss_fn, "miss", pe, device, segment))
        else:
            chunks.append(_render(_HSREGS_TXN_TEMPLATE, counters_on, **fields))
            entries.append((fn, "hsregs", pe, device, segment))
    return "".join(chunks), entries


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------


def specialize_machine(machine) -> bool:
    """Compile and install specialized dispatch on ``machine``.

    Returns True when at least one pair was specialized.  No-op (False)
    when a hook is attached or nothing is eligible; safe to call twice.
    """
    if (
        machine._obs is not None
        or machine._faults is not None
        or machine._monitor is not None
    ):
        return False
    if getattr(machine, "_specialized", False):
        return True
    source, entries = specialized_fabric_source(machine)
    if not entries:
        return False
    namespace: Dict[str, Any] = {}
    code = compile(source, "<repro.sim.compiled:fabric:%s>" % machine.name, "exec")
    exec(code, namespace)

    sim = machine.sim
    plane = getattr(machine, "_counters", None)
    cslots = plane.slots if plane is not None else None
    txn_table: Dict[Tuple[str, str], Callable] = {}
    miss_table: Dict[Tuple[str, str], Callable] = {}
    for fn_name, kind, pe, device, segment in entries:
        factory = namespace["_make_%s" % fn_name]
        arbiter = segment.arbiter
        if kind == "memory":
            txn_table[(pe.name, device.name)] = factory(
                sim,
                arbiter,
                segment.stats,
                arbiter.request,
                device.target.access_latency,
                device.target.read,
                device.target.write,
                cslots,
            )
        elif kind == "miss":
            miss_table[(pe.name, device.name)] = factory(
                sim,
                arbiter,
                segment.stats,
                arbiter.request,
                device.target.access_latency,
                device.target,
                cslots,
            )
        else:  # hsregs
            txn_table[(pe.name, device.name)] = factory(
                sim,
                arbiter,
                segment.stats,
                arbiter.request,
                device.target.read,
                device.target.write,
                cslots,
            )

    # Bind the generic paths *before* shadowing them with instance attrs.
    generic_txn = machine.transaction
    generic_miss = machine.miss_traffic
    txn_get = txn_table.get
    miss_get = miss_table.get

    def transaction(pe, device_name, address, words, write, data=None):
        fn = txn_get((pe.name, device_name))
        if fn is not None:
            return fn(address, words, write, data)
        return generic_txn(pe, device_name, address, words, write, data)

    def miss_traffic(pe, device_name, misses, line_words, write):
        fn = miss_get((pe.name, device_name))
        if fn is not None:
            return fn(misses, line_words, write)
        return generic_miss(pe, device_name, misses, line_words, write)

    machine.transaction = transaction
    machine.miss_traffic = miss_traffic
    machine._specialized = True
    machine._specialized_source = source
    return True
