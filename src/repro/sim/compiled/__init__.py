"""Gen-3 compiled scheduler backend (``--kernel compiled``).

Two layers of specialization over the gen-2 timing wheel:

* :mod:`repro.sim.compiled.kernel` -- run-loop variants generated with
  ``compile()``/``exec`` and *direct entries* for in-horizon ``yield <int>``
  (no proxy event, no callback list, no allocation on the hot path);
* :mod:`repro.sim.compiled.specializer` -- per-architecture fabric
  specialization: arbiter policy and route plans baked into generated
  per-(master, device) transaction functions, installed when every
  observability/fault/monitor hook is off and removed the moment one is
  attached (free-when-off becomes *absent*-when-off).

``repro compile -o DIR`` dumps every generated source for inspection.
"""

from .kernel import CompiledSimulator, generated_kernel_sources, KERNEL_VARIANTS

__all__ = [
    "CompiledSimulator",
    "generated_kernel_sources",
    "KERNEL_VARIANTS",
]
