"""Statistics counters for buses and PEs.

Every bus segment and PE keeps a stats object so experiments can report not
just end-to-end throughput but *why* one architecture wins: arbitration wait,
bus occupancy, transaction mix.  These are the quantities behind the paper's
observations (A)-(D) under Table II.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import Histogram, TimeSeries
    from .bus import TransferTiming

__all__ = ["BusStats", "PeStats"]


class BusStats:
    """Aggregate counters for one bus segment.

    When an observability layer is attached to the machine
    (:meth:`attach_detail`), the segment additionally records a
    per-transaction arbitration-wait histogram and an occupancy-over-time
    series in the shared metrics registry; the counters and ``as_dict()``
    surface are unchanged either way, so experiments never notice.
    """

    def __init__(self, name: str):
        self.name = name
        self.transactions = 0
        self.read_transactions = 0
        self.write_transactions = 0
        self.words_moved = 0
        self.busy_cycles = 0
        self.arbitration_cycles = 0
        self.memory_cycles = 0
        self.per_master: Dict[str, int] = {}
        # Detail metrics, populated only through Observability.bus_transaction
        # (never by record(): the hot path in fabric._occupy_path bypasses
        # record() and must stay in lockstep with the non-inlined path).
        self._arb_hist: Optional["Histogram"] = None
        self._occupancy: Optional["TimeSeries"] = None

    def attach_detail(self, histogram: "Histogram", occupancy: "TimeSeries") -> None:
        """Back this segment's detail with registry-owned metrics."""
        self._arb_hist = histogram
        self._occupancy = occupancy

    def record(self, master: str, words: int, write: bool, timing: "TransferTiming") -> None:
        self.transactions += 1
        if write:
            self.write_transactions += 1
        else:
            self.read_transactions += 1
        self.words_moved += words
        self.busy_cycles += timing.total
        self.arbitration_cycles += timing.arbitration
        self.memory_cycles += timing.memory
        self.per_master[master] = self.per_master.get(master, 0) + 1

    @property
    def held_cycles(self) -> int:
        """Cycles a master actually owned the segment (tenure only).

        ``busy_cycles`` spans request to completion and therefore counts
        overlapping arbitration *waits* from multiple queued masters more
        than once; ownership is exclusive, so tenure can never exceed
        elapsed time.
        """
        return self.busy_cycles - self.arbitration_cycles

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of elapsed cycles the segment was held by a master.

        Computed from :attr:`held_cycles` and deliberately *not* clamped:
        a ratio above 1.0 means double-counted tenure (a bookkeeping bug),
        and the old ``min(1.0, ...)`` silently hid exactly that.  A debug
        assertion flags it instead.
        """
        if elapsed_cycles <= 0:
            return 0.0
        ratio = self.held_cycles / elapsed_cycles
        assert ratio <= 1.0 + 1e-9, (
            "segment %s utilization %.4f > 1.0: %d held cycles in %d elapsed "
            "-- tenure double-counting bug"
            % (self.name, ratio, self.held_cycles, elapsed_cycles)
        )
        return ratio

    def mean_arbitration_wait(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.arbitration_cycles / self.transactions

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "transactions": self.transactions,
            "reads": self.read_transactions,
            "writes": self.write_transactions,
            "words_moved": self.words_moved,
            "busy_cycles": self.busy_cycles,
            "arbitration_cycles": self.arbitration_cycles,
            "memory_cycles": self.memory_cycles,
        }


class PeStats:
    """Aggregate counters for one processing element."""

    def __init__(self, name: str):
        self.name = name
        self.compute_cycles = 0
        self.bus_cycles = 0
        self.stall_cycles = 0
        self.handshake_polls = 0
        self.interrupts_taken = 0
        self.words_read = 0
        self.words_written = 0
        self.icache_hits = 0
        self.icache_misses = 0
        self.dcache_hits = 0
        self.dcache_misses = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "compute_cycles": self.compute_cycles,
            "bus_cycles": self.bus_cycles,
            "stall_cycles": self.stall_cycles,
            "handshake_polls": self.handshake_polls,
            "interrupts_taken": self.interrupts_taken,
            "words_read": self.words_read,
            "words_written": self.words_written,
            "icache_hits": self.icache_hits,
            "icache_misses": self.icache_misses,
            "dcache_hits": self.dcache_hits,
            "dcache_misses": self.dcache_misses,
        }
