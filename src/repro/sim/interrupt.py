"""Interrupt lines between hardware blocks and PEs.

BFBA's Bi-FIFO controller raises an interrupt toward the receiving PE when
the FIFO fill counter reaches the threshold register (section IV.C.2).  An
:class:`InterruptLine` connects a source to a handler registered by the PE;
pending interrupts are queued if they arrive while the PE is already in a
handler, matching a single-level interrupt controller.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .kernel import Simulator

__all__ = ["InterruptLine", "InterruptController"]


class InterruptLine:
    """One edge-triggered interrupt line with a queued-delivery controller."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.raised_count = 0
        self.delivered_count = 0
        self._pending: Deque[Any] = deque()
        self._handler: Optional[Callable[[Any], Any]] = None
        self._in_service = False

    def connect(self, handler: Callable[[Any], Any]) -> None:
        """Register the PE-side handler; it may be a plain callable."""
        self._handler = handler
        self._drain()

    def raise_interrupt(self, payload: Any = None) -> None:
        self.raised_count += 1
        self._pending.append(payload)
        self._drain()

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _drain(self) -> None:
        if self._handler is None or self._in_service:
            return
        self._in_service = True
        try:
            while self._pending:
                payload = self._pending.popleft()
                self.delivered_count += 1
                self._handler(payload)
        finally:
            self._in_service = False


class InterruptController:
    """Per-PE fan-in of interrupt lines."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.lines = {}

    def line(self, line_name: str) -> InterruptLine:
        if line_name not in self.lines:
            self.lines[line_name] = InterruptLine(self.sim, "%s.%s" % (self.name, line_name))
        return self.lines[line_name]
