"""VCD (value-change dump) export of simulation traces.

The paper's environment verified generated buses by watching waveforms in
XRAY/VCS (Figure 28).  This module produces a standard IEEE 1364 VCD file
from a simulated machine so the handshake registers and bus-grant activity
can be inspected in any waveform viewer (GTKWave etc.):

* every handshake register block traced with ``trace_hsregs=True``
  contributes its DONE_OP/DONE_RV bits;
* every arbiter with ``trace_enabled`` contributes a per-master grant bit.

Usage::

    machine = build_machine(spec, trace_hsregs=True)
    for segment in machine.segments.values():
        segment.arbiter.trace_enabled = True
    ... run ...
    open("run.vcd", "w").write(vcd_from_machine(machine))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["VcdWriter", "vcd_from_machine"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal #index."""
    if index == 0:
        return _ID_CHARS[0]
    out = ""
    while index:
        index, digit = divmod(index, len(_ID_CHARS))
        out = _ID_CHARS[digit] + out
    return out


class VcdWriter:
    """Collects declarations and value changes; renders a VCD text."""

    def __init__(self, timescale: str = "10 ns"):
        self.timescale = timescale
        # scope -> list of (name, width, identifier)
        self._scopes: Dict[str, List[Tuple[str, int, str]]] = {}
        self._changes: List[Tuple[int, str, int, int]] = []  # (t, id, value, width)
        self._count = 0

    def add_signal(self, scope: str, name: str, width: int = 1) -> str:
        identifier = _identifier(self._count)
        self._count += 1
        self._scopes.setdefault(scope, []).append((name, width, identifier))
        return identifier

    def change(self, time: int, identifier: str, value: int, width: int = 1) -> None:
        if time < 0:
            raise ValueError("negative VCD time")
        self._changes.append((time, identifier, value, width))

    @staticmethod
    def _format(identifier: str, value: int, width: int) -> str:
        if width == 1:
            return "%d%s" % (value & 1, identifier)
        return "b%s %s" % (bin(value)[2:], identifier)

    def dumps(self) -> str:
        lines = [
            "$date repro $end",
            "$version repro BusSyn reproduction $end",
            "$timescale %s $end" % self.timescale,
        ]
        for scope in sorted(self._scopes):
            lines.append("$scope module %s $end" % scope)
            for name, width, identifier in self._scopes[scope]:
                lines.append("$var wire %d %s %s $end" % (width, identifier, name))
            lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        # Conflicting writes to one identifier at the same timestamp collapse
        # to a single change -- the last write wins, matching the register
        # semantics the trace models (two lines for one signal at one time
        # would be ambiguous to viewers).
        latest: Dict[Tuple[int, str], Tuple[int, int]] = {}
        for time, identifier, value, width in self._changes:
            latest[(time, identifier)] = (value, width)
        # Time-zero initial values go in a $dumpvars block (required by many
        # viewers to establish a starting value for every declared signal;
        # signals with no recorded value at t=0 dump as 'x').
        initial: Dict[str, Tuple[int, int]] = {}
        for (time, identifier), value_width in list(latest.items()):
            if time == 0:
                initial[identifier] = value_width
                del latest[(time, identifier)]
        lines.append("#0")
        lines.append("$dumpvars")
        for scope in sorted(self._scopes):
            for name, width, identifier in self._scopes[scope]:
                if identifier in initial:
                    lines.append(self._format(identifier, *initial[identifier]))
                elif width == 1:
                    lines.append("x%s" % identifier)
                else:
                    lines.append("bx %s" % identifier)
        lines.append("$end")
        # Later changes, grouped by time; within a timestamp, changes keep
        # the order of each identifier's final write.
        order: Dict[Tuple[int, str], int] = {}
        for index, (time, identifier, _value, _width) in enumerate(self._changes):
            order[(time, identifier)] = index
        current_time: Optional[int] = None
        for (time, identifier), (value, width) in sorted(
            latest.items(), key=lambda item: (item[0][0], order[item[0]])
        ):
            if time != current_time:
                lines.append("#%d" % time)
                current_time = time
            lines.append(self._format(identifier, value, width))
        return "\n".join(lines) + "\n"


def vcd_from_machine(machine) -> str:
    """Render a machine's collected traces (handshake regs, grants) as VCD."""
    writer = VcdWriter()
    for ban, block in sorted(machine.hs_blocks.items()):
        if not block.trace_enabled:
            continue
        scope = "hs_regs_%s" % ban.lower()
        ids = {
            "DONE_OP": writer.add_signal(scope, "done_op"),
            "DONE_RV": writer.add_signal(scope, "done_rv"),
        }
        # Initial values at time 0, then the recorded edges.
        writer.change(0, ids["DONE_OP"], 0)
        writer.change(0, ids["DONE_RV"], 0)
        for time, register, value in block.trace:
            writer.change(time, ids[register], value)
    for name, segment in sorted(machine.segments.items()):
        arbiter = segment.arbiter
        trace = getattr(arbiter, "trace", None)
        if not getattr(arbiter, "trace_enabled", False) or trace is None:
            continue
        scope = "arb_%s" % name.lower()
        master_ids: Dict[str, str] = {}
        for time, master, granted in trace:
            if master not in master_ids:
                master_ids[master] = writer.add_signal(scope, "gnt_%s" % master.lower())
                writer.change(0, master_ids[master], 0)
            writer.change(time, master_ids[master], 1 if granted else 0)
    return writer.dumps()
