"""Bus segments and bus bridges.

A *Segment of Bus* (SB, definition E in the paper) is a contiguous set of
address/data/control wires with no bridges.  Masters win a segment through
its arbiter, pay a grant latency that models the request/grant protocol
(3 cycles for BusSyn-generated buses; 5 cycles for read on the
CoreConnect-style CCBA baseline -- the margin Table III attributes to the
generated buses), then stream data at one beat per cycle with
``data_width/32`` words per beat.

A *Bus Bridge* (BB, definition B) is an on-off connection point between two
segments.  When enabled, a transaction crosses store-and-forward style: the
path is walked segment by segment, paying the bridge's hop latency between
segments.  Acquiring segments one at a time (release before the next hop)
keeps crossing transactions deadlock-free.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER
from .arbiter import Arbiter, FCFSArbiter
from .kernel import Simulator
from .stats import BusStats

__all__ = ["BusSegment", "BusBridge", "TransferTiming"]


class TransferTiming:
    """Cycle breakdown of a completed bus transfer (for stats/debugging)."""

    __slots__ = ("start", "end", "arbitration", "transfer", "memory")

    def __init__(self, start: int, end: int, arbitration: int, transfer: int, memory: int):
        self.start = start
        self.end = end
        self.arbitration = arbitration
        self.transfer = transfer
        self.memory = memory

    @property
    def total(self) -> int:
        return self.end - self.start


class BusSegment:
    """One arbitrated bus segment (an SB plus its arbiter and GBI logic)."""

    __slots__ = (
        "sim",
        "name",
        "data_width",
        "address_width",
        "arbiter",
        "grant_cycles",
        "write_grant_cycles",
        "beat_cycles",
        "attached_interfaces",
        "stats",
        "obs",
        "faults",
        "monitor",
        "counters",
        "counter_base",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        data_width: int = 64,
        address_width: int = 32,
        arbiter: Optional[Arbiter] = None,
        grant_cycles: int = 3,
        write_grant_cycles: Optional[int] = None,
        beat_cycles: int = 1,
    ):
        if data_width % 32 != 0:
            raise ValueError("data_width must be a multiple of 32 bits")
        self.sim = sim
        self.name = name
        self.data_width = data_width
        self.address_width = address_width
        self.arbiter = arbiter or FCFSArbiter(sim, name + ".arb")
        self.grant_cycles = grant_cycles
        self.write_grant_cycles = (
            grant_cycles if write_grant_cycles is None else write_grant_cycles
        )
        # Cycles per data beat.  Long, heavily-loaded buses run slower due
        # to parasitic resistance/capacitance -- the argument the paper
        # borrows from Hsieh & Pedram [19] for SplitBA's short buses.  The
        # fabric builder raises this above 1 on segments with many attached
        # interfaces (see Machine "bus loading" finalization).
        self.beat_cycles = beat_cycles
        self.attached_interfaces = 0
        self.stats = BusStats(name)
        # Observability hook (repro.obs.Observability); None keeps occupy()
        # on the zero-cost path.  Set by Machine.attach_observability.
        self.obs = None
        # Fault injector (repro.faults); None keeps occupy() hook-free.
        self.faults = None
        # Protocol assertion monitor (repro.verify.monitors); None keeps
        # occupy() hook-free.  Set by repro.verify.attach_monitors.
        self.monitor = None
        # Counter plane (repro.obs.counters.CounterPlane): a shared flat
        # slot list plus this segment's base index.  None keeps every
        # tenure on the increment-free path; bound by CounterPlane.bind.
        self.counters = None
        self.counter_base = 0

    @property
    def words_per_beat(self) -> int:
        return self.data_width // 32

    def beats_for(self, words: int) -> int:
        wpb = self.words_per_beat
        return (max(words, 1) + wpb - 1) // wpb

    def occupy(
        self,
        master: str,
        words: int,
        write: bool,
        extra_cycles: int = 0,
    ) -> Generator:
        """Own the segment for one burst; yields inside the process.

        ``extra_cycles`` lets a slave (memory) add its burst latency while
        the bus is held, matching a non-split-transaction bus.  Returns a
        :class:`TransferTiming`.
        """
        sim = self.sim
        start = sim.now
        faults = self.faults
        if faults is not None and self.name in faults.guarded_segments:
            # Grant pulses on this segment can be lost or stuck: acquire
            # through the injector's timeout/escalation path.
            yield from faults.acquire(self, master)
        elif not self.arbiter.try_claim(master):
            yield self.arbiter.request(master)
        monitor = self.monitor
        if monitor is not None:
            monitor.on_transfer_open(self, master)
        grant = self.write_grant_cycles if write else self.grant_cycles
        # Grant latency and data beats are one uninterrupted tenure with no
        # observable state change in between: charge them as a single kernel
        # event and derive the arbitration boundary arithmetically.
        arbitration_done = sim.now + grant
        try:
            beats = self.beats_for(words) * self.beat_cycles
            yield grant + beats + extra_cycles
        finally:
            self.arbiter.release(master)
            if monitor is not None:
                monitor.on_transfer_close(self, master)
        end = sim.now
        timing = TransferTiming(
            start=start,
            end=end,
            arbitration=arbitration_done - start,
            transfer=end - arbitration_done - extra_cycles,
            memory=extra_cycles,
        )
        self.stats.record(master, words, write, timing)
        cslots = self.counters
        if cslots is not None:
            base = self.counter_base
            cslots[base] += 1
            cslots[base + 1] += 1
            cslots[base + 2] += timing.arbitration
        obs = self.obs
        if obs is not None:
            # Span boundaries mirror the stats: arbitration runs to the
            # grant-latency boundary, tenure from there to release.
            obs.bus_transaction(
                self, master, start, arbitration_done, end, words, write, extra_cycles
            )
        return timing


class BusBridge:
    """On-off connection between two segments (definition B).

    The bridge itself is not arbitrated; it simply charges ``hop_cycles``
    for a transaction passing from one side to the other, and refuses to
    route while disabled.  Both attached segments are still individually
    arbitrated, so a disabled bridge really does isolate traffic.
    """

    __slots__ = (
        "sim",
        "name",
        "side_a",
        "side_b",
        "hop_cycles",
        "enabled",
        "crossings",
        "tracer",
        "faults",
        "monitor",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        side_a: BusSegment,
        side_b: BusSegment,
        hop_cycles: int = 1,
        enabled: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.side_a = side_a
        self.side_b = side_b
        self.hop_cycles = hop_cycles
        self.enabled = enabled
        self.crossings = 0
        self.tracer = NULL_TRACER
        # Fault injector (repro.faults); None keeps cross() hook-free.
        self.faults = None
        # Protocol assertion monitor (repro.verify.monitors); None keeps
        # cross() hook-free.
        self.monitor = None

    def other_side(self, segment: BusSegment) -> BusSegment:
        if segment is self.side_a:
            return self.side_b
        if segment is self.side_b:
            return self.side_a
        raise ValueError(
            "segment %r is not attached to bridge %r" % (segment.name, self.name)
        )

    def connects(self, seg1: BusSegment, seg2: BusSegment) -> bool:
        return {seg1, seg2} == {self.side_a, self.side_b}

    def cross(self) -> Generator:
        """Charge the hop; raises if the bridge is disabled."""
        if not self.enabled:
            raise RuntimeError("bus bridge %r is disabled" % self.name)
        self.crossings += 1
        if self.tracer.enabled:
            self.tracer.hop(self.sim.now, self.name)
        if self.monitor is not None:
            self.monitor.on_bridge_cross(self, None)
        extra = 0
        if self.faults is not None:
            extra = self.faults.bridge_delay(self.name)
        yield self.hop_cycles + extra


def find_route(
    start: BusSegment,
    goal: BusSegment,
    bridges: List[BusBridge],
) -> List[Tuple[BusSegment, Optional[BusBridge]]]:
    """Breadth-first route across enabled bridges.

    Returns ``[(segment, bridge_into_next), ..., (goal, None)]``.
    Raises ``LookupError`` when the goal is unreachable (e.g. all bridges
    on the way are disabled).
    """
    if start is goal:
        return [(start, None)]
    adjacency: Dict[BusSegment, List[Tuple[BusSegment, BusBridge]]] = {}
    for bridge in bridges:
        if not bridge.enabled:
            continue
        adjacency.setdefault(bridge.side_a, []).append((bridge.side_b, bridge))
        adjacency.setdefault(bridge.side_b, []).append((bridge.side_a, bridge))
    frontier = deque([start])
    came_from: Dict[BusSegment, Tuple[BusSegment, BusBridge]] = {}
    seen = {start}
    while frontier:
        current = frontier.popleft()
        for neighbor, bridge in adjacency.get(current, []):
            if neighbor in seen:
                continue
            seen.add(neighbor)
            came_from[neighbor] = (current, bridge)
            if neighbor is goal:
                frontier = []
                break
            frontier.append(neighbor)
    if goal not in came_from:
        raise LookupError(
            "no enabled route from segment %r to %r" % (start.name, goal.name)
        )
    # Reconstruct: list of (segment, bridge leading to the next segment).
    path: List[Tuple[BusSegment, Optional[BusBridge]]] = [(goal, None)]
    node = goal
    while node is not start:
        previous, bridge = came_from[node]
        path.insert(0, (previous, bridge))
        node = previous
    return path
