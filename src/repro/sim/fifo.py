"""Bi-FIFO blocks for the BFBA bus architecture.

In BFBA (Figure 4), each BAN carries a bidirectional FIFO pair used to
exchange data with its neighbours.  The paper's Bi-FIFO controller
(section IV.C.2) holds a *threshold register* set by the sender; pushing
data increments a hardware counter, and when the counter reaches the
threshold the controller raises an interrupt toward the receiving PE so its
interrupt handler can pop the data.

:class:`HardwareFifo` models one direction; :class:`BiFifo` pairs an "up"
and a "down" FIFO like the ``fifo_cs_up``/``fifo_cs_dn`` ports of Example 8.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..obs.tracer import NULL_TRACER
from .kernel import Event, Simulator

__all__ = ["FifoFullError", "FifoEmptyError", "HardwareFifo", "BiFifo"]


class FifoFullError(Exception):
    """Push into a full FIFO (would be data loss in hardware)."""


class FifoEmptyError(Exception):
    """Pop from an empty FIFO."""


class HardwareFifo:
    """One FIFO direction with a threshold-interrupt counter.

    The threshold register is write-once-per-transfer by the sender
    (Example 4 sets it to 64 words).  A threshold of 0 disables the
    interrupt.  ``on_threshold`` is invoked *once* each time the fill
    counter climbs from below the threshold to at or above it, mirroring an
    edge-triggered interrupt line.
    """

    __slots__ = (
        "sim",
        "name",
        "depth_words",
        "_data",
        "threshold",
        "_armed",
        "on_threshold",
        "pushes",
        "pops",
        "peak_fill",
        "interrupts_raised",
        "tracer",
        "faults",
        "monitor",
        "_space_waiters",
        "_data_waiters",
    )

    def __init__(self, sim: Simulator, name: str, depth_words: int):
        if depth_words <= 0:
            raise ValueError("FIFO %r needs positive depth" % name)
        self.sim = sim
        self.name = name
        self.depth_words = depth_words
        self._data: Deque[int] = deque()
        self.threshold = 0
        self._armed = True
        self.on_threshold: Optional[Callable[["HardwareFifo"], None]] = None
        self.pushes = 0
        self.pops = 0
        self.peak_fill = 0
        self.interrupts_raised = 0
        self.tracer = NULL_TRACER
        # Fault injector (repro.faults); None keeps push() hook-free.
        self.faults = None
        # Protocol assertion monitor (repro.verify.monitors); None keeps
        # push()/pop() hook-free.
        self.monitor = None
        self._space_waiters: List[Event] = []
        self._data_waiters: List[Event] = []

    # -- registers ---------------------------------------------------------
    def set_threshold(self, words: int) -> None:
        if words < 0 or words > self.depth_words:
            raise ValueError(
                "%s: threshold %d outside FIFO depth %d"
                % (self.name, words, self.depth_words)
            )
        self.threshold = words
        self._armed = True

    @property
    def count(self) -> int:
        return len(self._data)

    @property
    def space(self) -> int:
        return self.depth_words - len(self._data)

    @property
    def is_empty(self) -> bool:
        return not self._data

    @property
    def is_full(self) -> bool:
        return len(self._data) >= self.depth_words

    # -- data path -----------------------------------------------------------
    def push(self, values) -> None:
        values = [value & 0xFFFFFFFF for value in values]
        if self.faults is not None:
            # May truncate (dropped tail goes on the injector's retransmit
            # ledger) or mark a duplicate for a sequence-check discard; the
            # recovery side runs in Machine.fifo_push.
            values = self.faults.filter_push(self, values)
            if not values:
                return
        if len(values) > self.space:
            raise FifoFullError(
                "%s: push of %d words with only %d free"
                % (self.name, len(values), self.space)
            )
        self._data.extend(values)
        self.pushes += len(values)
        fill = len(self._data)
        if fill > self.peak_fill:
            self.peak_fill = fill
        if self.tracer.enabled:
            self.tracer.fifo(self.sim.now, self.name, "push", len(values), fill)
        if self.monitor is not None:
            self.monitor.on_fifo_push(self, len(values))
        self._check_threshold()
        self._wake(self._data_waiters)

    def pop(self, count: int) -> List[int]:
        if count > len(self._data):
            raise FifoEmptyError(
                "%s: pop of %d words with only %d present"
                % (self.name, count, len(self._data))
            )
        out = [self._data.popleft() for _ in range(count)]
        self.pops += count
        if self.tracer.enabled:
            self.tracer.fifo(self.sim.now, self.name, "pop", count, len(self._data))
        if self.monitor is not None:
            self.monitor.on_fifo_pop(self, count)
        if self.threshold and len(self._data) < self.threshold:
            self._armed = True
        self._wake(self._space_waiters)
        return out

    # -- blocking helpers (events fire when the condition can be retried) ----
    def wait_space(self) -> Event:
        event = self.sim.event()
        self._space_waiters.append(event)
        return event

    def wait_data(self) -> Event:
        event = self.sim.event()
        self._data_waiters.append(event)
        return event

    def _wake(self, waiters: List[Event]) -> None:
        pending, waiters[:] = waiters[:], []
        for event in pending:
            event.succeed()

    def _check_threshold(self) -> None:
        if (
            self.threshold
            and self._armed
            and len(self._data) >= self.threshold
            and self.on_threshold is not None
        ):
            self._armed = False
            self.interrupts_raised += 1
            self.on_threshold(self)


class BiFifo:
    """A bidirectional FIFO block between two adjacent BANs.

    ``up`` carries data from the lower-lettered BAN toward the higher one
    (A->B), ``down`` the reverse; the naming follows the ``_up``/``_dn``
    port suffixes of the generated Verilog (Example 8).
    """

    __slots__ = ("name", "depth_words", "up", "down")

    def __init__(self, sim: Simulator, name: str, depth_words: int):
        self.name = name
        self.depth_words = depth_words
        self.up = HardwareFifo(sim, name + ".up", depth_words)
        self.down = HardwareFifo(sim, name + ".dn", depth_words)

    def direction(self, toward_higher: bool) -> HardwareFifo:
        return self.up if toward_higher else self.down
