"""Perf-regression harness: kernel/table timings, backend A/B, parity.

Run it through the CLI (no ``PYTHONPATH`` gymnastics) ::

    python -m repro bench                      # full run, all backends
    python -m repro bench --smoke              # CI quick pass
    python -m repro bench --kernel wheel       # time one backend only
    python -m repro bench --smoke --enforce-floor   # CI regression gate

or via the ``benchmarks/perf_harness.py`` shim.  Sections written to
``BENCH_kernel.json`` (``--out``):

* ``kernel.<backend>.int_yield`` -- pure event throughput per scheduler
  backend (heap vs timing wheel vs compiled): 64 processes each doing
  2000 one-cycle delay yields.  Events/sec uses the nominal event count
  (procs x yields) so the figure is comparable across kernel versions.
* ``kernel.<backend>.mixed`` -- composite workload exercising Timeout
  pooling, Event succeed/fail, AnyOf/AllOf, and interrupt wakeups.
* ``ab`` -- challenger-vs-heap ratios when both sides were timed.  The
  full-run gates require the wheel to reach at least
  ``gates.wheel_vs_heap_int_yield`` (1.5x) heap throughput and the
  compiled backend ``gates.compiled_vs_heap_int_yield`` (5.0x).
* ``table2.<backend>`` -- Table II wall time, sequential vs parallel
  runner, best-of-``--rounds`` after a warm-up; parallel rows must be
  bit-identical to sequential rows and pass ``check_table2_shape``.
* ``backend_parity`` -- Tables II-V executed serially on *every* backend
  (heap, wheel, compiled -- even under ``--kernel``/``--smoke``);
  ``rows_identical`` must be true for every table (Table V rows are
  compared without the wall-clock ``generation_time_ms`` field).
* ``run_report`` -- one traced Table II case's telemetry summary, so
  event counts and utilization drift are visible next to the numbers.

Microbenches (``int_yield``/``mixed``) are best-of-``--rounds`` and run
for *every* backend before any table timing, so the recorded A/B ratio
is not skewed by machine heat from the long table runs.

Baselines live in the checked-in ``benchmarks/baselines.json`` (they are
*read*, never rewritten, so they cannot drift when this harness rewrites
its output): the frozen seed-tree numbers (commit 2988a20), the vs-seed
gate floors, the wheel-vs-heap floor, and the per-backend CI floor
references.  Outside ``--smoke`` the run fails (exit 1) on any parity or
identity failure, on a *heap* vs-seed speedup below its floor (the
floors were calibrated for the seed's default scheduler; the wheel's
vs-seed numbers are informational), or on a wheel/compiled A/B ratio
below its floor.  ``--enforce-floor`` additionally times the
full-size ``int_yield`` workload (cheap, ~0.2 s) and fails on a
``gates.ci_regression_tolerance`` (20 %) events/sec regression against
the per-backend ``ci_floor`` references -- the CI guard.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.table2 import check_table2_shape, run_table2, run_table2_case
from ..experiments.table3 import run_table3
from ..experiments.table4 import run_table4
from ..experiments.table5 import run_table5
from ..obs.report import drain_recorded
from ..sim.kernel import KERNEL_BACKENDS, Interrupt, Simulator

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)
DEFAULT_BASELINES = os.path.join(_REPO_ROOT, "benchmarks", "baselines.json")
DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_kernel.json")

# Quick table scales for the backend-parity sweep: parity is a determinism
# check, not a perf check, so small workloads cover it.
PARITY_SCALES = {
    "table3": {"frame_count": 4},
    "table4": {"client_count": 10},
    "table5": {"pe_counts": [1, 8]},
}


def load_baselines(path: Optional[str] = None) -> dict:
    """Read ``benchmarks/baselines.json`` (the frozen references + gates)."""
    with open(path or DEFAULT_BASELINES) as handle:
        return json.load(handle)


def bench_int_yield(
    kernel: str, procs: int = 64, yields: int = 2000, rounds: int = 1
) -> dict:
    """Kernel event throughput: ``procs`` processes x ``yields`` delays.

    Best-of-``rounds``: microbenches this short (~0.1 s) are dominated by
    scheduler noise and thermal state, so single samples routinely swing
    +-30% and would make the A/B ratio meaningless.
    """

    def worker(count):
        for _ in range(count):
            yield 1

    samples: List[float] = []
    for _ in range(max(1, rounds)):
        sim = Simulator(kernel=kernel)
        for index in range(procs):
            sim.process(worker(yields), name="w%d" % index)
        start = time.perf_counter()
        sim.run()
        samples.append(time.perf_counter() - start)
    seconds = min(samples)
    events = procs * yields
    return {
        "kernel": kernel,
        "procs": procs,
        "yields": yields,
        "rounds": len(samples),
        "seconds": seconds,
        "all_seconds": samples,
        "events": events,
        "events_per_sec": events / seconds,
    }


def bench_mixed(kernel: str, groups: int = 200, rounds: int = 1) -> dict:
    """Composite workload: events, composites, interrupts, pooled timeouts.

    Best-of-``rounds`` for the same noise reasons as :func:`bench_int_yield`.
    """

    def producer(sim, done):
        yield 3
        done.succeed("payload")

    def failer(sim, doomed):
        yield 10
        doomed.fail(RuntimeError("mixed-bench failure path"))

    def consumer(sim, done, doomed):
        value = yield sim.any_of([done, sim.timeout(50)])
        assert value
        try:
            yield sim.all_of([doomed, sim.timeout(20)])
        except RuntimeError:
            pass
        for _ in range(20):
            yield 2

    def sleeper(sim):
        try:
            yield 1000
        except Interrupt:
            yield 1

    def interrupter(sim, victim):
        yield 5
        victim.interrupt("wake")
        yield 5

    samples: List[float] = []
    events = 0
    for _ in range(max(1, rounds)):
        sim = Simulator(kernel=kernel)
        for index in range(groups):
            done = sim.event()
            doomed = sim.event()
            sim.process(producer(sim, done), name="p%d" % index)
            sim.process(failer(sim, doomed), name="f%d" % index)
            sim.process(consumer(sim, done, doomed), name="c%d" % index)
            victim = sim.process(sleeper(sim), name="s%d" % index)
            sim.process(interrupter(sim, victim), name="i%d" % index)
        start = time.perf_counter()
        sim.run()
        samples.append(time.perf_counter() - start)
        events = sim.events_processed
    return {
        "kernel": kernel,
        "groups": groups,
        "rounds": len(samples),
        "seconds": min(samples),
        "all_seconds": samples,
        "events": events,
    }


def bench_table2(kernel: str, jobs: int, rounds: int, packets: int) -> dict:
    """Table II wall time, sequential vs parallel runner, plus identity."""
    run_table2(packets=packets, kernel=kernel)  # warm imports and caches
    sequential: List[float] = []
    parallel: List[float] = []
    rows_seq = rows_par = None
    for _ in range(rounds):
        start = time.perf_counter()
        rows_seq = run_table2(packets=packets, jobs=1, kernel=kernel)
        sequential.append(time.perf_counter() - start)
        start = time.perf_counter()
        rows_par = run_table2(packets=packets, jobs=jobs, kernel=kernel)
        parallel.append(time.perf_counter() - start)
    identical = [vars(r) for r in rows_seq] == [vars(r) for r in rows_par]
    # The shape claims are calibrated for the full 8-packet experiment;
    # smoke-scale runs only verify sequential/parallel identity.
    shape_failures = check_table2_shape(rows_par) if packets >= 8 else []
    return {
        "kernel": kernel,
        "jobs": jobs,
        "rounds": rounds,
        "packets": packets,
        "sequential_seconds": min(sequential),
        "parallel_seconds": min(parallel),
        "sequential_all": sequential,
        "parallel_all": parallel,
        "rows_identical": identical,
        "shape_failures": shape_failures,
    }


def bench_run_report(kernel: str, packets: int) -> dict:
    """One representative traced case: the RunReport summary the paper-table
    runs emit, recorded into BENCH_kernel.json so telemetry drift (event
    counts, utilization) shows up next to the perf numbers."""
    drain_recorded()  # discard anything a previous bench left behind
    row = run_table2_case(
        (7, "SPLITBA", "FPA"), packets=packets, telemetry=True, kernel=kernel
    )
    reports = drain_recorded()
    report = reports[0] if reports else {}
    return {
        "kernel": kernel,
        "case": "table2:7 SPLITBA/FPA",
        "packets": packets,
        "throughput_mbps": row.throughput_mbps,
        "wall_seconds": report.get("wall_seconds", 0.0),
        "simulated_cycles": report.get("simulated_cycles", 0),
        "events_processed": report.get("events_processed", 0),
        "events_per_second": report.get("events_per_second", 0.0),
        "peak_queue_depth": report.get("peak_queue_depth", 0),
        "segments": [
            {
                "name": segment["name"],
                "transactions": segment["transactions"],
                "utilization": segment["utilization"],
                "arb_wait_p99": segment.get("arb_wait_p99"),
            }
            for segment in report.get("segments", ())
        ],
    }


def bench_counters(kernel: str = "compiled", packets: int = 2, rounds: int = 1) -> dict:
    """Counter-plane cost on the compiled fast path (docs/observability.md).

    Times one OFDM run with and without a bound
    :class:`~repro.obs.counters.CounterPlane` and checks the three
    zero-despecialization claims: the machine stays specialized, the
    simulated cycle count is bit-identical, and counter totals match
    :class:`~repro.sim.stats.BusStats`.  ``overhead_fraction`` is the
    relative wall-time cost of the baked increments (gated against
    ``gates.counters_overhead_max`` outside ``--smoke``).
    """
    from ..apps.ofdm import OfdmParameters, run_ofdm
    from ..options import presets
    from ..sim.fabric import MachineBuilder

    def one(with_counters: bool):
        builder = MachineBuilder(presets.preset("GBAVIII", 4)).with_kernel(kernel)
        if with_counters:
            builder.with_counters()
        machine = builder.build()
        start = time.perf_counter()
        result = run_ofdm(machine, "FPA", OfdmParameters(packets=packets))
        return machine, result.cycles, time.perf_counter() - start

    off_samples: List[float] = []
    on_samples: List[float] = []
    cycles_off = cycles_on = None
    stayed_specialized = True
    counters_match_stats = True
    for _ in range(max(1, rounds)):
        _machine, cycles_off, wall = one(False)
        off_samples.append(wall)
        machine, cycles_on, wall = one(True)
        on_samples.append(wall)
        stayed_specialized = stayed_specialized and machine._specialized
        counters_match_stats = (
            counters_match_stats and not machine.counters.check_against_stats(machine)
        )
    seconds_off = min(off_samples)
    seconds_on = min(on_samples)
    return {
        "kernel": kernel,
        "packets": packets,
        "rounds": len(off_samples),
        "cycles_off": cycles_off,
        "cycles_on": cycles_on,
        "bit_identical": cycles_on == cycles_off,
        "stayed_specialized": stayed_specialized,
        "counters_match_stats": counters_match_stats,
        "seconds_off": seconds_off,
        "seconds_on": seconds_on,
        "overhead_fraction": (
            (seconds_on - seconds_off) / seconds_off if seconds_off > 0 else 0.0
        ),
    }


def bench_dse_sweep(smoke: bool = False, kernel: str = "compiled") -> dict:
    """Cold-vs-warm DSE sweep throughput (docs/dse.md).

    Runs the bench sweep twice against a fresh temporary artifact cache:
    the cold pass generates and simulates every config, the warm pass
    must be pure cache reads.  Both passes run with ``jobs=1`` so the
    speedup measures the cache alone, not pool fan-out.  Outside
    ``--smoke`` the warm pass must be at least ``gates.dse_warm_vs_cold``
    (5x) faster; the warm hit ratio (``gates.dse_warm_hit_ratio_min``)
    and cold/warm frontier identity are determinism checks and gate even
    under ``--smoke``.
    """
    import shutil
    import tempfile

    from ..dse.engine import run_sweep
    from ..dse.spec import bench_spec
    from ..obs.ledger import scrub_timings

    sweep = bench_spec(smoke=smoke)
    tmp = tempfile.mkdtemp(prefix="repro-bench-dse-")
    try:
        cold = run_sweep(sweep, jobs=1, kernel=kernel, cache_dir=tmp)
        warm = run_sweep(sweep, jobs=1, kernel=kernel, cache_dir=tmp)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    cold_seconds = cold["seconds"]
    warm_seconds = warm["seconds"]
    warm_cache = warm["cache_stats"]
    return {
        "smoke": smoke,
        "kernel": kernel,
        "spec": sweep.name,
        "configs": cold["configs"],
        "expanded": cold["expanded"],
        "errors": cold["errors"],
        "frontier_size": len(cold["frontier"]),
        "frontier_identical": scrub_timings(cold["frontier"])
        == scrub_timings(warm["frontier"]),
        # Wall-clock / cache-state tail (ledger-scrubbed keys).
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "configs_per_sec": {
            "cold": cold["configs_per_sec"],
            "warm": warm["configs_per_sec"],
        },
        "cache_stats": {
            "cold": cold["cache_stats"],
            "warm": warm_cache,
            "warm_hit_ratio": warm_cache["hit_ratio"],
        },
    }


def _table5_key(row) -> dict:
    """Table V row minus its wall-clock field (generation_time_ms measures
    *this* run's generator speed, not simulated behaviour)."""
    fields = dict(vars(row))
    fields.pop("generation_time_ms", None)
    return fields


def bench_backend_parity(table2_packets: int, jobs: int = 1) -> dict:
    """Tables II-V on every scheduler backend; rows must be bit-identical.

    Backends run serially (one full table sweep per backend) so each
    backend's rows come from an identical machine state; ``jobs`` is
    threaded through to the table runners the same way ``repro table``
    does it, so the parity sweep can use the parallel case runners.
    """
    parity: Dict[str, dict] = {}

    def compare(name: str, rows_by_kernel: Dict[str, list], normalize=vars) -> None:
        normalized = {
            kernel: [normalize(row) for row in rows]
            for kernel, rows in rows_by_kernel.items()
        }
        reference = normalized[KERNEL_BACKENDS[0]]
        identical = all(rows == reference for rows in normalized.values())
        parity[name] = {
            "backends": sorted(rows_by_kernel),
            "rows": len(reference),
            "rows_identical": identical,
        }

    compare(
        "table2",
        {
            kernel: run_table2(packets=table2_packets, jobs=jobs, kernel=kernel)
            for kernel in KERNEL_BACKENDS
        },
    )
    compare(
        "table3",
        {
            kernel: run_table3(kernel=kernel, jobs=jobs, **PARITY_SCALES["table3"])
            for kernel in KERNEL_BACKENDS
        },
    )
    compare(
        "table4",
        {
            kernel: run_table4(kernel=kernel, jobs=jobs, **PARITY_SCALES["table4"])
            for kernel in KERNEL_BACKENDS
        },
    )
    # Table V is architecture *generation* (no Simulator involved): rows are
    # backend-independent by construction; the comparison pins that down.
    compare(
        "table5",
        {
            kernel: run_table5(jobs=jobs, **PARITY_SCALES["table5"])
            for kernel in KERNEL_BACKENDS
        },
        normalize=_table5_key,
    )
    return parity


def run_harness(
    kernels: Sequence[str] = KERNEL_BACKENDS,
    smoke: bool = False,
    jobs: int = 4,
    rounds: int = 3,
    enforce_floor: bool = False,
    baselines_path: Optional[str] = None,
) -> Tuple[dict, List[str]]:
    """Run every bench section; returns ``(report, failures)``."""
    baselines = load_baselines(baselines_path)
    seed = baselines["seed"]
    gates = baselines["gates"]

    if smoke:
        scales = {
            "int_yield": {"procs": 8, "yields": 200},
            "mixed": {"groups": 20},
            "table2": {"jobs": min(jobs, 2), "rounds": 1, "packets": 2},
            "report_packets": 2,
            "parity_packets": 2,
        }
    else:
        scales = {
            "int_yield": {},
            "mixed": {},
            "table2": {"jobs": jobs, "rounds": rounds, "packets": 8},
            "report_packets": 8,
            "parity_packets": 8,
        }

    kernel_section: Dict[str, dict] = {}
    table2_section: Dict[str, dict] = {}
    vs_seed: Dict[str, dict] = {}
    # Microbench every backend before any Table II timing: the table runs
    # take tens of seconds and heat the machine, which would skew whichever
    # backend's microbench happened to run after them and make the recorded
    # A/B ratio depend on section ordering.
    micro_rounds = 1 if smoke else max(1, rounds)
    for kernel in kernels:
        kernel_section[kernel] = {
            "int_yield": bench_int_yield(
                kernel, rounds=micro_rounds, **scales["int_yield"]
            ),
            "mixed": bench_mixed(kernel, rounds=micro_rounds, **scales["mixed"]),
        }
    for kernel in kernels:
        int_yield = kernel_section[kernel]["int_yield"]
        mixed = kernel_section[kernel]["mixed"]
        table2 = bench_table2(kernel, **scales["table2"])
        table2_section[kernel] = table2
        vs_seed[kernel] = {
            "int_yield_events_per_sec": int_yield["events_per_sec"]
            / seed["int_yield_events_per_sec"],
            "mixed_seconds": seed["mixed_seconds"] / mixed["seconds"],
            "table2_sequential_seconds": seed["table2_sequential_seconds"]
            / table2["sequential_seconds"],
            "table2_parallel_seconds": seed["table2_sequential_seconds"]
            / table2["parallel_seconds"],
        }

    ab: Dict[str, float] = {}
    if "heap" in kernel_section:
        for challenger in ("wheel", "compiled"):
            if challenger not in kernel_section:
                continue
            ab["int_yield_events_per_sec_%s_vs_heap" % challenger] = (
                kernel_section[challenger]["int_yield"]["events_per_sec"]
                / kernel_section["heap"]["int_yield"]["events_per_sec"]
            )
            ab["mixed_speedup_%s_vs_heap" % challenger] = (
                kernel_section["heap"]["mixed"]["seconds"]
                / kernel_section[challenger]["mixed"]["seconds"]
            )

    parity = bench_backend_parity(scales["parity_packets"], jobs=1 if smoke else jobs)
    run_report = bench_run_report(kernels[0], scales["report_packets"])
    counters = bench_counters(
        packets=scales["report_packets"], rounds=1 if smoke else max(1, rounds)
    )
    dse_sweep = bench_dse_sweep(smoke=smoke)

    failures: List[str] = []
    # DSE identity gates run even under --smoke (determinism checks); the
    # warm-vs-cold speedup floor only gates the full-size sweep.
    if not dse_sweep["frontier_identical"]:
        failures.append("dse_sweep: warm frontier differs from cold frontier")
    hit_floor = gates.get("dse_warm_hit_ratio_min")
    if hit_floor is not None and dse_sweep["cache_stats"]["warm_hit_ratio"] < hit_floor:
        failures.append(
            "dse_sweep: warm hit ratio %.2f below the %.2f floor"
            % (dse_sweep["cache_stats"]["warm_hit_ratio"], hit_floor)
        )
    speedup_floor = gates.get("dse_warm_vs_cold")
    if not smoke and speedup_floor is not None:
        if dse_sweep["speedup"] < speedup_floor:
            failures.append(
                "dse_sweep: warm only %.1fx cold, below the %.1fx floor"
                % (dse_sweep["speedup"], speedup_floor)
            )
    # Counter-plane identity gates run even under --smoke: they are
    # determinism checks, not timing checks.
    if not counters["bit_identical"]:
        failures.append(
            "counters: cycle count changed with the plane bound (%s != %s)"
            % (counters["cycles_on"], counters["cycles_off"])
        )
    if not counters["stayed_specialized"]:
        failures.append("counters: compiled backend despecialized under counters")
    if not counters["counters_match_stats"]:
        failures.append("counters: totals diverged from BusStats")
    overhead_max = gates.get("counters_overhead_max")
    if not smoke and overhead_max is not None:
        if counters["overhead_fraction"] > overhead_max:
            failures.append(
                "counters: overhead %.3f above the %.3f budget"
                % (counters["overhead_fraction"], overhead_max)
            )
    for kernel, table2 in table2_section.items():
        if not table2["rows_identical"]:
            failures.append(
                "%s: parallel rows differ from sequential rows" % kernel
            )
        if table2["shape_failures"]:
            failures.append(
                "%s: check_table2_shape: %s" % (kernel, table2["shape_failures"])
            )
    for name, entry in parity.items():
        if not entry["rows_identical"]:
            failures.append(
                "backend parity: %s rows differ across %s"
                % (name, "/".join(entry["backends"]))
            )
    if not smoke:
        # vs_seed floors gate the *heap* backend only: they were calibrated
        # against the seed tree's default scheduler, which heap descends
        # from.  The wheel is a different structure with a different profile
        # (~2x heap on event-dense traffic, slightly behind it on the
        # sparse, overflow-dominated table workloads -- docs/performance.md)
        # and is gated by its own design targets below: the A/B int_yield
        # floor and backend parity.  Its vs_seed speedups stay in the
        # report as information.
        if "heap" in vs_seed:
            for key, floor in gates["vs_seed"].items():
                if vs_seed["heap"][key] < floor:
                    failures.append(
                        "heap: vs_seed[%s] = %.2fx below the %.2fx floor"
                        % (key, vs_seed["heap"][key], floor)
                    )
        for challenger in ("wheel", "compiled"):
            key = "int_yield_events_per_sec_%s_vs_heap" % challenger
            if key not in ab:
                continue
            ratio = ab[key]
            floor = gates["%s_vs_heap_int_yield" % challenger]
            if ratio < floor:
                failures.append(
                    "%s int_yield only %.2fx heap, below the %.2fx floor"
                    % (challenger, ratio, floor)
                )

    ci_floor = None
    if enforce_floor:
        # Full-size int_yield regardless of --smoke: ~0.2 s per backend,
        # and small enough workloads are too noisy to gate on.
        tolerance = gates["ci_regression_tolerance"]
        ci_floor = {"tolerance": tolerance, "backends": {}}
        for kernel in kernels:
            reference = baselines["ci_floor"][kernel]["int_yield_events_per_sec"]
            # Best-of-3 full-size runs: a single sample is too noisy to
            # gate on when the runner is sharing the machine.
            measured = max(
                bench_int_yield(kernel)["events_per_sec"] for _ in range(3)
            )
            floor = (1.0 - tolerance) * reference
            ci_floor["backends"][kernel] = {
                "reference_events_per_sec": reference,
                "measured_events_per_sec": measured,
                "floor_events_per_sec": floor,
                "passed": measured >= floor,
            }
            if measured < floor:
                failures.append(
                    "ci floor: %s int_yield %.0f ev/s is >%.0f%% below the %.0f "
                    "reference in baselines.json"
                    % (kernel, measured, tolerance * 100, reference)
                )

    from ..obs.ledger import git_revision, options_hash

    report = {
        "smoke": smoke,
        "kernels": list(kernels),
        "kernel": kernel_section,
        "ab": ab,
        "table2": table2_section,
        "backend_parity": parity,
        "run_report": run_report,
        "counters": counters,
        "dse_sweep": dse_sweep,
        "baselines": baselines,
        "vs_seed": vs_seed,
        "failures": failures,
        # Self-describing artifact: which code, which config, which
        # backends produced these numbers (ledger-correlatable).
        "provenance": {
            "git_rev": git_revision(),
            "backends": list(kernels),
            "options_hash": options_hash(
                {
                    "kernels": list(kernels),
                    "smoke": smoke,
                    "jobs": jobs,
                    "rounds": rounds,
                    "enforce_floor": enforce_floor,
                }
            ),
        },
    }
    if ci_floor is not None:
        report["ci_floor"] = ci_floor
    return report, failures


def _print_summary(report: dict) -> None:
    provenance = report.get("provenance")
    if provenance:
        print(
            "provenance: backend=%s options=%s rev=%s"
            % (
                ",".join(provenance["backends"]),
                provenance["options_hash"],
                provenance["git_rev"],
            )
        )
    for kernel in report["kernels"]:
        section = report["kernel"][kernel]
        speedups = report["vs_seed"][kernel]
        table2 = report["table2"][kernel]
        print(
            "%-5s int_yield : %8.0f events/sec (%.2fx seed)"
            % (
                kernel,
                section["int_yield"]["events_per_sec"],
                speedups["int_yield_events_per_sec"],
            )
        )
        print(
            "%-5s mixed     : %8.4f s        (%.2fx seed)"
            % (kernel, section["mixed"]["seconds"], speedups["mixed_seconds"])
        )
        print(
            "%-5s table2    : seq %.2f s (%.2fx seed)  jobs=%d %.2f s (%.2fx seed)"
            % (
                kernel,
                table2["sequential_seconds"],
                speedups["table2_sequential_seconds"],
                table2["jobs"],
                table2["parallel_seconds"],
                speedups["table2_parallel_seconds"],
            )
        )
    for challenger in ("wheel", "compiled"):
        key = "int_yield_events_per_sec_%s_vs_heap" % challenger
        if key in report["ab"]:
            print(
                "ab        : %-8s int_yield %.2fx heap, mixed %.2fx heap"
                % (
                    challenger,
                    report["ab"][key],
                    report["ab"]["mixed_speedup_%s_vs_heap" % challenger],
                )
            )
    parity = ", ".join(
        "%s=%s" % (name, entry["rows_identical"])
        for name, entry in sorted(report["backend_parity"].items())
    )
    print("parity    : %s" % parity)
    counters = report.get("counters")
    if counters:
        print(
            "counters  : %s overhead %+.1f%%, bit_identical=%s, specialized=%s"
            % (
                counters["kernel"],
                100.0 * counters["overhead_fraction"],
                counters["bit_identical"],
                counters["stayed_specialized"],
            )
        )
    dse_sweep = report.get("dse_sweep")
    if dse_sweep:
        print(
            "dse_sweep : %d configs, cold %.1f/s warm %.1f/s (%.0fx), "
            "warm hits %.0f%%, frontier_identical=%s"
            % (
                dse_sweep["configs"],
                dse_sweep["configs_per_sec"]["cold"],
                dse_sweep["configs_per_sec"]["warm"],
                dse_sweep["speedup"],
                100.0 * dse_sweep["cache_stats"]["warm_hit_ratio"],
                dse_sweep["frontier_identical"],
            )
        )
    run_report = report["run_report"]
    print(
        "telemetry : %s  %d cycles, %d events, peak queue depth %d"
        % (
            run_report["case"],
            run_report["simulated_cycles"],
            run_report["events_processed"],
            run_report["peak_queue_depth"],
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Perf-regression harness (kernel + tables, per scheduler backend).",
    )
    parser.add_argument("--rounds", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument("--jobs", type=int, default=4, help="parallel runner workers")
    parser.add_argument(
        "--kernel",
        choices=list(KERNEL_BACKENDS),
        help="time one scheduler backend only (default: all; parity always runs all)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads, no perf gating (CI functional check)",
    )
    parser.add_argument(
        "--enforce-floor",
        action="store_true",
        help="fail on a >tolerance events/sec regression vs baselines.json ci_floor",
    )
    parser.add_argument(
        "--baselines",
        default=DEFAULT_BASELINES,
        help="baselines JSON path (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)

    kernels = (args.kernel,) if args.kernel else KERNEL_BACKENDS
    report, failures = run_harness(
        kernels=kernels,
        smoke=args.smoke,
        jobs=args.jobs,
        rounds=args.rounds,
        enforce_floor=args.enforce_floor,
        baselines_path=args.baselines,
    )
    _print_summary(report)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    return 0
