"""Perf-regression benchmarking for the simulation kernel and runner.

``python -m repro bench`` (or the ``benchmarks/perf_harness.py`` shim)
runs :func:`repro.bench.harness.main`: kernel/table timings per scheduler
backend, backend A/B ratios, table-row parity between backends, and gates
against the checked-in ``benchmarks/baselines.json``.
"""

from .harness import load_baselines, main, run_harness

__all__ = ["load_baselines", "main", "run_harness"]
