"""BusSyn reproduction: automated bus generation for multiprocessor SoC design.

Reimplementation of Ryu & Mooney, *Automated Bus Generation for
Multiprocessor SoC Design* (DATE 2003 / GIT-CC-02-64): the BusSyn bus
synthesis tool, the five generated bus architectures (BFBA, GBAVI,
GBAVIII, Hybrid, SplitBA) plus the two hand-design baselines (GGBA, CCBA),
a cycle-level simulator standing in for the paper's Seamless CVE
environment, and the three evaluation applications (OFDM transmitter,
MPEG2 decoder, database example).

Quickstart::

    from repro import BusSyn, presets, build_machine
    from repro.apps.ofdm import run_ofdm

    spec = presets.preset("GBAVIII", pe_count=4)   # Figure 18 user options
    generated = BusSyn().generate(spec)            # synthesizable Verilog
    print(generated.report.row())

    machine = build_machine(spec)                  # simulation twin
    result = run_ofdm(machine, "FPA")
    print(result.throughput_mbps, "Mbps")
"""

from .core.busyn import BusSyn, GeneratedBusSystem, GenerationReport
from .options import presets
from .options.schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
)
from .sim.fabric import Machine, build_machine
from .sim.kernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "BusSyn",
    "GeneratedBusSystem",
    "GenerationReport",
    "presets",
    "BANSpec",
    "BusSpec",
    "BusSubsystemSpec",
    "BusSystemSpec",
    "MemorySpec",
    "OptionError",
    "Machine",
    "build_machine",
    "Simulator",
    "__version__",
]
