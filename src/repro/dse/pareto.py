"""Pareto frontier and ranked reports over sweep results.

Every result row is a flat dict carrying at least the two headline axes
of the paper's trade-off (Table V vs Tables II-IV): ``throughput`` (up)
and ``gate_count`` (down).  Sweeps that enable the chaos / verify scoring
stages add ``resilience`` (up -- recovered fraction of injected faults)
and ``verify_ok`` axes; :func:`axes_for` picks the axis set matching what
the rows actually carry.

The frontier is the classic non-dominated set: a row survives unless some
other row is at least as good on *every* axis and strictly better on at
least one.  Output order is deterministic -- primary axis descending,
then gate count ascending, then the canonical options JSON -- so a
frontier is comparable across runs, ``--jobs`` values, and backends.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..obs.ledger import canonical_json

__all__ = [
    "DEFAULT_AXES",
    "axes_for",
    "dominates",
    "pareto_frontier",
    "rank_rows",
    "format_frontier_lines",
    "format_markdown_report",
]

#: (row key, direction) pairs; direction is "max" or "min".
DEFAULT_AXES: Tuple[Tuple[str, str], ...] = (
    ("throughput", "max"),
    ("gate_count", "min"),
)


def axes_for(rows: Sequence[Dict[str, Any]]) -> Tuple[Tuple[str, str], ...]:
    """The axis set for these rows: the default pair plus any scoring axes
    every row carries a value for."""
    axes = list(DEFAULT_AXES)
    if rows and all(row.get("resilience") is not None for row in rows):
        axes.append(("resilience", "max"))
    return tuple(axes)


def dominates(
    a: Dict[str, Any], b: Dict[str, Any], axes: Sequence[Tuple[str, str]]
) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and strictly
    better somewhere."""
    strictly_better = False
    for key, direction in axes:
        va, vb = a[key], b[key]
        if direction == "max":
            if va < vb:
                return False
            if va > vb:
                strictly_better = True
        else:
            if va > vb:
                return False
            if va < vb:
                strictly_better = True
    return strictly_better


def _order_key(axes: Sequence[Tuple[str, str]]):
    def key(row: Dict[str, Any]):
        parts = []
        for axis, direction in axes:
            value = row[axis]
            parts.append(-value if direction == "max" else value)
        parts.append(canonical_json(row.get("options", {})))
        return tuple(parts)

    return key


def pareto_frontier(
    rows: Sequence[Dict[str, Any]],
    axes: Sequence[Tuple[str, str]] = DEFAULT_AXES,
) -> List[Dict[str, Any]]:
    """The non-dominated rows, deterministically ordered."""
    survivors = [
        row
        for row in rows
        if not any(other is not row and dominates(other, row, axes) for other in rows)
    ]
    return sorted(survivors, key=_order_key(axes))


def rank_rows(
    rows: Sequence[Dict[str, Any]],
    axes: Sequence[Tuple[str, str]] = DEFAULT_AXES,
) -> List[Dict[str, Any]]:
    """All rows ranked: frontier members first, then by the axis order.

    Each returned row is the input row plus ``rank`` (1-based) and
    ``pareto`` (frontier membership) -- the shape of the ranked report.
    """
    frontier_keys = {id(row) for row in pareto_frontier(rows, axes)}
    ordered = sorted(
        rows,
        key=lambda row: (0 if id(row) in frontier_keys else 1,)
        + _order_key(axes)(row),
    )
    ranked = []
    for position, row in enumerate(ordered, start=1):
        entry = dict(row)
        entry["rank"] = position
        entry["pareto"] = id(row) in frontier_keys
        ranked.append(entry)
    return ranked


def format_frontier_lines(frontier: Sequence[Dict[str, Any]]) -> List[str]:
    """The frontier in the example's printed shape (bit-stable)."""
    lines = ["Pareto-efficient configurations (throughput vs bus gates):"]
    for row in frontier:
        options = row.get("options", {})
        lines.append(
            "  %-8s %-5s  %.4f Mbps at %d gates"
            % (
                options.get("bus", "?"),
                options.get("style") or "-",
                row["throughput"],
                row["gate_count"],
            )
        )
    return lines


def format_markdown_report(summary: Dict[str, Any], top: int = 20) -> str:
    """A self-contained markdown report for one sweep summary."""
    spec = summary.get("spec", {})
    lines = [
        "# DSE sweep report: %s" % spec.get("name", "sweep"),
        "",
        "- configs swept: %d (expanded %d, deduplicated %d, skipped %d)"
        % (
            summary.get("configs", 0),
            summary.get("expanded", 0),
            summary.get("duplicates", 0),
            sum((summary.get("skipped") or {}).values()),
        ),
        "- kernel backend: `%s`" % summary.get("kernel", "?"),
        "- errors: %d" % summary.get("errors", 0),
        "",
        "## Pareto frontier",
        "",
        "| rank | bus | style | PEs | width | policy | throughput | gates |",
        "|-----:|-----|-------|----:|------:|--------|-----------:|------:|",
    ]
    ranked = summary.get("ranked") or []
    for row in ranked[:top]:
        options = row.get("options", {})
        lines.append(
            "| %d%s | %s | %s | %d | %d | %s | %.4f | %d |"
            % (
                row.get("rank", 0),
                " *" if row.get("pareto") else "",
                options.get("bus", "?"),
                options.get("style") or "-",
                options.get("pes", 0),
                options.get("data_width", 0),
                options.get("arbiter_policy", "?"),
                row.get("throughput", 0.0),
                row.get("gate_count", 0),
            )
        )
    lines.append("")
    lines.append("`*` marks Pareto-frontier members.")
    lines.append("")
    return "\n".join(lines)
