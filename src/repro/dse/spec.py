"""Declarative sweep specifications for design-space exploration.

A sweep spec is a small JSON document (or dict) with two ways of naming
configurations:

* ``axes`` -- a cartesian product over sweep dimensions (bus type, PE
  count, subsystem count, bus widths, Bi-FIFO depth, arbiter policy,
  application / programming style, workload size);
* ``cases`` -- an explicit list of per-config overrides (the shape of the
  original nine-case example).

Expansion normalizes every combination into a :class:`DseConfig` with a
*canonical options dict*: dimensions that do not apply to a combination
(a Bi-FIFO depth on a bus without FIFOs, a programming style for a
non-OFDM app) are normalized to ``None`` before hashing, so equivalent
combinations collapse to one queue entry.  Illegal combinations (FPA on
an architecture without a shared memory, PPA away from four PEs, SplitBA
below two PEs) are *skipped* with a counted reason rather than raised --
a sweep over thousands of products is expected to contain holes.

The config's identity is ``DseConfig.key()``: the SHA-256 of the
canonical-JSON options (:func:`repro.obs.ledger.content_hash` -- the same
discipline the run ledger uses), which keys the artifact cache, the shard
assignment, and the dedup.  The scheduler backend is deliberately *not*
part of the identity: heap/wheel/compiled runs are bit-identical by the
parity suite, so their artifacts are interchangeable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..obs.ledger import canonical_json, content_hash
from ..options import presets
from ..options.schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
)

__all__ = [
    "AXIS_NAMES",
    "DEFAULTS",
    "DEFAULT_STYLE",
    "FPA_ARCHS",
    "FIFO_ARCHS",
    "DseConfig",
    "SweepSpec",
    "normalize_options",
    "build_config_spec",
    "smoke_spec",
    "bench_spec",
    "example_spec",
]

#: Recognized sweep dimensions, in canonical (sorted) order.
AXIS_NAMES = (
    "app",
    "arbiter_policy",
    "bus",
    "data_width",
    "fifo_depth",
    "frames",
    "packets",
    "pes",
    "style",
    "subsystems",
)

#: Single-value defaults used for any dimension a spec leaves out.
DEFAULTS: Dict[str, Any] = {
    "app": "ofdm",
    "arbiter_policy": "fcfs",
    "bus": "GBAVIII",
    "data_width": 64,
    "fifo_depth": 1024,
    "frames": 4,
    "packets": 4,
    "pes": 4,
    "style": "auto",
    "subsystems": None,
}

#: Default programming style per architecture (same mapping as Table II
#: and the chaos harness): FPA where a shared memory exists, else PPA.
DEFAULT_STYLE = {
    "BFBA": "PPA",
    "GBAVI": "PPA",
    "GBAVII": "FPA",
    "GBAVIII": "FPA",
    "HYBRID": "FPA",
    "SPLITBA": "FPA",
    "GGBA": "FPA",
    "CCBA": "FPA",
}

#: Architectures carrying a shared (global) memory -- the FPA prerequisite.
FPA_ARCHS = frozenset(["GBAVII", "GBAVIII", "HYBRID", "SPLITBA", "GGBA", "CCBA"])

#: Architectures whose preset builders take a Bi-FIFO depth.
FIFO_ARCHS = frozenset(["BFBA", "HYBRID"])

#: Architectures supporting a subsystem-count axis (SplitBA generalizes to
#: N bridged subsystems; every other preset is single-subsystem).
MULTI_SUBSYSTEM_ARCHS = frozenset(["SPLITBA"])


@dataclass(frozen=True)
class DseConfig:
    """One fully-normalized point of the design space."""

    bus: str
    pes: int = 4
    subsystems: Optional[int] = None
    app: str = "ofdm"
    style: Optional[str] = "FPA"
    packets: Optional[int] = 4
    frames: Optional[int] = None
    data_width: int = 64
    fifo_depth: Optional[int] = None
    arbiter_policy: str = "fcfs"
    score_resilience: bool = False
    score_verify: bool = False
    seed: Optional[int] = None

    def options(self) -> Dict[str, Any]:
        """The canonical (sorted-key, JSON-scalar) option surface."""
        return {
            "app": self.app,
            "arbiter_policy": self.arbiter_policy,
            "bus": self.bus,
            "data_width": self.data_width,
            "fifo_depth": self.fifo_depth,
            "frames": self.frames,
            "packets": self.packets,
            "pes": self.pes,
            "score_resilience": self.score_resilience,
            "score_verify": self.score_verify,
            "seed": self.seed,
            "style": self.style,
            "subsystems": self.subsystems,
        }

    def key(self) -> str:
        """Content hash identifying this config (cache + shard + dedup key)."""
        return content_hash(self.options())

    def sort_key(self) -> str:
        """Deterministic queue order, independent of axis listing order."""
        return canonical_json(self.options())

    @classmethod
    def from_options(cls, options: Dict[str, Any]) -> "DseConfig":
        return cls(**{k: options[k] for k in options if k in cls.__dataclass_fields__})

    def label(self) -> str:
        parts = ["%s/%d" % (self.bus, self.pes)]
        if self.subsystems is not None:
            parts.append("x%d" % self.subsystems)
        parts.append(self.app if self.style is None else "%s-%s" % (self.app, self.style))
        return " ".join(parts)


def _normalize(raw: Dict[str, Any], score: Dict[str, Any], seed: int):
    """Turn one raw combination into a canonical config or a skip reason.

    Returns ``(config, None)`` or ``(None, reason)``.
    """
    bus = str(raw["bus"]).upper()
    if bus not in presets.PRESETS:
        return None, "unknown-bus"
    app = str(raw["app"]).lower()
    if app not in ("ofdm", "mpeg2", "database"):
        return None, "unknown-app"
    pes = int(raw["pes"])
    if pes < 1:
        return None, "pes-out-of-range"

    style: Optional[str] = None
    packets: Optional[int] = None
    frames: Optional[int] = None
    if app == "ofdm":
        style = str(raw["style"]).upper()
        if style == "AUTO":
            style = DEFAULT_STYLE[bus]
        if style not in ("PPA", "FPA"):
            return None, "unknown-style"
        if style == "FPA" and bus not in FPA_ARCHS:
            return None, "fpa-needs-shared-memory"
        if style == "PPA" and pes != 4:
            return None, "ppa-needs-4-pes"
        packets = int(raw["packets"])
    elif app == "mpeg2":
        frames = int(raw["frames"])

    subsystems: Optional[int] = None
    if bus in MULTI_SUBSYSTEM_ARCHS:
        subsystems = raw["subsystems"]
        subsystems = 2 if subsystems is None else int(subsystems)
        if not 1 <= subsystems <= pes:
            return None, "subsystems-exceed-pes"
        if pes < 2:
            return None, "splitba-needs-2-pes"

    fifo_depth = int(raw["fifo_depth"]) if bus in FIFO_ARCHS else None
    if fifo_depth is not None and fifo_depth <= 0:
        return None, "fifo-depth-not-positive"

    resilience = bool(score.get("resilience", False))
    config = DseConfig(
        bus=bus,
        pes=pes,
        subsystems=subsystems,
        app=app,
        style=style,
        packets=packets,
        frames=frames,
        data_width=int(raw["data_width"]),
        fifo_depth=fifo_depth,
        arbiter_policy=str(raw["arbiter_policy"]),
        score_resilience=resilience,
        score_verify=bool(score.get("verify", False)),
        # The seed only matters when a seeded fault plan is scored; keep it
        # out of the identity otherwise so unrelated sweeps share artifacts.
        seed=int(seed) if resilience else None,
    )
    try:
        build_config_spec(config)
    except OptionError:
        return None, "option-error"
    return config, None


def normalize_options(
    raw: Dict[str, Any],
    score: Optional[Dict[str, Any]] = None,
    seed: int = 0,
):
    """Normalize a (possibly partial) raw option dict into a legal config.

    The public face of :func:`_normalize` -- missing dimensions are filled
    from :data:`DEFAULTS` first, so callers (the architecture fuzzer's
    sampler and shrinker, ``repro.fuzz``) can pass just the dimensions
    they care about.  Returns ``(config, None)`` for a legal combination
    and ``(None, skip_reason)`` otherwise; a legal return is guaranteed
    buildable (``build_config_spec`` validated it).
    """
    merged = dict(DEFAULTS)
    merged.update(raw)
    return _normalize(merged, score or {}, seed)


@dataclass
class SweepSpec:
    """A declarative sweep: axes product plus explicit cases."""

    name: str = "sweep"
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    cases: List[Dict[str, Any]] = field(default_factory=list)
    score: Dict[str, bool] = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        known = {"name", "axes", "cases", "score", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise OptionError(
                "sweep spec: unknown top-level key(s) %s (expected %s)"
                % (", ".join(unknown), ", ".join(sorted(known)))
            )
        axes = dict(data.get("axes") or {})
        bad_axes = sorted(set(axes) - set(AXIS_NAMES))
        if bad_axes:
            raise OptionError(
                "sweep spec: unknown axis name(s) %s (expected %s)"
                % (", ".join(bad_axes), ", ".join(AXIS_NAMES))
            )
        for axis, values in axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise OptionError(
                    "sweep spec: axis %r must be a non-empty list" % axis
                )
        cases = list(data.get("cases") or [])
        for case in cases:
            bad = sorted(set(case) - set(AXIS_NAMES))
            if bad:
                raise OptionError(
                    "sweep spec: case %r has unknown key(s) %s"
                    % (case, ", ".join(bad))
                )
        return cls(
            name=str(data.get("name", "sweep")),
            axes=axes,
            cases=cases,
            score=dict(data.get("score") or {}),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path) as handle:
            try:
                data = json.load(handle)
            except ValueError as error:
                raise OptionError("sweep spec %s: not valid JSON (%s)" % (path, error))
        if not isinstance(data, dict):
            raise OptionError("sweep spec %s: expected a JSON object" % path)
        return cls.from_dict(data)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "axes": self.axes,
            "cases": self.cases,
            "score": self.score,
            "seed": self.seed,
        }

    def _raw_combinations(self) -> Iterable[Dict[str, Any]]:
        for case in self.cases:
            raw = dict(DEFAULTS)
            raw.update(case)
            yield raw
        if self.axes:
            names = [axis for axis in AXIS_NAMES if axis in self.axes]
            values = [list(self.axes[axis]) for axis in names]
            counters = [0] * len(names)
            while True:
                raw = dict(DEFAULTS)
                for axis, index in zip(names, counters):
                    raw[axis] = self.axes[axis][index]
                yield raw
                position = len(names) - 1
                while position >= 0:
                    counters[position] += 1
                    if counters[position] < len(values[position]):
                        break
                    counters[position] = 0
                    position -= 1
                if position < 0:
                    break

    def expand(self) -> Tuple[List[DseConfig], Dict[str, int], int]:
        """The deduplicated, deterministically ordered work queue.

        Returns ``(configs, skipped, duplicates)`` where ``skipped`` counts
        combinations dropped per reason and ``duplicates`` counts raw
        combinations that normalized onto an already-queued config.
        """
        seen: Dict[str, DseConfig] = {}
        skipped: Dict[str, int] = {}
        duplicates = 0
        for raw in self._raw_combinations():
            config, reason = _normalize(raw, self.score, self.seed)
            if config is None:
                skipped[reason] = skipped.get(reason, 0) + 1
                continue
            key = config.key()
            if key in seen:
                duplicates += 1
                continue
            seen[key] = config
        configs = sorted(seen.values(), key=DseConfig.sort_key)
        return configs, skipped, duplicates


def _splitba_n(pe_count: int, subsystems: int, data_width: int) -> BusSystemSpec:
    """SplitBA generalized to ``subsystems`` bridged halves (chained).

    The preset splits into exactly two subsystems (Figure 7); the DSE
    subsystem-count axis extends the same construction to N chunks, each
    with its own shared-memory BAN and arbiter, bridged in a chain.
    """
    letters = presets.ban_letters(pe_count)
    chunks: List[List[str]] = [[] for _ in range(subsystems)]
    for index, letter in enumerate(letters):
        chunks[index * subsystems // pe_count].append(letter)
    subs = []
    for index, chunk in enumerate(chunks, start=1):
        bans = [
            BANSpec(name=letter, cpu_type="MPC755", memories=[]) for letter in chunk
        ]
        bans.append(
            BANSpec(
                name="G%d" % index,
                cpu_type="NONE",
                memories=[MemorySpec("SRAM", 20, data_width, name="GLOBAL_SRAM_G%d" % index)],
                is_global_resource=True,
            )
        )
        subs.append(
            BusSubsystemSpec(name="SUB%d" % index, bans=bans, buses=[BusSpec("SPLITBA")])
        )
    return BusSystemSpec(name="SPLITBA", subsystems=subs)


def build_config_spec(config: DseConfig) -> BusSystemSpec:
    """The validated :class:`BusSystemSpec` for one config.

    Builds the preset (or the generalized N-subsystem SplitBA), then
    applies the width / arbiter-policy axes onto every bus spec -- the
    policy is written into ``BusSpec.arbiter_policy`` so it is part of
    the generated system, not just a simulation override.
    """
    if config.bus == "SPLITBA" and config.subsystems not in (None, 2):
        spec = _splitba_n(config.pes, config.subsystems, config.data_width)
    else:
        kwargs: Dict[str, Any] = {}
        if config.fifo_depth is not None and config.bus in FIFO_ARCHS:
            kwargs["fifo_depth"] = config.fifo_depth
        spec = presets.preset(config.bus, config.pes, **kwargs)
    for subsystem in spec.subsystems:
        for bus in subsystem.buses:
            bus.data_width = config.data_width
            bus.arbiter_policy = config.arbiter_policy
        for ban in subsystem.bans:
            for memory in ban.memories:
                memory.data_width = config.data_width
    spec.validate()
    return spec


def smoke_spec() -> SweepSpec:
    """The bounded built-in sweep behind ``repro dse --smoke`` (CI)."""
    return SweepSpec.from_dict(
        {
            "name": "smoke",
            "axes": {
                "bus": ["GBAVIII", "BFBA", "SPLITBA", "GGBA"],
                "pes": [2, 4],
                "style": ["PPA", "FPA"],
                "packets": [1],
            },
        }
    )


def bench_spec(smoke: bool = False) -> SweepSpec:
    """The ``repro bench`` ``dse_sweep`` workload (cold vs warm timing)."""
    if smoke:
        return smoke_spec()
    # 432 raw combinations, 234 legal configs after the PPA/FPA holes --
    # production scale for the cold-vs-warm timing (and the >=200-config
    # acceptance sweep in docs/dse.md).
    return SweepSpec.from_dict(
        {
            "name": "bench",
            "axes": {
                "bus": ["GBAVIII", "BFBA", "SPLITBA", "HYBRID", "GGBA", "CCBA"],
                "pes": [2, 4, 6, 8],
                "style": ["PPA", "FPA"],
                "data_width": [32, 64, 128],
                "arbiter_policy": ["fcfs", "round_robin", "priority"],
                "packets": [1],
            },
        }
    )


def example_spec() -> SweepSpec:
    """The original nine-case example as a tiny sweep spec."""
    return SweepSpec.from_dict(
        {
            "name": "example",
            "cases": [
                {"bus": "BFBA", "style": "PPA"},
                {"bus": "GBAVI", "style": "PPA"},
                {"bus": "GBAVIII", "style": "PPA"},
                {"bus": "GBAVIII", "style": "FPA"},
                {"bus": "HYBRID", "style": "PPA"},
                {"bus": "HYBRID", "style": "FPA"},
                {"bus": "SPLITBA", "style": "FPA"},
                {"bus": "GGBA", "style": "PPA"},
                {"bus": "GGBA", "style": "FPA"},
            ],
        }
    )
