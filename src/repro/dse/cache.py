"""On-disk content-addressed artifact cache (``.repro/dse/``).

One store shared by every stage of the DSE pipeline and by every worker
process touching it:

* ``result`` artifacts -- one JSON document per swept config (generation
  gate counts + simulation outcome), keyed by the config's canonical
  options hash;
* ``busyn`` artifacts -- pickled :class:`~repro.core.busyn.GeneratedBusSystem`
  objects keyed by the spec's content hash (the shared promotion of the
  per-instance ``BusSyn`` memo -- see ``BusSyn(store=...)``).

Layout: ``<root>/objects/<kind>/<key[:2]>/<key>.<ext>`` -- the two-char
fan-out keeps directories small at hundreds of thousands of artifacts.
Writes are atomic (unique temp file + ``os.replace``) so overlapping
sweeps and pool workers never observe a torn artifact; a corrupt or
half-typed file reads as a miss, never an error.  The cache keeps local
hit/miss/put counters so sweeps can report their cache economics.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any, Dict, Optional

__all__ = ["DEFAULT_CACHE_DIR", "ArtifactCache"]

#: Default store location, next to the run ledger under ``.repro/``.
DEFAULT_CACHE_DIR = os.path.join(".repro", "dse")

#: Bump when an artifact schema changes; stale-versioned artifacts read
#: as misses so a layout change can never resurrect incompatible payloads.
ARTIFACT_VERSION = 1


class ArtifactCache:
    """Content-addressed get/put of JSON and pickled artifacts."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._tmp_serial = 0

    # -- paths -----------------------------------------------------------
    def path(self, kind: str, key: str, ext: str) -> str:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError("artifact key must be a hex content hash, got %r" % key)
        return os.path.join(self.root, "objects", kind, key[:2], key + ext)

    def _write_atomic(self, path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        self._tmp_serial += 1
        tmp = "%s.%d.%d.tmp" % (path, os.getpid(), self._tmp_serial)
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        self.puts += 1

    # -- JSON artifacts --------------------------------------------------
    def get_json(self, kind: str, key: str) -> Optional[Any]:
        """The stored payload, or None on miss / corruption / stale version."""
        try:
            with open(self.path(kind, key, ".json")) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(envelope, dict) or envelope.get("version") != ARTIFACT_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return envelope.get("payload")

    def put_json(self, kind: str, key: str, payload: Any) -> str:
        path = self.path(kind, key, ".json")
        envelope = {"version": ARTIFACT_VERSION, "key": key, "payload": payload}
        data = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        self._write_atomic(path, data.encode("utf-8") + b"\n")
        return path

    # -- pickled artifacts (the BusSyn store protocol) -------------------
    def get_object(self, kind: str, key: str) -> Optional[Any]:
        try:
            with open(self.path(kind, key, ".pkl"), "rb") as handle:
                envelope = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.misses += 1
            return None
        if not isinstance(envelope, dict) or envelope.get("version") != ARTIFACT_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return envelope.get("payload")

    def put_object(self, kind: str, key: str, payload: Any) -> str:
        path = self.path(kind, key, ".pkl")
        envelope = {"version": ARTIFACT_VERSION, "key": key, "payload": payload}
        self._write_atomic(path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
        return path

    # -- bookkeeping -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "root": self.root,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_ratio": (self.hits / lookups) if lookups else 0.0,
        }

    def artifact_count(self) -> int:
        """Artifacts currently on disk (walks the object tree)."""
        objects = os.path.join(self.root, "objects")
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(objects):
            count += sum(1 for name in filenames if not name.endswith(".tmp"))
        return count
