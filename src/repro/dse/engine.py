"""Sharded, cache-first execution of a DSE sweep (``repro dse``).

The queue produced by :meth:`~repro.dse.spec.SweepSpec.expand` is split
into shards by config content hash (``int(key[:8], 16) % shards`` --
deterministic, independent of queue order) and the shards fan out over
:func:`repro.experiments.runner.run_cases`, the same process pool the
experiment tables use.  Each shard worker opens the shared
:class:`~repro.dse.cache.ArtifactCache` and, per config:

1. looks up the ``result`` artifact by config hash -- a hit skips both
   generation and simulation entirely (a warm re-run of a sweep, or the
   overlap of two sweeps, is mostly this path);
2. on a miss, generates the bus system through a :class:`BusSyn` whose
   memo is backed by the same store (so even a *cold* config reuses any
   previously generated identical spec -- e.g. the PPA and FPA styles of
   one architecture share one generation), simulates the configured
   workload, optionally scores resilience (seeded chaos plan) and
   protocol verification (monitors), and writes the result artifact.

Everything nondeterministic in a result row lives under ledger-scrubbed
keys (``seconds``, ``generation_time_ms``, ``cached``), so cold and warm
sweeps -- and sweeps at different ``--jobs`` -- produce bit-identical
hashed summaries, frontiers and ledger record hashes.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.busyn import BusSyn
from ..experiments.runner import run_cases
from ..obs.ledger import content_hash, scrub_timings
from .cache import DEFAULT_CACHE_DIR, ArtifactCache
from .pareto import axes_for, pareto_frontier, rank_rows
from .spec import DseConfig, SweepSpec, build_config_spec

__all__ = [
    "DEFAULT_DSE_KERNEL",
    "shard_of",
    "simulate_config",
    "run_dse_shard",
    "run_sweep",
    "busyn_store_probe",
    "format_sweep_lines",
]

#: The sweep hot path defaults to the gen-3 compiled backend -- thousands
#: of short simulations are exactly its sweet spot (docs/performance.md).
DEFAULT_DSE_KERNEL = "compiled"


def resolve_kernel(kernel: Optional[str]) -> str:
    return kernel or os.environ.get("REPRO_SIM_KERNEL") or DEFAULT_DSE_KERNEL


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard for a config hash (independent of queue order)."""
    return int(key[:8], 16) % shards


def simulate_config(config: DseConfig, machine) -> Dict[str, Any]:
    """Run the configured workload on ``machine``; returns the metric block.

    Shared by the DSE sweep rows and the fuzzer's oracle components
    (``repro.fuzz.oracle``) so both harnesses drive the identical
    workload for a given config.
    """
    if config.app == "ofdm":
        from ..apps.ofdm import OfdmParameters, run_ofdm

        result = run_ofdm(machine, config.style, OfdmParameters(packets=config.packets))
        return {
            "app": "ofdm",
            "name": "throughput_mbps",
            "value": result.throughput_mbps,
            "cycles": result.cycles,
        }
    if config.app == "mpeg2":
        from ..apps.mpeg2.codec import synthetic_video
        from ..apps.mpeg2.parallel import run_mpeg2

        result = run_mpeg2(machine, synthetic_video(config.frames))
        return {
            "app": "mpeg2",
            "name": "throughput_mbps",
            "value": result.throughput_mbps,
            "cycles": machine.sim.now,
        }
    if config.app == "database":
        from ..apps.database import run_database

        result = run_database(machine)
        tasks_per_second = (
            result.tasks_completed / (result.execution_time_ns / 1e9)
            if result.execution_time_ns
            else 0.0
        )
        return {
            "app": "database",
            "name": "tasks_per_second",
            "value": tasks_per_second,
            "cycles": machine.sim.now,
        }
    raise ValueError("unknown app %r" % config.app)


def _score_resilience(config: DseConfig, spec, kernel: str) -> Dict[str, Any]:
    """Chaos scoring: seeded smoke plan, recovered fraction as the score."""
    from ..faults.injector import RecoveryPolicy, install_faults
    from ..faults.plan import SCENARIOS, compile_plan
    from ..sim.fabric import build_machine

    machine = build_machine(spec, kernel=kernel)
    # None-check, not truthiness: seed 0 is a real, reproducible seed and
    # must never be conflated with "unseeded" (docs/fuzzing.md).
    plan = compile_plan(machine, SCENARIOS["smoke"], 0 if config.seed is None else config.seed)
    injector = install_faults(machine, plan, RecoveryPolicy())
    simulate_config(config, machine)
    report = injector.resilience_report()
    injected = report.injected
    return {
        "injected": injected,
        "recovered": report.recovered,
        "score": (report.recovered / injected) if injected else 1.0,
        "invariant_failures": report.check(),
    }


def _score_verify(config: DseConfig, spec, kernel: str) -> Dict[str, Any]:
    """Verification scoring: protocol monitors armed, findings counted."""
    from ..sim.fabric import build_machine

    machine = build_machine(spec, kernel=kernel)
    monitor = machine.attach_monitors(fail_fast=False)
    simulate_config(config, machine)
    findings = monitor.finalize()
    return {"findings": len(findings), "ok": not findings}


def _run_config(config: DseConfig, tool: BusSyn, kernel: str) -> Dict[str, Any]:
    """Generate + simulate one config; returns its (deterministic) row."""
    from ..sim.fabric import build_machine

    start = time.perf_counter()
    spec = build_config_spec(config)
    generated = tool.generate(spec)
    machine = build_machine(spec, kernel=kernel)
    metric = simulate_config(config, machine)
    row: Dict[str, Any] = {
        "key": config.key(),
        "options": config.options(),
        "label": config.label(),
        "subsystem_count": len(spec.subsystems),
        "gate_count": generated.report.gate_count,
        "throughput": metric["value"],
        "cycles": metric["cycles"],
        "metric": metric,
        "resilience": None,
        "verify": None,
        "error": None,
        # Nondeterministic tail -- every key below is ledger-scrubbed.
        "generation_time_ms": generated.report.generation_time_ms,
        "seconds": 0.0,
        "cached": False,
    }
    if config.score_resilience:
        resilience = _score_resilience(config, build_config_spec(config), kernel)
        row["resilience"] = resilience["score"]
        row["resilience_detail"] = resilience
    if config.score_verify:
        row["verify"] = _score_verify(config, build_config_spec(config), kernel)
    row["seconds"] = time.perf_counter() - start
    return row


def _error_row(config: DseConfig, error: BaseException) -> Dict[str, Any]:
    """A deterministic row for a config whose workload refused to run."""
    return {
        "key": config.key(),
        "options": config.options(),
        "label": config.label(),
        "subsystem_count": None,
        "gate_count": None,
        "throughput": None,
        "cycles": None,
        "metric": None,
        "resilience": None,
        "verify": None,
        "error": "%s: %s" % (type(error).__name__, error),
        "generation_time_ms": 0.0,
        "seconds": 0.0,
        "cached": False,
    }


def run_dse_shard(
    shard: Tuple[int, List[Dict[str, Any]]],
    cache_dir: Optional[str] = None,
    kernel: Optional[str] = None,
    use_cache: bool = True,
) -> Dict[str, Any]:
    """Run one shard of configs (module-level: pool-worker addressable).

    ``shard`` is ``(shard_index, [canonical options dict, ...])``.  The
    result carries the shard's rows plus its cache economics.
    """
    shard_index, option_dicts = shard
    kernel = resolve_kernel(kernel)
    cache = ArtifactCache(cache_dir) if cache_dir else None
    tool = BusSyn(store=cache)
    rows: List[Dict[str, Any]] = []
    hits = 0
    start = time.perf_counter()
    for options in option_dicts:
        config = DseConfig.from_options(options)
        key = config.key()
        if cache is not None and use_cache:
            stored = cache.get_json("result", key)
            if stored is not None:
                stored["cached"] = True
                rows.append(stored)
                hits += 1
                continue
        try:
            row = _run_config(config, tool, kernel)
        except (ValueError, KeyError, RuntimeError) as error:
            row = _error_row(config, error)
        if cache is not None:
            cache.put_json("result", key, row)
        rows.append(row)
    return {
        "shard": shard_index,
        "configs": len(option_dicts),
        "hits": hits,
        "misses": len(option_dicts) - hits,
        "busyn_store_hits": tool.store_hits,
        "seconds": time.perf_counter() - start,
        "rows": rows,
    }


def busyn_store_probe(
    _case: Any, cache_dir: str = "", preset: str = "GBAVIII", pes: int = 4
) -> Dict[str, Any]:
    """Generate one preset through a store-backed BusSyn; returns the hit
    counters.  A module-level worker for the cross-process cache-hit test
    (``tests/test_dse.py``) -- run it twice in different processes and the
    second run must report a store hit instead of a fresh generation."""
    from ..options import presets

    tool = BusSyn(store=ArtifactCache(cache_dir))
    generated = tool.generate(presets.preset(preset, pes))
    return {
        "gate_count": generated.report.gate_count,
        "store_hits": tool.store_hits,
        "generations": tool.generations,
    }


def run_sweep(
    sweep: SweepSpec,
    jobs: int = 1,
    kernel: Optional[str] = None,
    budget: Optional[int] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    progress=None,
) -> Dict[str, Any]:
    """Expand, shard and execute a sweep; returns the full summary.

    The summary's hashed surface (results, frontier, ranked report,
    counts) is bit-identical across ``--jobs`` values, scheduler backends
    and cold/warm cache states; everything wall-clock or cache-dependent
    sits under ledger-scrubbed keys (``shard_stats``, ``cache_stats``,
    ``configs_per_sec``, ``seconds``, per-row ``cached``).
    """
    if isinstance(sweep, dict):
        sweep = SweepSpec.from_dict(sweep)
    kernel = resolve_kernel(kernel)
    start = time.perf_counter()
    configs, skipped, duplicates = sweep.expand()
    expanded = len(configs)
    if budget is not None:
        if budget < 0:
            raise ValueError("budget must be non-negative, got %d" % budget)
        configs = configs[:budget]
    if progress:
        progress(
            "sweep %s: %d config(s) (%d expanded, %d duplicate(s), %d skipped), "
            "kernel=%s, cache=%s"
            % (
                sweep.name,
                len(configs),
                expanded,
                duplicates,
                sum(skipped.values()),
                kernel,
                cache_dir if (cache_dir and use_cache) else "off",
            )
        )
    shards = max(1, min(jobs, len(configs))) if configs else 1
    buckets: List[List[Dict[str, Any]]] = [[] for _ in range(shards)]
    for config in configs:
        buckets[shard_of(config.key(), shards)].append(config.options())
    payloads = [(index, bucket) for index, bucket in enumerate(buckets)]
    shard_results, telemetry = run_cases(
        run_dse_shard,
        payloads,
        jobs=jobs,
        kwargs={
            "cache_dir": cache_dir if use_cache or cache_dir else None,
            "kernel": kernel,
            "use_cache": use_cache,
        },
    )
    rows = [row for shard in shard_results for row in shard["rows"]]
    rows.sort(key=lambda row: row["key"])
    ok_rows = [row for row in rows if row["error"] is None]
    axes = axes_for(ok_rows)
    frontier = pareto_frontier(ok_rows, axes)
    ranked = rank_rows(ok_rows, axes)
    hits = sum(shard["hits"] for shard in shard_results)
    misses = sum(shard["misses"] for shard in shard_results)
    seconds = time.perf_counter() - start
    shard_stats = {
        "jobs": jobs,
        "shards": [
            {
                "shard": shard["shard"],
                "configs": shard["configs"],
                "hits": shard["hits"],
                "misses": shard["misses"],
                "busyn_store_hits": shard["busyn_store_hits"],
                "seconds": shard["seconds"],
                "events_processed": entry.events_processed,
            }
            for shard, entry in zip(shard_results, telemetry)
        ],
    }
    if progress:
        for entry in shard_stats["shards"]:
            progress(
                "  shard %d: %d config(s), %d hit(s), %d miss(es), %.2f s"
                % (
                    entry["shard"],
                    entry["configs"],
                    entry["hits"],
                    entry["misses"],
                    entry["seconds"],
                )
            )
    lookups = hits + misses
    return {
        "spec": sweep.as_dict(),
        "spec_hash": content_hash(sweep.as_dict()),
        "kernel": kernel,
        "budget": budget,
        "configs": len(configs),
        "expanded": expanded,
        "duplicates": duplicates,
        "skipped": skipped,
        "errors": len(rows) - len(ok_rows),
        "axes": [list(axis) for axis in axes],
        "results": rows,
        "frontier": frontier,
        "ranked": ranked,
        # Nondeterministic tail (ledger-scrubbed keys).
        "seconds": seconds,
        "configs_per_sec": (len(configs) / seconds) if seconds > 0 else 0.0,
        "cache_stats": {
            "enabled": bool(cache_dir and use_cache),
            "dir": cache_dir,
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / lookups) if lookups else 0.0,
        },
        "shard_stats": shard_stats,
    }


def sweep_fingerprint(summary: Dict[str, Any]) -> str:
    """Content hash of a summary's deterministic *design* surface.

    Covers everything the sweep claims about the design space -- queue,
    results, frontier, ranking -- and excludes how it was executed: the
    backend label (results are backend-invariant by the parity suite) and
    every ledger-scrubbed wall-clock / cache-state key.  Equal
    fingerprints across cold/warm, ``--jobs`` values, and scheduler
    backends are the determinism contract (docs/dse.md).
    """
    surface = {
        key: summary[key]
        for key in (
            "spec_hash",
            "budget",
            "configs",
            "expanded",
            "duplicates",
            "skipped",
            "errors",
            "axes",
            "results",
            "frontier",
            "ranked",
        )
    }
    return content_hash(scrub_timings(surface))


def format_sweep_lines(summary: Dict[str, Any], top: int = 10) -> List[str]:
    """Human-readable sweep outcome for the CLI."""
    lines = []
    cache_stats = summary["cache_stats"]
    lines.append(
        "%d config(s) in %.2f s (%.1f configs/sec), cache %s: %d hit(s) / %d miss(es)"
        % (
            summary["configs"],
            summary["seconds"],
            summary["configs_per_sec"],
            "on" if cache_stats["enabled"] else "off",
            cache_stats["hits"],
            cache_stats["misses"],
        )
    )
    if summary["errors"]:
        lines.append("%d config(s) errored (kept out of the frontier)" % summary["errors"])
    lines.append("")
    lines.append(
        "%-4s %-8s %-5s %4s %6s %-12s %12s %10s"
        % ("rank", "bus", "style", "PEs", "width", "policy", "throughput", "gates")
    )
    for row in summary["ranked"][:top]:
        options = row["options"]
        lines.append(
            "%-4s %-8s %-5s %4d %6d %-12s %12.4f %10d"
            % (
                "%d%s" % (row["rank"], "*" if row["pareto"] else ""),
                options["bus"],
                options["style"] or "-",
                options["pes"],
                options["data_width"],
                options["arbiter_policy"],
                row["throughput"],
                row["gate_count"],
            )
        )
    lines.append("")
    lines.append(
        "Pareto frontier: %d of %d config(s) (* above)"
        % (len(summary["frontier"]), summary["configs"])
    )
    return lines
