"""Design-space exploration engine (ROADMAP item 1; docs/dse.md).

The paper's headline benefit is *fast design space exploration of bus
architectures*: Table V generates every architecture in milliseconds, and
``examples/design_space_exploration.py`` sweeps nine (bus, style) cases.
This package lifts that loop to production scale:

* :mod:`repro.dse.spec` -- a declarative sweep specification (bus type x
  subsystem count x widths x arbiter policy x PE count x workload /
  programming style) expanded into a deduplicated queue of
  :class:`~repro.dse.spec.DseConfig` entries, each keyed by the content
  hash of its canonical options (the PR 7 ledger hashing discipline);
* :mod:`repro.dse.cache` -- an on-disk content-addressed artifact cache
  (``.repro/dse/``) holding generated BusSyn systems and per-config
  sweep outcomes, shared across worker processes and across sweeps;
* :mod:`repro.dse.engine` -- sharded execution of the queue on the
  parallel experiment runner (deterministic shard assignment by config
  hash, ``--jobs`` fan-out, per-shard progress), cache-first so a warm
  re-run never simulates a previously seen config;
* :mod:`repro.dse.pareto` -- Pareto frontier (throughput up, NAND2 gate
  count down, optional resilience / verify axes) and the ranked
  JSON / markdown report.

The CLI face is ``repro dse`` (``--spec/--jobs/--kernel/--budget/
--no-cache/-o``); ``repro bench`` measures cold-vs-warm configs/sec in
its ``dse_sweep`` section and CI gates the cache win.
"""

from .cache import ArtifactCache, DEFAULT_CACHE_DIR
from .engine import run_dse_shard, run_sweep
from .pareto import DEFAULT_AXES, pareto_frontier, rank_rows
from .spec import DseConfig, SweepSpec, build_config_spec, smoke_spec

__all__ = [
    "ArtifactCache",
    "DEFAULT_CACHE_DIR",
    "DseConfig",
    "SweepSpec",
    "build_config_spec",
    "smoke_spec",
    "run_sweep",
    "run_dse_shard",
    "DEFAULT_AXES",
    "pareto_frontier",
    "rank_rows",
]
