"""The Module Library (section V.A).

Holds every ``%module`` template (built-ins from
:mod:`repro.moduledb.components` plus any user-loaded library text) and
generates concrete Verilog modules from them by assigning parameter values
-- Step 1 of BANGen ("look up module name i in the Module Library and
extract or generate the corresponding RTL Verilog code").

Besides the raw ``@NAME@`` substitution of the template format, the library
computes *derived* parameters so templates can express bit ranges: any
``FOO_WIDTH = n`` yields ``FOO_MSB = n-1``; master counts yield index
widths; FIFO depths yield pointer widths; ``BIT_DIFFERENCE`` yields the
zero-padding expression of the paper's MBI_SRAM listing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..hdl.ast import Module
from ..hdl.parser import parse_modules
from .format import ModuleTemplate, TemplateError, parse_library_text

__all__ = ["GeneratedModule", "ModuleLibrary", "default_library", "DEFAULT_PARAMETERS"]

# Per-component default parameter assignments (overridable per generate()).
DEFAULT_PARAMETERS: Dict[str, Dict[str, object]] = {
    "MPC750": {"CPU_A_WIDTH": 32, "CPU_D_WIDTH": 64},
    "MPC755": {"CPU_A_WIDTH": 32, "CPU_D_WIDTH": 64},
    "MPC7410": {"CPU_A_WIDTH": 32, "CPU_D_WIDTH": 64},
    "ARM9TDMI": {"CPU_A_WIDTH": 32, "CPU_D_WIDTH": 64},
    "CBI_MPC750": {"ADDR_WIDTH": 32, "DECODE_LSB": 23, "DATA_WIDTH": 64},
    "CBI_MPC755": {"ADDR_WIDTH": 32, "DECODE_LSB": 23, "DATA_WIDTH": 64},
    "CBI_MPC7410": {"ADDR_WIDTH": 32, "DECODE_LSB": 23, "DATA_WIDTH": 64},
    "CBI_ARM9TDMI": {"ADDR_WIDTH": 32, "DECODE_LSB": 23, "DATA_WIDTH": 64},
    "SRAM_comp": {"MEM_A_WIDTH": 20, "MEM_D_WIDTH": 64},
    "DRAM_comp": {"MEM_A_WIDTH": 22, "MEM_D_WIDTH": 64, "ROW_BITS": 9},
    "MBI_SRAM": {"MEM_A_WIDTH": 20, "MEM_D_WIDTH": 64, "BIT_DIFFERENCE": 0, "DATA_WIDTH": 64},
    "MBI_DRAM": {"MEM_A_WIDTH": 22, "MEM_D_WIDTH": 64, "DATA_WIDTH": 64},
    "BB_GBAVI": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "BB_SPLITBA": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "ARBITER_FCFS": {"N_MASTERS": 4},
    "ARBITER_ROUND_ROBIN": {"N_MASTERS": 4},
    "ARBITER_PRIORITY": {"N_MASTERS": 4},
    "ABI": {"N_MASTERS": 4, "GRANT_CYCLES": 3},
    "GBI_GBAVIII": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "GBI_GBAVI": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "GBI_BFBA": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "GBI_SHARED": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "SB_GBAVI": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "SB_GBAVIII": {"ADDR_WIDTH": 32, "N_MASTERS": 4, "DATA_WIDTH": 64},
    "SB_BFBA": {"ADDR_WIDTH": 32, "DATA_WIDTH": 64},
    "HS_REGS": {"OP_RESET": "1'b0", "RV_RESET": "1'b0", "DATA_WIDTH": 64},
    "HS_REGS_GBAVI": {"OP_RESET": "1'b0", "RV_RESET": "1'b0", "DATA_WIDTH": 64},
    "BIFIFO": {"FIFO_DEPTH": 1024, "DATA_WIDTH": 64},
    "DCT_IP": {"BUF_A_WIDTH": 12, "LATENCY": 64},
    "MPEG2_IP": {"BUF_A_WIDTH": 12, "LATENCY": 128},
    "IPIF": {"BUF_A_WIDTH": 12, "DATA_WIDTH": 64},
}


class GeneratedModule:
    """A concrete module: its Verilog text and parsed structure."""

    def __init__(self, component: str, module: Module, text: str, parameters: Dict[str, object]):
        self.component = component
        self.module = module
        self.text = text
        self.parameters = parameters

    @property
    def name(self) -> str:
        return self.module.name


def _derive_parameters(values: Dict[str, object]) -> Dict[str, object]:
    """Compute the implied parameters templates may reference."""
    out = dict(values)
    if isinstance(out.get("DATA_WIDTH"), int):
        # Data-path lane layout (section V.A): widths >= 64 split into a
        # dh/dl lane pair of DATA_WIDTH/2 each; width 32 is a single dl
        # lane and the dh ports/wires are omitted entirely (%if HAS_DH).
        data_width = out["DATA_WIDTH"]
        has_dh = data_width > 32
        lane_width = data_width // 2 if has_dh else data_width
        out.setdefault("HAS_DH", has_dh)
        out.setdefault("LANE_WIDTH", lane_width)
        out.setdefault("DATA_BUS", "{dh, dl}" if has_dh else "dl")
        out.setdefault("LANE_PAD", lane_width - 2)
        out.setdefault("DATA_PAD", data_width - 2)
        dh_arg = "dh, " if has_dh else ""
        out.setdefault("DH_ARG", dh_arg)
        for prefix in ("G", "SEG", "A", "B"):
            out.setdefault(
                "%s_DH_ARG" % prefix,
                "%s_dh, " % prefix.lower() if has_dh else "",
            )
        for suffix in ("A", "B"):
            out.setdefault(
                "DH_%s_ARG" % suffix,
                "dh_%s, " % suffix.lower() if has_dh else "",
            )
    for key, value in list(out.items()):
        if key.endswith("_WIDTH") and isinstance(value, int):
            out.setdefault(key[: -len("_WIDTH")] + "_MSB", max(0, value - 1))
        elif key == "WIDTH" and isinstance(value, int):
            out.setdefault("WIDTH_MSB", max(0, value - 1))
    if isinstance(out.get("N_MASTERS"), int):
        n = out["N_MASTERS"]
        out.setdefault("N_MASTERS_MSB", max(0, n - 1))
        index_width = max(1, math.ceil(math.log2(max(2, n))))
        out.setdefault("INDEX_WIDTH", index_width)
        out.setdefault("INDEX_MSB", index_width - 1)
    if isinstance(out.get("FIFO_DEPTH"), int):
        depth = out["FIFO_DEPTH"]
        out.setdefault("DEPTH_MSB", max(0, depth - 1))
        pointer_width = max(2, math.ceil(math.log2(max(2, depth))) + 1)
        out.setdefault("PTR_WIDTH", pointer_width)
        out.setdefault("PTR_MSB", pointer_width - 1)
    if "BIT_DIFFERENCE" in out:
        difference = int(out["BIT_DIFFERENCE"])
        out.setdefault("PAD_EXPR", "" if difference == 0 else "%d'b0, " % difference)
    if isinstance(out.get("ROW_BITS"), int) and isinstance(out.get("MEM_A_WIDTH"), int):
        out.setdefault("ROW_LSB", out["ROW_BITS"])
        out.setdefault("ROW_MSB", out["MEM_A_WIDTH"] - out["ROW_BITS"] - 1)
    if isinstance(out.get("DECODE_LSB"), int):
        out.setdefault("DECODE_MSB", out["DECODE_LSB"] + 2)
    return out


class ModuleLibrary:
    """Template registry with lookup, expansion and parsing."""

    def __init__(self, library_text: Optional[str] = None):
        self.templates: Dict[str, ModuleTemplate] = {}
        if library_text:
            self.load_text(library_text)
        self._cache: Dict[Tuple, GeneratedModule] = {}

    # -- registry ---------------------------------------------------------
    def load_text(self, text: str) -> List[str]:
        """Add every %module block in ``text``; returns the new names."""
        new_templates = parse_library_text(text)
        for name, template in new_templates.items():
            if name in self.templates:
                raise TemplateError("library already has a component %r" % name)
            self.templates[name] = template
        return sorted(new_templates)

    def components(self) -> List[str]:
        return sorted(self.templates)

    def __contains__(self, name: str) -> bool:
        return name in self.templates

    def template(self, name: str) -> ModuleTemplate:
        try:
            return self.templates[name]
        except KeyError:
            raise KeyError(
                "Module Library has no component %r (have: %s)"
                % (name, ", ".join(self.components()))
            )

    # -- generation ---------------------------------------------------------
    def generate(
        self,
        component: str,
        module_name: Optional[str] = None,
        **parameters,
    ) -> GeneratedModule:
        """Expand a template into a concrete, parsed Verilog module.

        ``module_name`` names the emitted module (defaults to the component
        name lowercased); remaining keyword arguments assign template
        parameters on top of the component defaults.
        """
        template = self.template(component)
        module_name = module_name or component.lower()
        values: Dict[str, object] = dict(DEFAULT_PARAMETERS.get(component, {}))
        for key, value in parameters.items():
            values[key.upper()] = value
        values = _derive_parameters(values)
        values["MODULE_NAME"] = module_name
        cache_key = (component, module_name, tuple(sorted(values.items())))
        if cache_key in self._cache:
            return self._cache[cache_key]
        text = template.expand(values)
        modules = parse_modules(text)
        if len(modules) != 1:
            raise TemplateError(
                "component %s expanded to %d modules (expected 1)"
                % (component, len(modules))
            )
        generated = GeneratedModule(component, modules[0], text, values)
        self._cache[cache_key] = generated
        return generated


def default_library() -> ModuleLibrary:
    """The built-in Module Library with all components of section V.A."""
    from .components import ALL_LIBRARY_TEXT

    return ModuleLibrary(ALL_LIBRARY_TEXT)
