"""Module Library: parameterized RTL templates (section V.A, Figure 14)."""

from .format import ModuleTemplate, TemplateError, parse_library_text, render_library_text
from .library import (
    DEFAULT_PARAMETERS,
    GeneratedModule,
    ModuleLibrary,
    default_library,
)

__all__ = [
    "ModuleTemplate",
    "TemplateError",
    "parse_library_text",
    "render_library_text",
    "DEFAULT_PARAMETERS",
    "GeneratedModule",
    "ModuleLibrary",
    "default_library",
]
