"""CPU-to-bus interface templates (library component B: ``CBI_<PE>``).

The CBI translates a core's native bus protocol (60x-style TS/WR strobes
for the MPC7xx family, AMBA-ish strobes for the ARM9TDMI) into the
generated local bus: registered address/data, active-low write/read
enables, a chip-select decode of the top address bits, and a
transfer-acknowledge back to the core.  One CBI per PE type -- swapping the
core means swapping this one Module (section IV.B).
"""

_CBI_BODY = """
module @MODULE_NAME@(clk, rst_n, cpu_a, cpu_d, cpu_ts_b, cpu_wr_b, cpu_ta_b,
                     cpu_int_b, addr_local, @DH_ARG@dl, web_local, reb_local, csb, irq_b);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  parameter DECODE_LSB = @DECODE_LSB@;
  input clk;
  input rst_n;
  input [@ADDR_MSB@:0] cpu_a;
  inout [63:0] cpu_d;
  input cpu_ts_b;
  input cpu_wr_b;
  output cpu_ta_b;
  output cpu_int_b;
  output [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  output web_local;
  output reb_local;
  output [7:0] csb;
  input irq_b;

  reg [@ADDR_MSB@:0] addr_q;
  reg web_q;
  reg reb_q;
  reg ta_q;
  reg [2:0] state;

  assign addr_local = addr_q;
  assign web_local = web_q;
  assign reb_local = reb_q;
  assign cpu_ta_b = ta_q;
  assign cpu_int_b = irq_b;
  assign csb = ~(8'b00000001 << addr_q[@DECODE_MSB@:@DECODE_LSB@]);
  assign @DATA_BUS@ = (~web_q) ? cpu_d : @DATA_WIDTH@'bz;
  assign cpu_d = (~reb_q) ? @DATA_BUS@ : 64'bz;

  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      addr_q <= @ADDR_WIDTH@'b0;
      web_q <= 1'b1;
      reb_q <= 1'b1;
      ta_q <= 1'b1;
      state <= 3'b000;
    end else begin
      case (state)
        3'b000: begin
          ta_q <= 1'b1;
          if (!cpu_ts_b) begin
            addr_q <= cpu_a;
            web_q <= cpu_wr_b;
            reb_q <= ~cpu_wr_b;
            state <= 3'b001;
          end
        end
        3'b001: begin
          state <= 3'b010;
        end
        3'b010: begin
          web_q <= 1'b1;
          reb_q <= 1'b1;
          ta_q <= 1'b0;
          state <= 3'b000;
        end
        default: state <= 3'b000;
      endcase
    end
  end
endmodule
"""

LIBRARY_TEXT = "\n\n".join(
    "%%module CBI_%s%s%%endmodule CBI_%s" % (core, _CBI_BODY, core)
    for core in ("MPC750", "MPC755", "MPC7410", "ARM9TDMI")
)
