"""Processing-element templates (library component A).

A PE is an IP core, not a Module (definition G) -- in the paper's flow the
MPC7xx/ARM9TDMI models come from Seamless CVE.  The library still carries a
behavioural *bus-functional stub* per core so that a generated Bus System
elaborates stand-alone: the stub exposes the core's bus pins and idles them
(a co-simulation environment would swap in the vendor model by name).

All four supported cores share the 60x-style pin set the CBI adapts:
address out, bidirectional data, transfer-start/read-write strobes, a
transfer-acknowledge input and an interrupt input.
"""

LIBRARY_TEXT = """
%module MPC755
module @MODULE_NAME@(clk, rst_n, cpu_a, cpu_d, cpu_ts_b, cpu_wr_b, cpu_ta_b, cpu_int_b);
  parameter CPU_A_WIDTH = @CPU_A_WIDTH@;
  parameter CPU_D_WIDTH = @CPU_D_WIDTH@;
  input clk;
  input rst_n;
  output [@CPU_A_MSB@:0] cpu_a;
  inout [@CPU_D_MSB@:0] cpu_d;
  output cpu_ts_b;
  output cpu_wr_b;
  input cpu_ta_b;
  input cpu_int_b;
  reg [@CPU_A_MSB@:0] addr_q;
  reg ts_q;
  reg wr_q;
  assign cpu_a = addr_q;
  assign cpu_ts_b = ts_q;
  assign cpu_wr_b = wr_q;
  assign cpu_d = @CPU_D_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      addr_q <= @CPU_A_WIDTH@'b0;
      ts_q <= 1'b1;
      wr_q <= 1'b1;
    end
  end
endmodule
%endmodule MPC755

%module MPC750
module @MODULE_NAME@(clk, rst_n, cpu_a, cpu_d, cpu_ts_b, cpu_wr_b, cpu_ta_b, cpu_int_b);
  parameter CPU_A_WIDTH = @CPU_A_WIDTH@;
  parameter CPU_D_WIDTH = @CPU_D_WIDTH@;
  input clk;
  input rst_n;
  output [@CPU_A_MSB@:0] cpu_a;
  inout [@CPU_D_MSB@:0] cpu_d;
  output cpu_ts_b;
  output cpu_wr_b;
  input cpu_ta_b;
  input cpu_int_b;
  reg [@CPU_A_MSB@:0] addr_q;
  reg ts_q;
  reg wr_q;
  assign cpu_a = addr_q;
  assign cpu_ts_b = ts_q;
  assign cpu_wr_b = wr_q;
  assign cpu_d = @CPU_D_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      addr_q <= @CPU_A_WIDTH@'b0;
      ts_q <= 1'b1;
      wr_q <= 1'b1;
    end
  end
endmodule
%endmodule MPC750

%module MPC7410
module @MODULE_NAME@(clk, rst_n, cpu_a, cpu_d, cpu_ts_b, cpu_wr_b, cpu_ta_b, cpu_int_b);
  parameter CPU_A_WIDTH = @CPU_A_WIDTH@;
  parameter CPU_D_WIDTH = @CPU_D_WIDTH@;
  input clk;
  input rst_n;
  output [@CPU_A_MSB@:0] cpu_a;
  inout [@CPU_D_MSB@:0] cpu_d;
  output cpu_ts_b;
  output cpu_wr_b;
  input cpu_ta_b;
  input cpu_int_b;
  reg [@CPU_A_MSB@:0] addr_q;
  reg ts_q;
  reg wr_q;
  assign cpu_a = addr_q;
  assign cpu_ts_b = ts_q;
  assign cpu_wr_b = wr_q;
  assign cpu_d = @CPU_D_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      addr_q <= @CPU_A_WIDTH@'b0;
      ts_q <= 1'b1;
      wr_q <= 1'b1;
    end
  end
endmodule
%endmodule MPC7410

%module ARM9TDMI
module @MODULE_NAME@(clk, rst_n, cpu_a, cpu_d, cpu_ts_b, cpu_wr_b, cpu_ta_b, cpu_int_b);
  parameter CPU_A_WIDTH = @CPU_A_WIDTH@;
  parameter CPU_D_WIDTH = @CPU_D_WIDTH@;
  input clk;
  input rst_n;
  output [@CPU_A_MSB@:0] cpu_a;
  inout [@CPU_D_MSB@:0] cpu_d;
  output cpu_ts_b;
  output cpu_wr_b;
  input cpu_ta_b;
  input cpu_int_b;
  reg [@CPU_A_MSB@:0] addr_q;
  reg ts_q;
  reg wr_q;
  assign cpu_a = addr_q;
  assign cpu_ts_b = ts_q;
  assign cpu_wr_b = wr_q;
  assign cpu_d = @CPU_D_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      addr_q <= @CPU_A_WIDTH@'b0;
      ts_q <= 1'b1;
      wr_q <= 1'b1;
    end
  end
endmodule
%endmodule ARM9TDMI
"""
