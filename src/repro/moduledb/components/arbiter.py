"""Arbiter templates (library component F: ``ARBITER_<arb_type>``).

The generated global arbiter (Figure 5) uses a first-come-first-serve
scheme backed by a FIFO of requesters; the library also carries the
"Round Robin" and "Priority" variants the paper names.  All three share
the same interface: active-low request/grant vectors over
``@N_MASTERS@`` masters, one grant at a time, released when the owner
drops its request.
"""

_HEADER = """
module @MODULE_NAME@(clk, rst_n, req_b, gnt_b);
  parameter N_MASTERS = @N_MASTERS@;
  input clk;
  input rst_n;
  input [@N_MASTERS_MSB@:0] req_b;
  output [@N_MASTERS_MSB@:0] gnt_b;
"""

LIBRARY_TEXT = (
    """
%module ARBITER_FCFS
"""
    + _HEADER
    + """
  reg [@N_MASTERS_MSB@:0] gnt_q;
  reg [@N_MASTERS_MSB@:0] queue_q [@N_MASTERS_MSB@:0];
  reg [@INDEX_MSB@:0] head_q;
  reg [@INDEX_MSB@:0] tail_q;
  reg [@N_MASTERS_MSB@:0] enqueued_q;
  integer i;
  assign gnt_b = ~gnt_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      gnt_q <= @N_MASTERS@'b0;
      head_q <= @INDEX_WIDTH@'b0;
      tail_q <= @INDEX_WIDTH@'b0;
      enqueued_q <= @N_MASTERS@'b0;
    end else begin
      for (i = 0; i < N_MASTERS; i = i + 1) begin
        if (!req_b[i] && !enqueued_q[i]) begin
          queue_q[tail_q] <= (@N_MASTERS@'b1 << i);
          tail_q <= tail_q + 1;
          enqueued_q[i] <= 1'b1;
        end
      end
      if (gnt_q == @N_MASTERS@'b0) begin
        if (head_q != tail_q) begin
          gnt_q <= queue_q[head_q];
          head_q <= head_q + 1;
        end
      end else if ((gnt_q & ~req_b) == @N_MASTERS@'b0) begin
        enqueued_q <= enqueued_q & ~gnt_q;
        gnt_q <= @N_MASTERS@'b0;
      end
    end
  end
endmodule
%endmodule ARBITER_FCFS

%module ARBITER_ROUND_ROBIN
"""
    + _HEADER
    + """
  reg [@N_MASTERS_MSB@:0] gnt_q;
  reg [@INDEX_MSB@:0] last_q;
  reg granted;
  integer i;
  integer k;
  assign gnt_b = ~gnt_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      gnt_q <= @N_MASTERS@'b0;
      last_q <= @INDEX_WIDTH@'b0;
    end else begin
      if (gnt_q == @N_MASTERS@'b0) begin
        granted = 1'b0;
        for (i = 1; i <= N_MASTERS; i = i + 1) begin
          k = (last_q + i) % N_MASTERS;
          if (!req_b[k] && !granted) begin
            gnt_q <= (@N_MASTERS@'b1 << k);
            last_q <= k;
            granted = 1'b1;
          end
        end
      end else if ((gnt_q & ~req_b) == @N_MASTERS@'b0) begin
        gnt_q <= @N_MASTERS@'b0;
      end
    end
  end
endmodule
%endmodule ARBITER_ROUND_ROBIN

%module ARBITER_PRIORITY
"""
    + _HEADER
    + """
  reg [@N_MASTERS_MSB@:0] gnt_q;
  reg granted;
  integer i;
  assign gnt_b = ~gnt_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      gnt_q <= @N_MASTERS@'b0;
    end else begin
      if (gnt_q == @N_MASTERS@'b0) begin
        granted = 1'b0;
        for (i = 0; i < N_MASTERS; i = i + 1) begin
          if (!req_b[i] && !granted) begin
            gnt_q <= (@N_MASTERS@'b1 << i);
            granted = 1'b1;
          end
        end
      end else if ((gnt_q & ~req_b) == @N_MASTERS@'b0) begin
        gnt_q <= @N_MASTERS@'b0;
      end
    end
  end
endmodule
%endmodule ARBITER_PRIORITY
"""
)
