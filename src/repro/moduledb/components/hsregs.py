"""Handshake register block template (HS_REGS, Figure 10).

Two one-bit registers, DONE_OP and DONE_RV, each readable and writable
from both the downstream side (the sender BAN, ``*_dn`` pins) and the local
bus (the receiver BAN).  Select encoding per side: bit 1 of a ``cs`` pair
selects the register, bit 0 carries write-enable; data moves on bit 0 of
the shared 64-bit data lines, exactly as wired in Figure 17(b).
"""

LIBRARY_TEXT = """
%module HS_REGS
module @MODULE_NAME@(clk, rst_n,
                     done_op_cs_dn, done_rv_cs_dn, web_dn, reb_dn, data_dn,
                     op_cs_local, rv_cs_local, web_local, reb_local, @DH_ARG@dl,
                     done_op, done_rv);
  parameter OP_RESET = @OP_RESET@;
  parameter RV_RESET = @RV_RESET@;
  input clk;
  input rst_n;
  input [1:0] done_op_cs_dn;
  input [1:0] done_rv_cs_dn;
  input web_dn;
  input reb_dn;
  inout [@DATA_MSB@:0] data_dn;
  input op_cs_local;
  input rv_cs_local;
  input web_local;
  input reb_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  output done_op;
  output done_rv;
  reg op_q;
  reg rv_q;
  assign done_op = op_q;
  assign done_rv = rv_q;
  assign data_dn = (reb_dn == 1'b0 && (done_op_cs_dn[1] || done_rv_cs_dn[1]))
                   ? {@DATA_PAD@'b0, rv_q, op_q} : @DATA_WIDTH@'bz;
  assign dl = (reb_local == 1'b0 && (op_cs_local || rv_cs_local))
              ? {@LANE_PAD@'b0, rv_q, op_q} : @LANE_WIDTH@'bz;
%if HAS_DH
  assign dh = (reb_local == 1'b0 && (op_cs_local || rv_cs_local))
              ? @LANE_WIDTH@'b0 : @LANE_WIDTH@'bz;
%endif
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      op_q <= OP_RESET;
      rv_q <= RV_RESET;
    end else begin
      if (done_op_cs_dn[1] && !web_dn) begin
        op_q <= data_dn[0];
      end else if (op_cs_local && !web_local) begin
        op_q <= dl[0];
      end
      if (done_rv_cs_dn[1] && !web_dn) begin
        rv_q <= data_dn[0];
      end else if (rv_cs_local && !web_local) begin
        rv_q <= dl[0];
      end
    end
  end
endmodule
%endmodule HS_REGS

%module HS_REGS_GBAVI
module @MODULE_NAME@(clk, rst_n,
                     op_cs_a, rv_cs_a, web_a, reb_a, @DH_A_ARG@dl_a,
                     op_cs_b, rv_cs_b, web_b, reb_b, @DH_B_ARG@dl_b,
                     done_op, done_rv);
  parameter OP_RESET = @OP_RESET@;
  parameter RV_RESET = @RV_RESET@;
  input clk;
  input rst_n;
  input op_cs_a;
  input rv_cs_a;
  input web_a;
  input reb_a;
%if HAS_DH
  inout [@LANE_MSB@:0] dh_a;
%endif
  inout [@LANE_MSB@:0] dl_a;
  input op_cs_b;
  input rv_cs_b;
  input web_b;
  input reb_b;
%if HAS_DH
  inout [@LANE_MSB@:0] dh_b;
%endif
  inout [@LANE_MSB@:0] dl_b;
  output done_op;
  output done_rv;
  reg op_q;
  reg rv_q;
  assign done_op = op_q;
  assign done_rv = rv_q;
  assign dl_a = (reb_a == 1'b0 && (op_cs_a || rv_cs_a)) ? {@LANE_PAD@'b0, rv_q, op_q} : @LANE_WIDTH@'bz;
%if HAS_DH
  assign dh_a = (reb_a == 1'b0 && (op_cs_a || rv_cs_a)) ? @LANE_WIDTH@'b0 : @LANE_WIDTH@'bz;
%endif
  assign dl_b = (reb_b == 1'b0 && (op_cs_b || rv_cs_b)) ? {@LANE_PAD@'b0, rv_q, op_q} : @LANE_WIDTH@'bz;
%if HAS_DH
  assign dh_b = (reb_b == 1'b0 && (op_cs_b || rv_cs_b)) ? @LANE_WIDTH@'b0 : @LANE_WIDTH@'bz;
%endif
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      op_q <= OP_RESET;
      rv_q <= RV_RESET;
    end else begin
      if (op_cs_a && !web_a) begin
        op_q <= dl_a[0];
      end else if (op_cs_b && !web_b) begin
        op_q <= dl_b[0];
      end
      if (rv_cs_a && !web_a) begin
        rv_q <= dl_a[0];
      end else if (rv_cs_b && !web_b) begin
        rv_q <= dl_b[0];
      end
    end
  end
endmodule
%endmodule HS_REGS_GBAVI
"""
