"""Memory templates (library component C: ``<memory>_comp``).

"A memory template to be used to generate any size of behavioural memory":
the SRAM template is a single-cycle synchronous array; the DRAM template
adds a row register and a not-ready strobe while a new row opens.  Size
comes from ``@MEM_A_WIDTH@`` (locations) x ``@MEM_D_WIDTH@`` (bits) --
Example 9 generates 8 MB blocks from width 20 x 64.
"""

LIBRARY_TEXT = """
%module SRAM_comp
module @MODULE_NAME@(clk, sram_addr, sram_web, sram_oeb, sram_csb, sram_dq);
  parameter MEM_A_WIDTH = @MEM_A_WIDTH@;
  parameter MEM_D_WIDTH = @MEM_D_WIDTH@;
  input clk;
  input [@MEM_A_MSB@:0] sram_addr;
  input sram_web;
  input sram_oeb;
  input sram_csb;
  inout [@MEM_D_MSB@:0] sram_dq;
  reg [@MEM_D_MSB@:0] mem_array_q;
  reg [@MEM_D_MSB@:0] read_q;
  assign sram_dq = (!sram_csb && !sram_oeb) ? read_q : @MEM_D_WIDTH@'bz;
  always @(posedge clk) begin
    if (!sram_csb && !sram_web) begin
      mem_array_q <= sram_dq;
    end
    if (!sram_csb && !sram_oeb) begin
      read_q <= mem_array_q;
    end
  end
endmodule
%endmodule SRAM_comp

%module DRAM_comp
module @MODULE_NAME@(clk, dram_addr, dram_rasb, dram_casb, dram_web, dram_dq, dram_rdy);
  parameter MEM_A_WIDTH = @MEM_A_WIDTH@;
  parameter MEM_D_WIDTH = @MEM_D_WIDTH@;
  parameter ROW_BITS = @ROW_BITS@;
  input clk;
  input [@MEM_A_MSB@:0] dram_addr;
  input dram_rasb;
  input dram_casb;
  input dram_web;
  inout [@MEM_D_MSB@:0] dram_dq;
  output dram_rdy;
  reg [@ROW_MSB@:0] open_row_q;
  reg row_valid_q;
  reg [@MEM_D_MSB@:0] mem_array_q;
  reg [@MEM_D_MSB@:0] read_q;
  reg rdy_q;
  assign dram_rdy = rdy_q;
  assign dram_dq = (!dram_casb && dram_web) ? read_q : @MEM_D_WIDTH@'bz;
  always @(posedge clk) begin
    if (!dram_rasb) begin
      open_row_q <= dram_addr[@MEM_A_MSB@:@ROW_LSB@];
      row_valid_q <= 1'b1;
      rdy_q <= 1'b0;
    end else if (!dram_casb && row_valid_q) begin
      rdy_q <= 1'b1;
      if (!dram_web) begin
        mem_array_q <= dram_dq;
      end else begin
        read_q <= mem_array_q;
      end
    end else begin
      rdy_q <= 1'b0;
    end
  end
endmodule
%endmodule DRAM_comp
"""
