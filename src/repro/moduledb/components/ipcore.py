"""Hardware-IP core and IP-interface templates (Example 8's BAN FFT).

The paper's Figure 17 attaches a hardware Fast Fourier Transform IP BAN to
BAN B through dedicated wires: address/data for the IP's buffer, read/write
enables, a start strobe and an end acknowledge.  The user options name two
non-CPU PE types -- ``DCT`` and ``MPEG2`` (user option 4.2) -- so the
library carries an IP template for each with that exact port discipline:

* host side writes input samples into the IP's buffer (``addr_ip``/
  ``data_ip``/``web_ip``), pulses ``srt_ip``, waits for ``ack_ip``, then
  reads results back (``reb_ip``);
* ``IPIF`` is the host-BAN module adapting its local bus to those wires
  (the ``addr_b``/``data_b``/``srt_b``/``ack_b`` pins of Figure 17b).
"""

_IP_BODY = """
module @MODULE_NAME@(clk, rst_n, addr_ip, data_ip, web_ip, reb_ip, srt_ip, ack_ip);
  parameter BUF_A_WIDTH = @BUF_A_WIDTH@;
  parameter LATENCY = @LATENCY@;
  input clk;
  input rst_n;
  input [@BUF_A_MSB@:0] addr_ip;
  inout [63:0] data_ip;
  input web_ip;
  input reb_ip;
  input srt_ip;
  output ack_ip;
  reg [63:0] buffer_q;
  reg [63:0] read_q;
  reg [7:0] busy_q;
  reg ack_q;
  assign ack_ip = ack_q;
  assign data_ip = (!reb_ip) ? read_q : 64'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      buffer_q <= 64'b0;
      read_q <= 64'b0;
      busy_q <= 8'b0;
      ack_q <= 1'b0;
    end else begin
      if (!web_ip) begin
        buffer_q <= data_ip;
      end
      if (!reb_ip) begin
        read_q <= buffer_q;
      end
      if (srt_ip) begin
        busy_q <= LATENCY;
        ack_q <= 1'b0;
      end else if (busy_q != 8'b0) begin
        busy_q <= busy_q - 1;
        if (busy_q == 8'b1) begin
          ack_q <= 1'b1;
        end
      end
    end
  end
endmodule
"""

LIBRARY_TEXT = (
    "%module DCT_IP" + _IP_BODY + "%endmodule DCT_IP\n\n"
    "%module MPEG2_IP" + _IP_BODY + "%endmodule MPEG2_IP\n\n"
    + """
%module IPIF
module @MODULE_NAME@(clk, rst_n, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local,
                     addr_b, data_b, web_b, reb_b, srt_b, ack_b);
  parameter BUF_A_WIDTH = @BUF_A_WIDTH@;
  input clk;
  input rst_n;
  input [31:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  input web_local;
  input reb_local;
  input csb_local;
  output [@BUF_A_MSB@:0] addr_b;
  inout [63:0] data_b;
  output web_b;
  output reb_b;
  output srt_b;
  input ack_b;
  reg srt_q;
  assign addr_b = addr_local[@BUF_A_MSB@:0];
  assign web_b = (csb_local) ? 1'b1 : web_local;
  assign reb_b = (csb_local) ? 1'b1 : reb_local;
  assign srt_b = srt_q;
  assign data_b = (!web_local && !csb_local) ? @DATA_BUS@ : 64'bz;
%if HAS_DH
  assign dh = (!reb_local && !csb_local) ? data_b[@DATA_MSB@:@LANE_WIDTH@] : @LANE_WIDTH@'bz;
%endif
  assign dl = (!reb_local && !csb_local) ? {@LANE_MSB@'b0, ack_b} | data_b[@LANE_MSB@:0] : @LANE_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      srt_q <= 1'b0;
    end else begin
      srt_q <= (!csb_local && !web_local && addr_local[15]);
    end
  end
endmodule
%endmodule IPIF
"""
)
