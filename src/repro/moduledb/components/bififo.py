"""Bi-FIFO block template (Figure 4 / section IV.C.2).

One receive FIFO with its controller: the upstream BAN pushes over the
``*_dn`` wires; a fill counter increments in hardware on each push, and
when it reaches the software-programmed threshold register the controller
raises the interrupt toward the local PE, whose handler pops the data over
the local bus.  The storage itself is a memory macro (its gates are not
counted in Table V's bus-logic totals); the controller is the synthesized
part.
"""

LIBRARY_TEXT = """
%module BIFIFO
module @MODULE_NAME@(clk, rst_n,
                     fifo_cs_dn, web_dn, data_dn,
                     fifo_cs_local, thr_cs_local, web_local, reb_local, @DH_ARG@dl,
                     irq_b);
  parameter FIFO_DEPTH = @FIFO_DEPTH@;
  parameter PTR_WIDTH = @PTR_WIDTH@;
  input clk;
  input rst_n;
  input fifo_cs_dn;
  input web_dn;
  inout [@DATA_MSB@:0] data_dn;
  input fifo_cs_local;
  input thr_cs_local;
  input web_local;
  input reb_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  output irq_b;

  reg [@DATA_MSB@:0] fifo_mem_q [@DEPTH_MSB@:0];
  reg [@PTR_MSB@:0] wr_ptr_q;
  reg [@PTR_MSB@:0] rd_ptr_q;
  reg [@PTR_MSB@:0] count_q;
  reg [@PTR_MSB@:0] threshold_q;
  reg irq_q;
  reg armed_q;

  assign irq_b = ~irq_q;
  assign @DATA_BUS@ = (fifo_cs_local && !reb_local) ? fifo_mem_q[rd_ptr_q] : @DATA_WIDTH@'bz;
  assign data_dn = @DATA_WIDTH@'bz;

  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      wr_ptr_q <= @PTR_WIDTH@'b0;
      rd_ptr_q <= @PTR_WIDTH@'b0;
      count_q <= @PTR_WIDTH@'b0;
      threshold_q <= @PTR_WIDTH@'b0;
      irq_q <= 1'b0;
      armed_q <= 1'b1;
    end else begin
      if (thr_cs_local && !web_local) begin
        threshold_q <= dl[@PTR_MSB@:0];
        armed_q <= 1'b1;
      end
      if (fifo_cs_dn && !web_dn && count_q != FIFO_DEPTH) begin
        fifo_mem_q[wr_ptr_q] <= data_dn;
        wr_ptr_q <= wr_ptr_q + 1;
        count_q <= count_q + 1;
        if (armed_q && threshold_q != @PTR_WIDTH@'b0 && count_q + 1 >= threshold_q) begin
          irq_q <= 1'b1;
          armed_q <= 1'b0;
        end
      end
      if (fifo_cs_local && !reb_local && count_q != @PTR_WIDTH@'b0) begin
        rd_ptr_q <= rd_ptr_q + 1;
        count_q <= count_q - 1;
        if (count_q - 1 < threshold_q) begin
          armed_q <= 1'b1;
        end
        irq_q <= 1'b0;
      end
    end
  end
endmodule
%endmodule BIFIFO
"""
