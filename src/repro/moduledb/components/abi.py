"""Arbiter-to-bus interface template (library component G: ``ABI``).

The ABI sits between the arbiter core and the global bus (Figure 2): it
samples the bus request lines of every GBI, feeds them to the arbiter, and
drives the bus-grant/bus-busy signalling back, inserting the grant latency
of the generated bus protocol (``@GRANT_CYCLES@`` cycles -- 3 in every
BusSyn bus, versus CoreConnect's 5 for reads, the margin of Table III).
"""

LIBRARY_TEXT = """
%module ABI
module @MODULE_NAME@(clk, rst_n, bus_req_b, bus_gnt_b, arb_req_b, arb_gnt_b, bus_busy);
  parameter N_MASTERS = @N_MASTERS@;
  parameter GRANT_CYCLES = @GRANT_CYCLES@;
  input clk;
  input rst_n;
  input [@N_MASTERS_MSB@:0] bus_req_b;
  output [@N_MASTERS_MSB@:0] bus_gnt_b;
  output [@N_MASTERS_MSB@:0] arb_req_b;
  input [@N_MASTERS_MSB@:0] arb_gnt_b;
  output bus_busy;
  reg [@N_MASTERS_MSB@:0] gnt_q;
  reg [2:0] delay_q;
  assign arb_req_b = bus_req_b;
  assign bus_gnt_b = ~gnt_q;
  assign bus_busy = |gnt_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      gnt_q <= @N_MASTERS@'b0;
      delay_q <= 3'b000;
    end else begin
      if (gnt_q == @N_MASTERS@'b0 && arb_gnt_b != {@N_MASTERS@{1'b1}}) begin
        if (delay_q == GRANT_CYCLES - 1) begin
          gnt_q <= ~arb_gnt_b;
          delay_q <= 3'b000;
        end else begin
          delay_q <= delay_q + 1;
        end
      end else if ((gnt_q & ~bus_req_b) == @N_MASTERS@'b0) begin
        gnt_q <= @N_MASTERS@'b0;
      end
    end
  end
endmodule
%endmodule ABI
"""
