"""Built-in Module Library components (section V.A, items A-I).

Each submodule contributes ``%module`` template blocks (Figure 14 format)
to the default library: processing-element stubs, CPU-bus interfaces
(CBI), memory templates, memory-bus interfaces (MBI), bus bridges (BB),
arbiters, arbiter-bus interfaces (ABI), generic bus interfaces (GBI), bus
segments (SB), handshake register blocks and Bi-FIFO controllers.
"""

from . import abi, arbiter, bififo, bridge, cbi, gbi, hsregs, ipcore, mbi, memory, pe, sb

ALL_LIBRARY_TEXT = "\n\n".join(
    module.LIBRARY_TEXT
    for module in (pe, cbi, memory, mbi, bridge, arbiter, abi, gbi, sb, hsregs, bififo, ipcore)
)

__all__ = ["ALL_LIBRARY_TEXT"]
