"""Memory-to-bus interface templates (library component D: ``MBI_<memory>``).

``MBI_SRAM`` follows the paper's own listing (Figure 14): three parameters
-- ``@MEM_A_WIDTH@`` for the physical address width, ``@MEM_D_WIDTH@`` for
the memory data width and ``@BIT_DIFFERENCE@`` for the width gap between
the CPU data bus and the memory data bus -- and pin-name-driven control
(``reb_local``/``sram_reb``, ``web_local``/``sram_web``).  For the 8 MB
SRAM of BAN A in Figure 4 the assignment is MEM_A_WIDTH=20,
MEM_D_WIDTH=64, BIT_DIFFERENCE=0 (Example 6).

``MBI_DRAM`` adds the RAS/CAS sequencing the DRAM template needs.
"""

LIBRARY_TEXT = """
%module MBI_SRAM
module @MODULE_NAME@(addr_local, web_local, reb_local, csb_local, @DH_ARG@dl,
                     sram_addr, sram_web, sram_oeb, sram_csb, sram_dq);
  parameter MEM_A_WIDTH = @MEM_A_WIDTH@;
  parameter MEM_D_WIDTH = @MEM_D_WIDTH@;
  parameter BIT_DIFFERENCE = @BIT_DIFFERENCE@;
  input [@MEM_A_MSB@:0] addr_local;
  input web_local;
  input reb_local;
  input csb_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  output [@MEM_A_MSB@:0] sram_addr;
  output sram_web;
  output sram_oeb;
  output sram_csb;
  inout [@MEM_D_MSB@:0] sram_dq;
  assign sram_addr = addr_local;
  assign sram_web = web_local;
  assign sram_oeb = reb_local;
  assign sram_csb = csb_local;
  assign sram_dq = (~web_local) ? @DATA_BUS@ : @MEM_D_WIDTH@'bz;
  assign @DATA_BUS@ = (~reb_local) ? {@PAD_EXPR@sram_dq[@MEM_D_MSB@:0]} : @DATA_WIDTH@'bz;
endmodule
%endmodule MBI_SRAM

%module MBI_DRAM
module @MODULE_NAME@(clk, rst_n, addr_local, web_local, reb_local, csb_local, @DH_ARG@dl,
                     dram_addr, dram_rasb, dram_casb, dram_web, dram_dq, dram_rdy);
  parameter MEM_A_WIDTH = @MEM_A_WIDTH@;
  parameter MEM_D_WIDTH = @MEM_D_WIDTH@;
  input clk;
  input rst_n;
  input [@MEM_A_MSB@:0] addr_local;
  input web_local;
  input reb_local;
  input csb_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  output [@MEM_A_MSB@:0] dram_addr;
  output dram_rasb;
  output dram_casb;
  output dram_web;
  inout [@MEM_D_MSB@:0] dram_dq;
  input dram_rdy;
  reg rasb_q;
  reg casb_q;
  reg [1:0] state;
  assign dram_addr = addr_local;
  assign dram_rasb = rasb_q;
  assign dram_casb = casb_q;
  assign dram_web = web_local;
  assign dram_dq = (~web_local && !csb_local) ? @DATA_BUS@ : @MEM_D_WIDTH@'bz;
  assign @DATA_BUS@ = (~reb_local && !csb_local && dram_rdy) ? dram_dq : @DATA_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      rasb_q <= 1'b1;
      casb_q <= 1'b1;
      state <= 2'b00;
    end else begin
      case (state)
        2'b00: begin
          casb_q <= 1'b1;
          if (!csb_local && (!web_local || !reb_local)) begin
            rasb_q <= 1'b0;
            state <= 2'b01;
          end
        end
        2'b01: begin
          rasb_q <= 1'b1;
          casb_q <= 1'b0;
          state <= 2'b10;
        end
        2'b10: begin
          if (dram_rdy) begin
            casb_q <= 1'b1;
            state <= 2'b00;
          end
        end
        default: state <= 2'b00;
      endcase
    end
  end
endmodule
%endmodule MBI_DRAM
"""
