"""Segment-of-bus templates (library component I: ``SB_<bus_type>``).

Definition E: an SB is a contiguous bus -- address, data and control wires
specific to a bus type.  As a Module it contributes the physical segment:
bus keepers holding the tri-stated lines at their last value, plus default
pull-ups on the active-low controls, so a segment with no driver reads
idle rather than unknown.  The three variants differ only in which control
wires the bus type carries.
"""

_KEEPER_BODY = """
  reg [@ADDR_MSB@:0] addr_keep_q;
%if HAS_DH
  reg [@LANE_MSB@:0] dh_keep_q;
%endif
  reg [@LANE_MSB@:0] dl_keep_q;
  always @(posedge clk) begin
    addr_keep_q <= addr_local;
%if HAS_DH
    dh_keep_q <= dh;
%endif
    dl_keep_q <= dl;
  end
"""

LIBRARY_TEXT = (
    """
%module SB_GBAVI
module @MODULE_NAME@(clk, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  inout [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  inout web_local;
  inout reb_local;
  inout [7:0] csb_local;
"""
    + _KEEPER_BODY
    + """
endmodule
%endmodule SB_GBAVI

%module SB_GBAVIII
module @MODULE_NAME@(clk, addr_local, @DH_ARG@dl, web_local, reb_local, req_b, gnt_b);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  parameter N_MASTERS = @N_MASTERS@;
  input clk;
  inout [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  inout web_local;
  inout reb_local;
  inout [@N_MASTERS_MSB@:0] req_b;
  inout [@N_MASTERS_MSB@:0] gnt_b;
"""
    + _KEEPER_BODY
    + """
endmodule
%endmodule SB_GBAVIII

%module SB_BFBA
module @MODULE_NAME@(clk, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  inout [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  inout web_local;
  inout reb_local;
  inout [7:0] csb_local;
"""
    + _KEEPER_BODY
    + """
endmodule
%endmodule SB_BFBA
"""
)
