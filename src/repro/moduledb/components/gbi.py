"""Generic bus interface templates (library component H: ``GBI_<bus_type>``).

The GBI adapts a BAN's local bus to the subsystem bus, and is what lets
the same BAN internals ride different bus types (section IV.A):

* ``GBI_GBAVIII`` -- a global-bus master port: request/grant handshake with
  the arbiter (through the ABI), address/data drive while granted.
* ``GBI_GBAVI`` -- segment port of the bridge-segmented bus: drives the
  segment when the local side owns it, tri-states otherwise, and raises
  the bridge-enable request when the access decodes off-segment.
* ``GBI_BFBA`` -- the neighbour-link port: drives the ``*_up`` wires of
  Example 8 (FIFO push toward the successor BAN, handshake-register
  selects) from local-bus cycles.
"""

LIBRARY_TEXT = """
%module GBI_GBAVIII
module @MODULE_NAME@(clk, rst_n, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local,
                     g_addr, @G_DH_ARG@g_dl, g_web, g_reb, g_req_b, g_gnt_b);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  input rst_n;
  input [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  input web_local;
  input reb_local;
  input csb_local;
  inout [@ADDR_MSB@:0] g_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] g_dh;
%endif
  inout [@LANE_MSB@:0] g_dl;
  inout g_web;
  inout g_reb;
  output g_req_b;
  input g_gnt_b;
  reg req_q;
  reg owned_q;
  assign g_req_b = req_q;
  assign g_addr = (owned_q) ? addr_local : @ADDR_WIDTH@'bz;
  assign g_web = (owned_q) ? web_local : 1'bz;
  assign g_reb = (owned_q) ? reb_local : 1'bz;
%if HAS_DH
  assign g_dh = (owned_q && !web_local) ? dh : @LANE_WIDTH@'bz;
%endif
  assign g_dl = (owned_q && !web_local) ? dl : @LANE_WIDTH@'bz;
%if HAS_DH
  assign dh = (owned_q && !reb_local) ? g_dh : @LANE_WIDTH@'bz;
%endif
  assign dl = (owned_q && !reb_local) ? g_dl : @LANE_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      req_q <= 1'b1;
      owned_q <= 1'b0;
    end else begin
      if (!csb_local && (!web_local || !reb_local)) begin
        req_q <= 1'b0;
      end else begin
        req_q <= 1'b1;
      end
      owned_q <= ~g_gnt_b;
    end
  end
endmodule
%endmodule GBI_GBAVIII

%module GBI_GBAVI
module @MODULE_NAME@(clk, rst_n, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local,
                     seg_addr, @SEG_DH_ARG@seg_dl, seg_web, seg_reb, bb_req);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  input rst_n;
  input [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  input web_local;
  input reb_local;
  input csb_local;
  inout [@ADDR_MSB@:0] seg_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] seg_dh;
%endif
  inout [@LANE_MSB@:0] seg_dl;
  inout seg_web;
  inout seg_reb;
  output bb_req;
  reg drive_q;
  assign bb_req = drive_q;
  assign seg_addr = (drive_q) ? addr_local : @ADDR_WIDTH@'bz;
  assign seg_web = (drive_q) ? web_local : 1'bz;
  assign seg_reb = (drive_q) ? reb_local : 1'bz;
%if HAS_DH
  assign seg_dh = (drive_q && !web_local) ? dh : @LANE_WIDTH@'bz;
%endif
  assign seg_dl = (drive_q && !web_local) ? dl : @LANE_WIDTH@'bz;
%if HAS_DH
  assign dh = (drive_q && !reb_local) ? seg_dh : @LANE_WIDTH@'bz;
%endif
  assign dl = (drive_q && !reb_local) ? seg_dl : @LANE_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      drive_q <= 1'b0;
    end else begin
      drive_q <= (!csb_local && (!web_local || !reb_local));
    end
  end
endmodule
%endmodule GBI_GBAVI

%module GBI_BFBA
module @MODULE_NAME@(clk, rst_n, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local,
                     data_up, fifo_cs_up, web_up, reb_up,
                     done_op_cs_up, done_rv_cs_up);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  input rst_n;
  input [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  input web_local;
  input reb_local;
  input csb_local;
  inout [@DATA_MSB@:0] data_up;
  output fifo_cs_up;
  output web_up;
  output reb_up;
  output [1:0] done_op_cs_up;
  output [1:0] done_rv_cs_up;
  reg fifo_cs_q;
  reg [1:0] op_cs_q;
  reg [1:0] rv_cs_q;
  assign fifo_cs_up = fifo_cs_q;
  assign done_op_cs_up = op_cs_q;
  assign done_rv_cs_up = rv_cs_q;
  assign web_up = web_local;
  assign reb_up = reb_local;
  assign data_up = (!web_local && !csb_local) ? @DATA_BUS@ : @DATA_WIDTH@'bz;
%if HAS_DH
  assign dh = (!reb_local && !csb_local) ? data_up[@DATA_MSB@:@LANE_WIDTH@] : @LANE_WIDTH@'bz;
%endif
  assign dl = (!reb_local && !csb_local) ? data_up[@LANE_MSB@:0] : @LANE_WIDTH@'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      fifo_cs_q <= 1'b0;
      op_cs_q <= 2'b00;
      rv_cs_q <= 2'b00;
    end else begin
      fifo_cs_q <= (!csb_local && addr_local[3:2] == 2'b00);
      op_cs_q <= {(!csb_local && addr_local[3:2] == 2'b01), ~web_local};
      rv_cs_q <= {(!csb_local && addr_local[3:2] == 2'b10), ~web_local};
    end
  end
endmodule
%endmodule GBI_BFBA

%module GBI_SHARED
module @MODULE_NAME@(clk, rst_n, addr_local, @DH_ARG@dl, web_local, reb_local, csb_local,
                     g_addr, @G_DH_ARG@g_dl, g_web, g_reb, g_req_b, g_gnt_b);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  input rst_n;
  input [@ADDR_MSB@:0] addr_local;
%if HAS_DH
  inout [@LANE_MSB@:0] dh;
%endif
  inout [@LANE_MSB@:0] dl;
  input web_local;
  input reb_local;
  input csb_local;
  inout [@ADDR_MSB@:0] g_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] g_dh;
%endif
  inout [@LANE_MSB@:0] g_dl;
  inout g_web;
  inout g_reb;
  output g_req_b;
  input g_gnt_b;
  assign g_req_b = ~(!csb_local && (!web_local || !reb_local));
  assign g_addr = (!g_gnt_b) ? addr_local : @ADDR_WIDTH@'bz;
  assign g_web = (!g_gnt_b) ? web_local : 1'bz;
  assign g_reb = (!g_gnt_b) ? reb_local : 1'bz;
%if HAS_DH
  assign g_dh = (!g_gnt_b && !web_local) ? dh : @LANE_WIDTH@'bz;
%endif
  assign g_dl = (!g_gnt_b && !web_local) ? dl : @LANE_WIDTH@'bz;
%if HAS_DH
  assign dh = (!g_gnt_b && !reb_local) ? g_dh : @LANE_WIDTH@'bz;
%endif
  assign dl = (!g_gnt_b && !reb_local) ? g_dl : @LANE_WIDTH@'bz;
endmodule
%endmodule GBI_SHARED
"""
