"""Bus bridge templates (library component E: ``BB_<bb_type>``).

Definition B: an on-off controllable connection point between two buses.
When ``bb_enable`` is high the two sides are fully connected (address,
data and control pass both ways through enabled drivers); when low the
sides are isolated.  ``BB_GBAVI`` joins two segments of the segmented
global bus (Figure 3); ``BB_SPLITBA`` joins the two Bus Subsystems of the
split architecture (Figure 7) and adds request/grant exchange so a
crossing master arbitration can win the far side.
"""

LIBRARY_TEXT = """
%module BB_GBAVI
module @MODULE_NAME@(bb_enable, a_addr, @A_DH_ARG@a_dl, a_web, a_reb,
                     b_addr, @B_DH_ARG@b_dl, b_web, b_reb, dir_a2b);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input bb_enable;
  input dir_a2b;
  inout [@ADDR_MSB@:0] a_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] a_dh;
%endif
  inout [@LANE_MSB@:0] a_dl;
  inout a_web;
  inout a_reb;
  inout [@ADDR_MSB@:0] b_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] b_dh;
%endif
  inout [@LANE_MSB@:0] b_dl;
  inout b_web;
  inout b_reb;
  assign b_addr = (bb_enable && dir_a2b) ? a_addr : @ADDR_WIDTH@'bz;
%if HAS_DH
  assign b_dh = (bb_enable && dir_a2b) ? a_dh : @LANE_WIDTH@'bz;
%endif
  assign b_dl = (bb_enable && dir_a2b) ? a_dl : @LANE_WIDTH@'bz;
  assign b_web = (bb_enable && dir_a2b) ? a_web : 1'bz;
  assign b_reb = (bb_enable && dir_a2b) ? a_reb : 1'bz;
  assign a_addr = (bb_enable && !dir_a2b) ? b_addr : @ADDR_WIDTH@'bz;
%if HAS_DH
  assign a_dh = (bb_enable && !dir_a2b) ? b_dh : @LANE_WIDTH@'bz;
%endif
  assign a_dl = (bb_enable && !dir_a2b) ? b_dl : @LANE_WIDTH@'bz;
  assign a_web = (bb_enable && !dir_a2b) ? b_web : 1'bz;
  assign a_reb = (bb_enable && !dir_a2b) ? b_reb : 1'bz;
endmodule
%endmodule BB_GBAVI

%module BB_SPLITBA
module @MODULE_NAME@(clk, rst_n, bb_enable, a_addr, @A_DH_ARG@a_dl, a_web, a_reb,
                     a_req_b, a_gnt_b, b_addr, @B_DH_ARG@b_dl, b_web, b_reb,
                     b_req_b, b_gnt_b, dir_a2b);
  parameter ADDR_WIDTH = @ADDR_WIDTH@;
  input clk;
  input rst_n;
  input bb_enable;
  input dir_a2b;
  inout [@ADDR_MSB@:0] a_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] a_dh;
%endif
  inout [@LANE_MSB@:0] a_dl;
  inout a_web;
  inout a_reb;
  output a_req_b;
  input a_gnt_b;
  inout [@ADDR_MSB@:0] b_addr;
%if HAS_DH
  inout [@LANE_MSB@:0] b_dh;
%endif
  inout [@LANE_MSB@:0] b_dl;
  inout b_web;
  inout b_reb;
  output b_req_b;
  input b_gnt_b;
  reg a_req_q;
  reg b_req_q;
  assign a_req_b = a_req_q;
  assign b_req_b = b_req_q;
  assign b_addr = (bb_enable && dir_a2b && !b_gnt_b) ? a_addr : @ADDR_WIDTH@'bz;
%if HAS_DH
  assign b_dh = (bb_enable && dir_a2b && !b_gnt_b) ? a_dh : @LANE_WIDTH@'bz;
%endif
  assign b_dl = (bb_enable && dir_a2b && !b_gnt_b) ? a_dl : @LANE_WIDTH@'bz;
  assign b_web = (bb_enable && dir_a2b && !b_gnt_b) ? a_web : 1'bz;
  assign b_reb = (bb_enable && dir_a2b && !b_gnt_b) ? a_reb : 1'bz;
  assign a_addr = (bb_enable && !dir_a2b && !a_gnt_b) ? b_addr : @ADDR_WIDTH@'bz;
%if HAS_DH
  assign a_dh = (bb_enable && !dir_a2b && !a_gnt_b) ? b_dh : @LANE_WIDTH@'bz;
%endif
  assign a_dl = (bb_enable && !dir_a2b && !a_gnt_b) ? b_dl : @LANE_WIDTH@'bz;
  assign a_web = (bb_enable && !dir_a2b && !a_gnt_b) ? b_web : 1'bz;
  assign a_reb = (bb_enable && !dir_a2b && !a_gnt_b) ? b_reb : 1'bz;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      a_req_q <= 1'b1;
      b_req_q <= 1'b1;
    end else begin
      b_req_q <= ~(bb_enable && dir_a2b);
      a_req_q <= ~(bb_enable && !dir_a2b);
    end
  end
endmodule
%endmodule BB_SPLITBA
"""
