"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at full
experiment scale, prints the rows next to the paper's numbers, and asserts
the qualitative *shape* claims of DESIGN.md section 2.  Absolute values are
not asserted: our substrate is a transaction-level simulator, not the
paper's MPC755 co-verification testbed (see EXPERIMENTS.md).
"""

import pytest


def print_table(title, lines):
    print("\n" + "=" * 72)
    print(title)
    print("-" * 72)
    for line in lines:
        print(line)
    print("=" * 72)


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
