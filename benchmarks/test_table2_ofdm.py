"""Table II: OFDM transmitter throughput, nine bus/style cases.

Regenerates the paper's Table II at full scale (8 packets of 2048+512
complex samples on four PEs) and checks every qualitative claim the paper
makes about it, including the 16.44 % SplitBA-over-GGBA headline.
"""

from conftest import print_table

from repro.experiments.table2 import check_table2_shape, run_table2


def test_table2_ofdm_throughput(once):
    rows = once(run_table2)
    print_table(
        "Table II -- OFDM transmitter throughput [Mbps] (paper values in parens)",
        [row.text() for row in rows],
    )
    failures = check_table2_shape(rows)
    assert failures == [], failures

    value = {(row.bus_system, row.style): row.throughput_mbps for row in rows}
    # Headline: SplitBA-FPA over GGBA-FPA (paper: +16.44 %).
    gain = value[("SPLITBA", "FPA")] / value[("GGBA", "FPA")] - 1
    print("SplitBA-FPA over GGBA-FPA: +%.2f%% (paper: +16.44%%)" % (gain * 100))
    assert 0.08 <= gain <= 0.30

    # FPA/PPA ratio near the paper's ~2.02x on GBAVIII.
    ratio = value[("GBAVIII", "FPA")] / value[("GBAVIII", "PPA")]
    print("GBAVIII FPA/PPA ratio: %.2f (paper: 2.02)" % ratio)
    assert 1.5 <= ratio <= 3.0
