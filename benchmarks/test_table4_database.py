"""Table IV: database example execution time, GGBA vs SplitBA.

Full scale: 1 server + 40 client tasks on the RTOS over four PEs, 100
32-bit words per task access.  Checks the paper's 41 % execution-time
reduction headline.
"""

from conftest import print_table

from repro.experiments.table4 import check_table4_shape, run_table4


def test_table4_database_execution_time(once):
    rows = once(run_table4)
    print_table(
        "Table IV -- database example execution time [ns] (paper in parens)",
        [row.text() for row in rows],
    )
    failures = check_table4_shape(rows)
    assert failures == [], failures

    by_bus = {row.bus_system: row for row in rows}
    reduction = 1 - by_bus["SPLITBA"].execution_time_ns / by_bus["GGBA"].execution_time_ns
    print("SplitBA reduction: %.1f%% (paper: 41%%)" % (reduction * 100))
    assert 0.30 <= reduction <= 0.55
