"""Figures 11/12/13 (handshake state diagrams), 26 (PPA/FPA schedules)
and 27 (MPEG2 GOP distribution)."""

from conftest import print_table

from repro.experiments import figures


def test_figure11_gbavi_handshake(once):
    trace = once(figures.run_handshake_trace, "GBAVI")
    print_table(
        "Figure 11 -- GBAVI handshake steps (label @ cycle)",
        ["%-22s @ %d" % (label, cycle) for label, cycle in trace],
    )
    assert figures.check_step_order(trace, figures.FIGURE11_ORDER) == []


def test_figure12_bfba_handshake(once):
    trace = once(figures.run_handshake_trace, "BFBA")
    print_table(
        "Figure 12 -- BFBA interrupt handshake steps (label @ cycle)",
        ["%-22s @ %d" % (label, cycle) for label, cycle in trace],
    )
    assert figures.check_step_order(trace, figures.FIGURE12_ORDER) == []


def test_figure13_gbaviii_handshake(once):
    trace = once(figures.run_handshake_trace, "GBAVIII")
    print_table(
        "Figure 13 -- GBAVIII shared-variable handshake steps (label @ cycle)",
        ["%-22s @ %d" % (label, cycle) for label, cycle in trace],
    )
    assert figures.check_step_order(trace, figures.FIGURE13_ORDER) == []


def test_figure26_ppa_fpa_schedules(once):
    schedules = once(figures.run_figure26)
    lines = []
    for style in ("PPA", "FPA"):
        lines.append("%s:" % style)
        for ban, group, packet, start, end in schedules[style]:
            lines.append(
                "  BAN %s  %-4s packet %d  [%d, %d)" % (ban, group, packet, start, end)
            )
    print_table("Figure 26 -- software programming styles (occupancy)", lines)
    assert figures.check_figure26(schedules) == []


def test_figure27_gop_distribution(once):
    assignment = once(figures.run_figure27)
    print_table(
        "Figure 27 -- MPEG2 functional parallel operation",
        ["GOP%d -> BAN %s" % (index + 1, ban) for index, ban in sorted(assignment.items())],
    )
    assert figures.check_figure27(assignment) == []
