"""Table III: MPEG2 decoder throughput over five bus systems.

Full scale: 16 frames (8 I+P GOPs, 16x16 pictures) decoded functionally
parallel on four PEs, with every decoded frame verified against a serial
reference decode.  Checks the paper's ordering and the 15.54 %
Hybrid-over-CoreConnect headline.
"""

from conftest import print_table

from repro.experiments.table3 import check_table3_shape, run_table3


def test_table3_mpeg2_throughput(once):
    rows = once(run_table3)
    print_table(
        "Table III -- MPEG2 decoder throughput [Mbps] (paper values in parens)",
        [row.text() for row in rows],
    )
    failures = check_table3_shape(rows)
    assert failures == [], failures

    value = {row.bus_system: row.throughput_mbps for row in rows}
    gain = value["HYBRID"] / value["CCBA"] - 1
    print("Hybrid over CCBA: +%.2f%% (paper: +15.54%%)" % (gain * 100))
    assert 0.05 <= gain <= 0.40

    # CCBA sits between GBAVIII and the relay architectures, close to the
    # paper's CCBA/GBAVIII ratio of 0.881.
    ratio = value["CCBA"] / value["GBAVIII"]
    print("CCBA/GBAVIII ratio: %.3f (paper: 0.881)" % ratio)
    assert 0.75 <= ratio <= 0.97
